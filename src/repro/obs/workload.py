"""Workload characterization: what the traffic looks like, measured.

A query log (:mod:`repro.obs.qlog`) is a stream of per-request facts;
this module turns it into the aggregate shape a capacity plan or a
shard/replica placement policy actually consumes:

* **Skew** — a Zipf exponent fitted to the vertex and pair
  rank-frequency curves (least squares on log-log, with an R² so a
  non-power-law fit is visible as such).  Hop-doubling labeling
  (arXiv 1403.0779) motivates the scale-free model: on social-network
  shaped workloads a small set of hot vertices dominates the pairs.
* **Hot sets** — the top-N vertices and pairs by request count, i.e.
  the concrete candidates for pinning/replication.
* **Cache curve** — LRU hit rate as a function of cache size, computed
  by replaying the captured request sequence through simulated LRUs.
  This is the measured answer to "how big should the oracle cache be",
  as opposed to the single observed hit rate at whatever size was
  deployed during capture.

The report (``parapll-workload/1``) is JSON; ``parapll workload
report`` renders it for terminals.  Everything here is offline
analysis — nothing on the serve path imports this module.
"""

from __future__ import annotations

import math
from collections import Counter, OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "WORKLOAD_SCHEMA",
    "DEFAULT_CACHE_SIZES",
    "fit_zipf",
    "simulate_cache_curve",
    "exact_quantile",
    "characterize",
    "render_workload",
]

WORKLOAD_SCHEMA = "parapll-workload/1"

#: Cache sizes swept by the hit-rate curve (clipped to the number of
#: unique pairs in the capture — larger sizes cannot change the curve).
DEFAULT_CACHE_SIZES: Tuple[int, ...] = (16, 64, 256, 1024, 4096, 16384)


def fit_zipf(counts: Sequence[int]) -> Tuple[float, float]:
    """Fit ``frequency ∝ rank^-alpha`` to a descending count list.

    Ordinary least squares of ``log(count)`` against ``log(rank)``.

    Args:
        counts: per-item request counts, any order (sorted internally).

    Returns:
        ``(alpha, r_squared)``; ``(0.0, 0.0)`` when fewer than two
        distinct ranks exist (a constant curve has no slope).
    """
    ranked = sorted((c for c in counts if c > 0), reverse=True)
    n = len(ranked)
    if n < 2:
        return 0.0, 0.0
    xs = [math.log(rank) for rank in range(1, n + 1)]
    ys = [math.log(c) for c in ranked]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    syy = sum((y - mean_y) ** 2 for y in ys)
    if sxx == 0.0:
        return 0.0, 0.0
    slope = sxy / sxx
    r2 = (sxy * sxy) / (sxx * syy) if syy > 0.0 else 1.0
    return -slope, r2


def simulate_cache_curve(
    pairs: Sequence[Tuple[int, int]],
    sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
) -> List[Tuple[int, float]]:
    """Replay *pairs* through simulated LRUs of each size.

    The simulation mirrors :class:`~repro.service.oracle.DistanceOracle`
    exactly: canonical ``(min, max)`` keys, move-to-end on hit, evict
    oldest on overflow.

    Returns:
        ``[(size, hit_rate), ...]`` ascending by size, deduplicated and
        clipped at the number of unique pairs (one extra entry at
        exactly that count shows the compulsory-miss ceiling).
    """
    keys = [(s, t) if s <= t else (t, s) for s, t in pairs]
    if not keys:
        return []
    unique = len(set(keys))
    sweep = sorted({int(z) for z in sizes if 0 < int(z) < unique} | {unique})
    out: List[Tuple[int, float]] = []
    for size in sweep:
        cache: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        hits = 0
        for key in keys:
            if key in cache:
                cache.move_to_end(key)
                hits += 1
            else:
                cache[key] = None
                if len(cache) > size:
                    cache.popitem(last=False)
        out.append((size, hits / len(keys)))
    return out


def exact_quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def characterize(
    records: Sequence[Dict[str, Any]],
    top: int = 10,
    cache_sizes: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """Build the ``parapll-workload/1`` report from qlog records.

    Args:
        records: parsed qlog records
            (:func:`repro.obs.qlog.read_qlog` output, or a live ring
            snapshot).
        top: hot-table depth.
        cache_sizes: LRU sizes to sweep (default
            :data:`DEFAULT_CACHE_SIZES`).

    Raises:
        ValueError: when *records* is empty — an empty capture has no
            shape to report.
    """
    if not records:
        raise ValueError("cannot characterize an empty query log")
    ops: Counter = Counter()
    outcomes: Counter = Counter()
    vertex_counts: Counter = Counter()
    pair_counts: Counter = Counter()
    pairs: List[Tuple[int, int]] = []
    latencies: List[float] = []
    cache_hits = 0
    for rec in records:
        ops[rec.get("op", "?")] += 1
        outcomes[rec.get("outcome", "?")] += 1
        s, t = int(rec["s"]), int(rec["t"])
        key = (s, t) if s <= t else (t, s)
        vertex_counts[s] += 1
        if t != s:
            vertex_counts[t] += 1
        pair_counts[key] += 1
        pairs.append(key)
        latencies.append(float(rec.get("latency_us", 0.0)))
        if rec.get("cache_hit"):
            cache_hits += 1
    latencies.sort()
    vertex_alpha, vertex_r2 = fit_zipf(list(vertex_counts.values()))
    pair_alpha, pair_r2 = fit_zipf(list(pair_counts.values()))
    n = len(records)
    return {
        "schema": WORKLOAD_SCHEMA,
        "records": n,
        "ops": dict(sorted(ops.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "unique_vertices": len(vertex_counts),
        "unique_pairs": len(pair_counts),
        "observed_cache_hit_rate": cache_hits / n,
        "latency_us": {
            "mean": sum(latencies) / n,
            "p50": exact_quantile(latencies, 0.50),
            "p95": exact_quantile(latencies, 0.95),
            "p99": exact_quantile(latencies, 0.99),
            "max": latencies[-1],
        },
        "zipf": {
            "vertex_alpha": vertex_alpha,
            "vertex_r2": vertex_r2,
            "pair_alpha": pair_alpha,
            "pair_r2": pair_r2,
        },
        "hot_vertices": [
            [v, c] for v, c in vertex_counts.most_common(top)
        ],
        "hot_pairs": [
            [s, t, c] for (s, t), c in pair_counts.most_common(top)
        ],
        "cache_curve": [
            [size, rate]
            for size, rate in simulate_cache_curve(
                pairs, cache_sizes or DEFAULT_CACHE_SIZES
            )
        ],
    }


def render_workload(report: Dict[str, Any]) -> str:
    """Render a workload report as terminal text."""
    lines: List[str] = []
    lat = report["latency_us"]
    zipf = report["zipf"]
    lines.append(
        f"workload: {report['records']} records, "
        f"{report['unique_pairs']} unique pairs over "
        f"{report['unique_vertices']} vertices"
    )
    lines.append(
        "  ops: "
        + ", ".join(f"{k}={v}" for k, v in report["ops"].items())
        + "   outcomes: "
        + ", ".join(f"{k}={v}" for k, v in report["outcomes"].items())
    )
    lines.append(
        f"  latency_us: p50={lat['p50']:.1f} p95={lat['p95']:.1f} "
        f"p99={lat['p99']:.1f} max={lat['max']:.1f}"
    )
    lines.append(
        f"  zipf fit: vertex alpha={zipf['vertex_alpha']:.3f} "
        f"(r2={zipf['vertex_r2']:.3f}), "
        f"pair alpha={zipf['pair_alpha']:.3f} "
        f"(r2={zipf['pair_r2']:.3f})"
    )
    lines.append(
        f"  observed cache hit rate: "
        f"{report['observed_cache_hit_rate']:.1%}"
    )
    lines.append("  hot vertices:")
    for v, c in report["hot_vertices"]:
        lines.append(f"    {v:>8d}  {c} requests")
    lines.append("  hot pairs:")
    for s, t, c in report["hot_pairs"]:
        lines.append(f"    ({s}, {t})  {c} requests")
    lines.append("  cache curve (simulated LRU):")
    for size, rate in report["cache_curve"]:
        bar = "#" * int(round(rate * 40))
        lines.append(f"    {size:>8d}  {rate:6.1%}  {bar}")
    return "\n".join(lines)
