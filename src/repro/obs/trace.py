"""Structured span/event tracing with a bounded in-memory ring buffer.

A **span** covers an interval (a root search, a sync round, a request);
an **event** marks an instant.  Both become :class:`TraceRecord`\\ s in
a ``deque(maxlen=capacity)`` ring buffer — old records are dropped, the
tracer never grows without bound.  Timestamps come from
``time.monotonic()`` (wall clock), except that callers may pass an
explicit ``ts`` — the discrete-event simulator does, stamping records
with *simulated* seconds so real and simulated builds share one schema
(see DESIGN.md §7).

Parentage is tracked with a thread-local span stack: spans opened on
the same thread nest; events attach to the innermost open span.  The
module-level :func:`span` / :func:`event` helpers are the instrumented
code's entry points — they are no-ops (one boolean check) unless
tracing was enabled via :func:`repro.obs.configure`.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import config as _config

__all__ = ["TraceRecord", "Tracer", "get_tracer", "span", "event"]


@dataclass
class TraceRecord:
    """One trace entry.

    Attributes:
        name: what happened (e.g. ``"root_search"``, ``"cluster_sync"``).
        kind: ``"span"`` (has a duration) or ``"event"`` (an instant).
        ts: start time, seconds.  Monotonic wall time unless the caller
            supplied a simulated timestamp.
        dur: span duration in seconds (``None`` for events).
        span_id: unique id within this tracer.
        parent_id: id of the enclosing span, or ``None`` at top level.
        thread: name of the recording thread.
        attrs: free-form JSON-safe attributes.
    """

    name: str
    kind: str
    ts: float
    dur: Optional[float]
    span_id: int
    parent_id: Optional[int]
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (the JSONL line payload)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "ts": self.ts,
            "dur": self.dur,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            ts=data["ts"],
            dur=data.get("dur"),
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            thread=data.get("thread", ""),
            attrs=data.get("attrs", {}),
        )


class _ActiveSpan:
    """Context manager for one open span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_id", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._id = tracer._next_id()
        stack = tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._id)
        self._start = tracer._clock()
        return self

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span before it closes."""
        self._attrs.update(attrs)

    def __exit__(self, *exc: Any) -> None:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack()
        if stack and stack[-1] == self._id:
            stack.pop()
        tracer._append(
            TraceRecord(
                name=self._name,
                kind="span",
                ts=self._start,
                dur=end - self._start,
                span_id=self._id,
                parent_id=self._parent,
                thread=threading.current_thread().name,
                attrs=self._attrs,
            )
        )


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """A bounded trace recorder.

    Args:
        capacity: ring-buffer size; the oldest records are evicted once
            the buffer is full.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._records: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._clock = time.monotonic

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Ring-buffer size."""
        return self._records.maxlen or 0

    def set_capacity(self, capacity: int) -> None:
        """Resize the ring buffer, keeping the newest records."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if capacity != self.capacity:
            self._records = deque(self._records, maxlen=capacity)

    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: TraceRecord) -> None:
        self._records.append(record)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name, attrs)

    def event(self, name: str, ts: Optional[float] = None, **attrs: Any) -> None:
        """Record an instantaneous event.

        Args:
            name: event name.
            ts: explicit timestamp (e.g. simulated seconds); defaults to
                the monotonic clock.
            attrs: JSON-safe attributes.
        """
        stack = self._stack()
        self._append(
            TraceRecord(
                name=name,
                kind="event",
                ts=self._clock() if ts is None else ts,
                dur=None,
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                thread=threading.current_thread().name,
                attrs=dict(attrs),
            )
        )

    def records(self) -> List[TraceRecord]:
        """Snapshot of the buffer, oldest first."""
        return list(self._records)

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


_global_tracer = Tracer(_config.TRACE_CAPACITY)


def get_tracer() -> Tracer:
    """The process-wide tracer (capacity follows ``obs.configure``)."""
    if _global_tracer.capacity != _config.TRACE_CAPACITY:
        _global_tracer.set_capacity(_config.TRACE_CAPACITY)
    return _global_tracer


def span(name: str, **attrs: Any):
    """A traced span if tracing is on, else a shared no-op."""
    if not _config.TRACING:
        return _NULL_SPAN
    return get_tracer().span(name, **attrs)


def event(name: str, ts: Optional[float] = None, **attrs: Any) -> None:
    """Record an event on the global tracer (no-op when tracing is off)."""
    if not _config.TRACING:
        return
    get_tracer().event(name, ts=ts, **attrs)
