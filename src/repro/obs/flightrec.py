"""The flight recorder: last-N structured events, dumped on failure.

Metrics answer "how much"; traces answer "where did the time go" when
someone turned tracing on *before* the run.  The flight recorder
answers the post-mortem question — *what was this process doing right
before it died* — without any opt-in: a per-process ring buffer of the
last :data:`DEFAULT_CAPACITY` structured events (task grabs, label
commits, sync rounds, slow queries, failures) that instrumented code
appends to unconditionally, and that gets dumped to JSONL when things
go wrong.

Dump triggers:

* worker failures in :func:`repro.parallel.threads.build_parallel_threads`
  and rank failures in :func:`repro.cluster.threadcomm.run_ranks`
  (via :func:`auto_dump`, honouring ``PARAPLL_FLIGHTREC_DIR``);
* ``SIGUSR1``, after :func:`install_signal_handler`;
* on demand: the server's ``debug`` op and ``parapll flightrec dump``.

Lock-freedom matters here: the recorder is written from worker threads,
exception handlers and a signal handler, so :meth:`FlightRecorder.record`
uses only GIL-atomic operations (``deque.append`` with ``maxlen``, an
``itertools.count`` sequence) — it can never deadlock the thread it is
observing.

Dump format (``parapll-flightrec/1``): one JSON object per line.  The
first line is a header ``{"kind": "header", "schema":
"parapll-flightrec/1", "pid", "reason", "events", "capacity",
"dumped_at"}``; every following line is one event ``{"seq", "ts",
"mono", "kind", "thread", "attrs"}``, oldest first (``seq`` is a
process-wide monotone sequence number, ``ts`` unix seconds, ``mono``
the monotonic clock).
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import threading
import time
from collections import deque
from typing import IO, Any, Dict, List, Optional, Union

__all__ = [
    "FLIGHTREC_SCHEMA",
    "DEFAULT_CAPACITY",
    "ENV_DIR",
    "FlightRecorder",
    "get_recorder",
    "record",
    "auto_dump",
    "dump_events",
    "install_signal_handler",
]

FLIGHTREC_SCHEMA = "parapll-flightrec/1"
DEFAULT_CAPACITY = 512

#: Directory for automatic failure dumps; auto-dumping is disabled when
#: the variable is unset (the in-memory buffer stays queryable).
ENV_DIR = "PARAPLL_FLIGHTREC_DIR"

logger = logging.getLogger("repro.obs.flightrec")


class FlightRecorder:
    """A bounded ring buffer of structured events.

    Args:
        capacity: how many events to retain (oldest evicted first).

    Thread- and signal-safe by construction: appends use only
    GIL-atomic operations, no locks.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._events: deque = deque(maxlen=capacity)
        self._seq = itertools.count(1)

    @property
    def capacity(self) -> int:
        """Ring-buffer size."""
        return self._events.maxlen or 0

    def set_capacity(self, capacity: int) -> None:
        """Resize the buffer, keeping the newest events."""
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if capacity != self.capacity:
            self._events = deque(self._events, maxlen=capacity)

    # ------------------------------------------------------------------
    def record(self, kind: str, **attrs: Any) -> None:
        """Append one event; *attrs* must be JSON-safe."""
        self._events.append(
            {
                "seq": next(self._seq),
                "ts": time.time(),
                "mono": time.monotonic(),
                "kind": kind,
                "thread": threading.current_thread().name,
                "attrs": attrs,
            }
        )

    def snapshot(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """A copy of the buffered events, oldest first.

        Args:
            last: return only the newest *last* events when given.
        """
        events = list(self._events)
        if last is not None and last >= 0:
            events = events[-last:] if last else []
        return events

    def clear(self) -> None:
        """Drop all buffered events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    def dump(
        self,
        path_or_file: Union[str, os.PathLike, IO[str]],
        reason: str = "manual",
    ) -> int:
        """Write header + events as JSONL; returns the event count."""
        return dump_events(
            self.snapshot(),
            path_or_file,
            reason=reason,
            pid=os.getpid(),
            capacity=self.capacity,
        )


def dump_events(
    events: List[Dict[str, Any]],
    path_or_file: Union[str, os.PathLike, IO[str]],
    reason: str = "manual",
    pid: Optional[int] = None,
    capacity: Optional[int] = None,
) -> int:
    """Write any event list in the ``parapll-flightrec/1`` dump format.

    Used by :meth:`FlightRecorder.dump` and by ``parapll flightrec
    dump`` when the events came over the wire from another process's
    recorder (the server's ``debug`` op).
    """
    header = {
        "kind": "header",
        "schema": FLIGHTREC_SCHEMA,
        "pid": pid,
        "reason": reason,
        "events": len(events),
        "capacity": capacity,
        "dumped_at": time.time(),
    }
    lines = [json.dumps(header)]
    lines.extend(json.dumps(event) for event in events)
    text = "\n".join(lines) + "\n"
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)  # type: ignore[union-attr]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            fh.write(text)
    return len(events)


_global_recorder = FlightRecorder()
_dump_ids = itertools.count(1)


def get_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _global_recorder


def record(kind: str, **attrs: Any) -> None:
    """Append one event to the process-wide recorder."""
    _global_recorder.record(kind, **attrs)


def auto_dump(
    reason: str, directory: Optional[str] = None
) -> Optional[str]:
    """Dump the recorder on a failure path; returns the path written.

    The target directory is *directory* or ``$PARAPLL_FLIGHTREC_DIR``;
    when neither is set the dump is skipped (returns ``None``) so
    library users never find surprise files in their working tree.
    Write errors are logged, never raised — a dump must not mask the
    failure that triggered it.
    """
    directory = directory or os.environ.get(ENV_DIR)
    if not directory:
        return None
    path = os.path.join(
        directory,
        f"flightrec-{os.getpid()}-{reason}-{next(_dump_ids)}.jsonl",
    )
    try:
        os.makedirs(directory, exist_ok=True)
        _global_recorder.dump(path, reason=reason)
    except OSError as exc:
        logger.warning("flight-recorder dump to %s failed: %s", path, exc)
        return None
    return path


def install_signal_handler(signum: Optional[int] = None) -> bool:
    """Dump the recorder on ``SIGUSR1`` (or *signum*); returns success.

    The dump goes to ``$PARAPLL_FLIGHTREC_DIR``, falling back to the
    current working directory.  Returns ``False`` on platforms without
    the signal or outside the main thread (where CPython forbids
    ``signal.signal``).
    """
    import signal as _signal

    if signum is None:
        signum = getattr(_signal, "SIGUSR1", None)
        if signum is None:  # pragma: no cover - windows
            return False

    def _handler(_signum: int, _frame: Any) -> None:
        path = auto_dump(
            "sigusr1", directory=os.environ.get(ENV_DIR) or os.getcwd()
        )
        if path:
            logger.info("flight recorder dumped to %s", path)

    try:
        _signal.signal(signum, _handler)
    except ValueError:  # pragma: no cover - non-main thread
        return False
    return True
