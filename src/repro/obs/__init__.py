"""``repro.obs`` — the end-to-end observability layer.

ParaPLL's story is about where time and labels go: per-root pruning
efficiency, static-vs-dynamic balance, the sync-frequency trade between
communication and redundant labels.  This package makes those
quantities observable on *live* runs — real builds, the simulator and
the TCP serving layer all feed one process-wide metrics registry and
(opt-in) trace buffer.

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms with labeled series.
* :mod:`repro.obs.trace` — structured span/event tracing into a bounded
  ring buffer (monotonic clocks, thread-local span nesting).
* :mod:`repro.obs.export` — Prometheus text exposition, JSONL traces,
  and the human-readable summary behind ``parapll obs``.
* :mod:`repro.obs.timers` — phase timers and a sampling profiler.
* :mod:`repro.obs.instruments` — the well-known metric handles the
  instrumented modules bump.
* :mod:`repro.obs.timeline` — Chrome-trace (Perfetto) export and
  critical-path analysis of the trace buffer.
* :mod:`repro.obs.perf` / :mod:`repro.obs.regression` — the benchmark
  suite behind ``parapll perf``: recorded baselines plus the
  improved/unchanged/regressed gate.
* :mod:`repro.obs.env` — environment metadata stamped onto results.
* :mod:`repro.obs.explain` — per-query EXPLAIN: candidate hubs,
  winner/redundant/dominated classification, label-scan costs.
* :mod:`repro.obs.context` — cross-rank :class:`TraceContext`
  propagation; communicators stamp it onto every envelope.
* :mod:`repro.obs.flightrec` — always-on ring buffer of the last N
  structured events, dumped to JSONL on failures / ``SIGUSR1``.
* :mod:`repro.obs.buildmon` — live build monitor: per-root telemetry
  from the serial/thread/sim/cluster builders as roots commit, emitted
  as ``parapll-buildmon/1`` progress snapshots (ETA, labels/sec,
  pruning ratio, stalled workers).
* :mod:`repro.obs.audit` — index-health audit of a finished index:
  label-size distribution, hub-coverage concentration, dominated-entry
  detection and memory attribution as a ``parapll-audit/1`` report.
* :mod:`repro.obs.qlog` — sampled query-log capture of serve-path
  traffic (``parapll-qlog/1``): a bounded ring + optional JSONL sink
  hooked into the oracle and TCP server.
* :mod:`repro.obs.slo` — sliding-window latency/availability SLOs:
  multi-resolution windowed quantiles, error budgets, burn rates,
  breach events and the server's load-shedding signal.
* :mod:`repro.obs.workload` — workload characterization from a qlog:
  Zipf skew fit, hot vertices/pairs, simulated LRU hit-rate curve
  (``parapll-workload/1``).
* :mod:`repro.obs.bus` / :mod:`repro.obs.relay` — the cross-process
  telemetry plane (``parapll-telemetry/1``): a bounded non-blocking
  event bus in every worker process, a socket relay with periodic and
  at-exit flushes, and a parent-side collector that merges metrics
  (counters sum, gauges LWW tagged by source, histograms bucket-merge)
  and stitches spans/flightrec events into one fleet-wide Chrome trace
  — the sensor layer behind ``parapll dash``.

Metrics are default-on (cheap counter bumps); tracing is opt-in::

    from repro import obs

    obs.configure(tracing=True)
    build_parallel_threads(graph, 4)
    print(obs.render_summary())
    obs.write_trace_jsonl("build.trace.jsonl")
"""

from repro.obs.audit import (
    AUDIT_SCHEMA,
    audit_index,
    diff_reports,
    load_report,
    render_diff,
    render_report,
    validate_report,
)
from repro.obs.buildmon import (
    BUILDMON_SCHEMA,
    BuildMonitor,
    monitored,
    report_root,
)
from repro.obs.bus import (
    TELEMETRY_SCHEMA,
    MetricsDelta,
    TelemetryBus,
    publish_event,
)
from repro.obs.config import ObsConfig, configure, current_config
from repro.obs.context import (
    Envelope,
    TraceContext,
    activate,
    new_context,
)
from repro.obs.env import environment_metadata
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    HubCandidate,
    QueryExplanation,
    explain_query,
)
from repro.obs.flightrec import (
    FLIGHTREC_SCHEMA,
    FlightRecorder,
    get_recorder,
    install_signal_handler,
)
from repro.obs.export import (
    prometheus_text,
    read_trace_jsonl,
    render_summary,
    trace_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    get_registry,
    histogram_bucket_counts,
    histogram_quantile,
    merge_histogram_snapshot,
)
from repro.obs.relay import Collector, RelayClient, render_fleet
from repro.obs.timeline import (
    CriticalPathReport,
    analyze_critical_path,
    chrome_trace,
    render_critical_path,
    write_chrome_trace,
)
from repro.obs.qlog import (
    QLOG_SCHEMA,
    QueryLogRecorder,
    read_qlog,
    recording,
)
from repro.obs.slo import (
    SLO_SCHEMA,
    SLOTarget,
    SLOTracker,
    SlidingWindowHistogram,
    get_tracker,
)
from repro.obs.timers import PhaseTimer, SamplingProfiler
from repro.obs.trace import TraceRecord, Tracer, event, get_tracer, span
from repro.obs.workload import (
    WORKLOAD_SCHEMA,
    characterize,
    render_workload,
)

__all__ = [
    "ObsConfig",
    "configure",
    "current_config",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsError",
    "get_registry",
    "TraceRecord",
    "Tracer",
    "get_tracer",
    "span",
    "event",
    "PhaseTimer",
    "SamplingProfiler",
    "prometheus_text",
    "render_summary",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "histogram_quantile",
    "environment_metadata",
    "CriticalPathReport",
    "analyze_critical_path",
    "chrome_trace",
    "render_critical_path",
    "write_chrome_trace",
    "TraceContext",
    "Envelope",
    "new_context",
    "activate",
    "EXPLAIN_SCHEMA",
    "HubCandidate",
    "QueryExplanation",
    "explain_query",
    "FLIGHTREC_SCHEMA",
    "FlightRecorder",
    "get_recorder",
    "install_signal_handler",
    "BUILDMON_SCHEMA",
    "BuildMonitor",
    "monitored",
    "report_root",
    "AUDIT_SCHEMA",
    "audit_index",
    "diff_reports",
    "load_report",
    "render_diff",
    "render_report",
    "validate_report",
    "QLOG_SCHEMA",
    "QueryLogRecorder",
    "read_qlog",
    "recording",
    "SLO_SCHEMA",
    "SLOTarget",
    "SLOTracker",
    "SlidingWindowHistogram",
    "get_tracker",
    "WORKLOAD_SCHEMA",
    "characterize",
    "render_workload",
    "TELEMETRY_SCHEMA",
    "TelemetryBus",
    "MetricsDelta",
    "publish_event",
    "RelayClient",
    "Collector",
    "render_fleet",
    "histogram_bucket_counts",
    "merge_histogram_snapshot",
    "reset",
]


def reset() -> None:
    """Zero all metrics and drop all trace/SLO/qlog state.

    Registrations and instrument handles survive — only values are
    cleared.  Intended for tests and for scoping a metrics snapshot to
    one run (the bench harness calls this before each experiment).
    """
    from repro.obs import qlog as _qlog

    get_registry().reset()
    get_tracer().clear()
    get_recorder().clear()
    get_tracker().reset()
    active = _qlog.active()
    if active is not None:
        active.clear()
