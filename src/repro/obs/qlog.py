"""The query log: sampled per-request records of serve-path traffic.

The build path has :mod:`repro.obs.buildmon` and the query *mechanics*
have EXPLAIN, but until now nothing captured the **traffic itself** —
which pairs arrive, how often, how fast they were answered, whether the
cache helped.  That stream is what workload characterization
(:mod:`repro.obs.workload`), replay (:mod:`repro.service.replay`) and
any future shard/replica placement policy consume, so it gets the same
treatment as the flight recorder: a bounded in-memory ring written with
GIL-atomic operations only, plus an optional append-only JSONL sink for
durable capture.

One record per sampled query::

    {"seq", "ts", "mono", "op", "s", "t", "latency_us", "cache_hit",
     "entries_scanned", "outcome", "req_id"}

* ``ts`` / ``mono`` — wall-clock and monotonic capture times.  ``ts``
  is the *event timestamp* (when did this query happen, for humans and
  cross-host correlation); any **interval** computed between records
  (inter-arrival gaps, replay pacing) must use ``mono``, which a
  stepped wall clock cannot corrupt.
* ``op`` — ``"distance"`` for point lookups, ``"batch"`` for pairs
  served inside a batch request.
* ``latency_us`` — service time in microseconds (for vectorised batch
  misses this is the batch wall amortised over its pairs).
* ``cache_hit`` — answered from the oracle's LRU.
* ``entries_scanned`` — label entries the merge join consumed (0 for
  cache hits and for pairs answered by the vectorised batch kernel,
  which does not track per-pair scan counts).
* ``outcome`` — ``"ok"``, ``"unreachable"``, ``"error"`` or ``"shed"``
  (fast-failed by the server's SLO load shedder).
* ``req_id`` — the server request id when the query arrived over TCP
  (:func:`request_scope` propagates it through the oracle), else
  ``None``.

Sampling is controlled by the obs-config knob
``configure(qlog_sample=...)``: the recorder captures that fraction of
queries using a seeded :class:`random.Random`, so a capture is
reproducible for a fixed seed and arrival order.  With no recorder
installed the hot-path cost is one module-global load and an ``is
None`` test — the same discipline as :mod:`repro.obs.buildmon` — and
that cost is gated by the ``qlog_overhead`` perf workload.

Dump format (``parapll-qlog/1``): a header line ``{"kind": "header",
"schema": "parapll-qlog/1", "pid", "records", "capacity", "sampled",
"dumped_at"}`` followed by one record per line, oldest first.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import IO, Any, Dict, Iterator, List, Optional, Union

from repro.obs import config as _config

__all__ = [
    "QLOG_SCHEMA",
    "DEFAULT_CAPACITY",
    "QueryLogRecorder",
    "active",
    "install",
    "uninstall",
    "recording",
    "record_query",
    "request_scope",
    "current_req_id",
    "read_qlog",
]

QLOG_SCHEMA = "parapll-qlog/1"
DEFAULT_CAPACITY = 65536

#: The record fields, in emission order (also the wire schema).
RECORD_FIELDS = (
    "seq",
    "ts",
    "mono",
    "op",
    "s",
    "t",
    "latency_us",
    "cache_hit",
    "entries_scanned",
    "outcome",
    "req_id",
)


class QueryLogRecorder:
    """A bounded ring of sampled query records with an optional sink.

    Args:
        capacity: ring size; the oldest records are evicted once full
            (the sink, when given, still sees every sampled record).
        sample: sampling fraction override; ``None`` reads the live
            ``configure(qlog_sample=...)`` knob on every decision so a
            running server can be re-tuned without a restart.
        sink: a path (JSONL appended per record, flushed on
            :meth:`flush`/:meth:`close`) or any object with ``write``.
        seed: seed for the sampling RNG — a fixed seed over a fixed
            arrival order captures the same subset every run.

    Thread safety: ring appends use only GIL-atomic deque operations;
    the sink write is serialized by a small lock (sampled records only,
    never the unsampled fast path).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample: Optional[float] = None,
        sink: Union[str, os.PathLike, IO[str], None] = None,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample is not None and not 0.0 <= sample <= 1.0:
            raise ValueError("sample must be in [0, 1]")
        from collections import deque

        self._records: "deque" = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._sample = sample
        self._rng = random.Random(seed)
        self._sink_lock = threading.Lock()
        self._sink: Optional[IO[str]] = None
        self._sink_owned = False
        self.sampled = 0
        if sink is not None:
            if hasattr(sink, "write"):
                self._sink = sink  # type: ignore[assignment]
            else:
                self._sink = open(sink, "a", encoding="utf-8")  # type: ignore[arg-type]
                self._sink_owned = True

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Ring-buffer size."""
        return self._records.maxlen or 0

    @property
    def sample(self) -> float:
        """The effective sampling fraction right now."""
        return (
            self._sample if self._sample is not None else _config.QLOG_SAMPLE
        )

    def should_sample(self) -> bool:
        """One sampling decision (seeded RNG against the live knob)."""
        fraction = self.sample
        if fraction >= 1.0:
            return True
        if fraction <= 0.0:
            return False
        return self._rng.random() < fraction

    def record(
        self,
        op: str,
        s: int,
        t: int,
        latency_us: float,
        cache_hit: bool = False,
        entries_scanned: int = 0,
        outcome: str = "ok",
        req_id: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Append one (already sampled) query record; returns it."""
        rec = {
            "seq": next(self._seq),
            "ts": time.time(),
            "mono": time.monotonic(),
            "op": op,
            "s": int(s),
            "t": int(t),
            "latency_us": float(latency_us),
            "cache_hit": bool(cache_hit),
            "entries_scanned": int(entries_scanned),
            "outcome": outcome,
            "req_id": req_id,
        }
        self._records.append(rec)
        self.sampled += 1
        if self._sink is not None:
            line = json.dumps(rec) + "\n"
            with self._sink_lock:
                self._sink.write(line)
        return rec

    def snapshot(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """A copy of the ring, oldest first (newest *last* when given)."""
        records = list(self._records)
        if last is not None and last >= 0:
            records = records[-last:] if last else []
        return records

    def clear(self) -> None:
        """Drop the buffered records (the sink is untouched)."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Flush the sink's buffers to disk (no-op without a sink)."""
        if self._sink is not None:
            with self._sink_lock:
                self._sink.flush()

    def close(self) -> None:
        """Flush and close an owned sink file."""
        if self._sink is not None:
            with self._sink_lock:
                self._sink.flush()
                if self._sink_owned:
                    self._sink.close()
                self._sink = None

    def write_jsonl(
        self, path_or_file: Union[str, os.PathLike, IO[str]]
    ) -> int:
        """Write header + ring contents as ``parapll-qlog/1`` JSONL.

        Returns:
            The number of records written (header excluded).
        """
        records = self.snapshot()
        header = {
            "kind": "header",
            "schema": QLOG_SCHEMA,
            "pid": os.getpid(),
            "records": len(records),
            "capacity": self.capacity,
            "sampled": self.sampled,
            "dumped_at": time.time(),
        }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(rec) for rec in records)
        text = "\n".join(lines) + "\n"
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)  # type: ignore[union-attr]
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                fh.write(text)
        return len(records)


def read_qlog(path_or_lines: Union[str, List[str]]) -> List[Dict[str, Any]]:
    """Parse ``parapll-qlog/1`` JSONL back into record dicts.

    Accepts a dump produced by :meth:`QueryLogRecorder.write_jsonl`
    (header first) or a raw sink file (no header).  Blank lines are
    skipped; a header from a different schema is rejected.

    Raises:
        ValueError: for an unknown schema header.
    """
    if isinstance(path_or_lines, str):
        with open(path_or_lines, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(path_or_lines)
    out: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if doc.get("kind") == "header":
            if doc.get("schema") != QLOG_SCHEMA:
                raise ValueError(
                    f"not a {QLOG_SCHEMA} capture: {doc.get('schema')!r}"
                )
            continue
        out.append(doc)
    return out


# ----------------------------------------------------------------------
# Module-level installation (what the oracle and server see)
# ----------------------------------------------------------------------
_active: Optional[QueryLogRecorder] = None

#: Server-request correlation: the handler thread parks the req_id here
#: so oracle-level records can carry it without any API plumbing.
_request = threading.local()


def active() -> Optional[QueryLogRecorder]:
    """The currently installed recorder, or ``None``."""
    return _active


def install(recorder: QueryLogRecorder) -> QueryLogRecorder:
    """Install *recorder* as the process-wide query-log recorder."""
    global _active
    _active = recorder
    return recorder


def uninstall() -> None:
    """Remove the installed recorder (no-op when none is installed)."""
    global _active
    _active = None


@contextmanager
def recording(recorder: QueryLogRecorder) -> Iterator[QueryLogRecorder]:
    """Install *recorder* for the block, then flush its sink.

    The previously installed recorder (if any) is restored on exit.
    """
    global _active
    previous = _active
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous
        recorder.flush()


@contextmanager
def request_scope(req_id: Optional[int]) -> Iterator[None]:
    """Attach *req_id* to qlog records made by this thread's dispatch."""
    previous = getattr(_request, "req_id", None)
    _request.req_id = req_id
    try:
        yield
    finally:
        _request.req_id = previous


def current_req_id() -> Optional[int]:
    """The server req_id attached to this thread, or ``None``."""
    return getattr(_request, "req_id", None)


def record_query(
    op: str,
    s: int,
    t: int,
    latency_us: float,
    cache_hit: bool = False,
    entries_scanned: int = 0,
    outcome: str = "ok",
    req_id: Optional[int] = None,
) -> None:
    """Record one query to the installed recorder, sampling applied.

    This is the serve-path hook; it costs one global load when no
    recorder is installed.  *req_id* defaults to the handler thread's
    :func:`request_scope` value.
    """
    recorder = _active
    if recorder is not None and recorder.should_sample():
        recorder.record(
            op,
            s,
            t,
            latency_us,
            cache_hit=cache_hit,
            entries_scanned=entries_scanned,
            outcome=outcome,
            req_id=req_id if req_id is not None else current_req_id(),
        )
