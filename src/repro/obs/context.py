"""``TraceContext``: cross-rank trace propagation for stitched traces.

A build or query that spans several ranks produces spans on several
threads (or on the simulator's driver), and without a shared identifier
those spans are just co-located lines in one ring buffer.  A
:class:`TraceContext` is the compact envelope header that stitches them
together: a ``trace_id`` naming the whole operation, the sender's open
``span_id`` (so a receive can point back at the exact send site) and the
sender's ``rank``.

The communicators (:class:`~repro.cluster.comm.SimComm`,
:class:`~repro.cluster.threadcomm.ThreadComm`) stamp the *current*
context onto every ``send``/``bcast``/``allgather`` payload by wrapping
it in an :class:`Envelope`, and unwrap on the receive side — user
payloads are never touched.  Each delivery is recorded as a matched
``comm_send``/``comm_recv`` event pair sharing a ``flow_id``;
:func:`repro.obs.timeline.chrome_trace` turns those pairs into Chrome
trace *flow events* (``ph: "s"``/``"f"``), which Perfetto renders as
arrows between rank tracks.

The current context is thread-local: a driver creates one with
:func:`new_context`, each rank thread activates a per-rank child via
:func:`activate`, and instrumented code reads it with :func:`current`.
Everything here is allocation-light and lock-free; with tracing off the
only residual cost is one envelope object per message.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "TraceContext",
    "Envelope",
    "new_context",
    "current",
    "set_current",
    "activate",
    "stamp",
    "unwrap",
    "next_flow_id",
]

_local = threading.local()

#: Monotone per-process counters for trace and flow identifiers.  The
#: pid prefix keeps ids from different processes distinct when their
#: dumps are merged into one trace.
_trace_ids = itertools.count(1)
_flow_ids = itertools.count(1)


@dataclass(frozen=True)
class TraceContext:
    """The propagated header of one distributed trace.

    Attributes:
        trace_id: identifier shared by every span/event of one logical
            operation (a build, a query), across all ranks.
        span_id: the sender's innermost open span at stamp time, so the
            receive side can reference the exact send site (``None``
            when no span was open).
        rank: the stamping rank (``None`` outside rank code).
    """

    trace_id: str
    span_id: Optional[int] = None
    rank: Optional[int] = None

    def child(
        self,
        rank: Optional[int] = None,
        span_id: Optional[int] = None,
    ) -> "TraceContext":
        """A derived context sharing the trace id."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id if span_id is None else span_id,
            rank=self.rank if rank is None else rank,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe envelope form (the documented wire format)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "rank": self.rank,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=data.get("span_id"),
            rank=data.get("rank"),
        )


class Envelope:
    """A payload stamped with its sender's :class:`TraceContext`.

    Communicators construct these internally; user code never sees one.
    ``flow_id`` names one delivery edge (send -> receive) so the two
    trace events of the edge can be matched up at export time.
    """

    __slots__ = ("payload", "ctx", "flow_id")

    def __init__(
        self,
        payload: Any,
        ctx: Optional[TraceContext],
        flow_id: Optional[str] = None,
    ) -> None:
        self.payload = payload
        self.ctx = ctx
        self.flow_id = flow_id if flow_id is not None else next_flow_id()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Envelope(flow_id={self.flow_id!r}, ctx={self.ctx!r})"


def new_context(rank: Optional[int] = None) -> TraceContext:
    """A fresh root context with a process-unique trace id."""
    return TraceContext(
        trace_id=f"t{os.getpid()}-{next(_trace_ids)}", rank=rank
    )


def next_flow_id() -> str:
    """A process-unique id for one message-delivery edge."""
    return f"f{os.getpid()}-{next(_flow_ids)}"


def current() -> Optional[TraceContext]:
    """The calling thread's active context, or ``None``."""
    return getattr(_local, "ctx", None)


def set_current(ctx: Optional[TraceContext]) -> None:
    """Replace the calling thread's active context."""
    _local.ctx = ctx


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Scope *ctx* as the thread's current context; restores on exit."""
    previous = current()
    set_current(ctx)
    try:
        yield ctx
    finally:
        set_current(previous)


def stamp(payload: Any, rank: Optional[int] = None) -> Envelope:
    """Wrap *payload* in an :class:`Envelope` carrying the current context.

    The stamped context records the caller's innermost open span (when
    tracing is on) so receive events can point back at the send site.
    """
    ctx = current()
    if ctx is not None and rank is not None and ctx.rank != rank:
        ctx = ctx.child(rank=rank)
    if ctx is not None:
        span_id = _open_span_id()
        if span_id is not None and span_id != ctx.span_id:
            ctx = ctx.child(span_id=span_id)
    return Envelope(payload, ctx)


def unwrap(obj: Any) -> Tuple[Any, Optional[TraceContext], Optional[str]]:
    """``(payload, ctx, flow_id)`` for envelopes; passthrough otherwise."""
    if isinstance(obj, Envelope):
        return obj.payload, obj.ctx, obj.flow_id
    return obj, None, None


def _open_span_id() -> Optional[int]:
    """The id of the calling thread's innermost open span, if any."""
    from repro.obs import config as _config

    if not _config.TRACING:
        return None
    from repro.obs.trace import get_tracer

    stack = get_tracer()._stack()
    return stack[-1] if stack else None
