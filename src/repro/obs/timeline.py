"""Timeline export and critical-path analysis of trace buffers.

Two consumers of the same :class:`~repro.obs.trace.TraceRecord` stream:

* :func:`chrome_trace` converts it into the Chrome Trace Event Format
  (the ``{"traceEvents": [...]}`` JSON that Perfetto and
  ``chrome://tracing`` load), one track per worker thread or simulated
  core.  Real and simulated records share one schema but run on
  different clocks, so they are separated into two trace *processes*
  (``pid`` 1 = wall clock, ``pid`` 2 = simulated seconds) and each
  process's timestamps are rebased to its own origin.

* :func:`analyze_critical_path` reduces the same records to the
  quantities that explain a parallel build's makespan: per-worker
  busy / lock-wait / idle fractions, the longest dependency chain of
  tasks (walking span parentage and commit ordering backwards from the
  last task to finish), and the top-k slowest root searches.

Task extraction understands both record shapes the builders emit:
span records (``kind == "span"``, wall clock, nested via ``parent_id``)
and the simulator's ``root_search`` events (``kind == "event"`` with
``start`` / ``finish`` / ``worker`` attributes and ``clock == "sim"``).
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.trace import TraceRecord, get_tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "TimelineTask",
    "LaneBreakdown",
    "CriticalPathReport",
    "analyze_critical_path",
    "render_critical_path",
]

#: Trace "process" ids for the two clock domains.
PID_WALL = 1
PID_SIM = 2

_US = 1_000_000.0  # seconds -> microseconds


def _is_sim(record: TraceRecord) -> bool:
    return record.attrs.get("clock") == "sim"


def _sim_bounds(record: TraceRecord) -> Tuple[float, float]:
    """(start, end) seconds of a simulator event record."""
    end = float(record.ts)
    start = float(record.attrs.get("start", end))
    if "finish" in record.attrs:
        end = float(record.attrs["finish"])
    return min(start, end), max(start, end)


@dataclass
class TimelineTask:
    """One unit of timed work on one lane (worker thread / virtual core).

    Attributes:
        name: record name (``"root_search"``, ``"cluster_sync"``, ...).
        lane: display lane, e.g. ``"worker 3"`` or a thread name.
        start: start time, seconds (domain clock).
        end: end time, seconds.
        lock_wait: seconds of the task spent waiting for the commit
            lock (0 when the producer did not record it).
        sim: whether the timestamps are simulated seconds.
        span_id: originating trace record id.
        parent_id: enclosing span id, if any.
        attrs: the record's attributes (shared, do not mutate).
    """

    name: str
    lane: str
    start: float
    end: float
    lock_wait: float = 0.0
    sim: bool = False
    span_id: int = 0
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Task length in seconds."""
        return self.end - self.start


def _lane_of(record: TraceRecord) -> str:
    worker = record.attrs.get("worker")
    if worker is not None:
        return f"worker {worker}"
    return record.thread or "main"


def extract_tasks(records: Iterable[TraceRecord]) -> List[TimelineTask]:
    """Normalise trace records into :class:`TimelineTask` intervals.

    Spans become tasks directly; simulator ``event`` records carrying
    ``start``/``finish`` attributes (the sim's task-completion marks)
    become tasks on their virtual worker's lane.  Instant events without
    an extent are skipped — they have no duration to account.
    """
    tasks: List[TimelineTask] = []
    for rec in records:
        sim = _is_sim(rec)
        if rec.kind == "span" and rec.dur is not None:
            start, end = float(rec.ts), float(rec.ts) + float(rec.dur)
        elif rec.kind == "event" and "start" in rec.attrs:
            start, end = _sim_bounds(rec)
        else:
            continue
        tasks.append(
            TimelineTask(
                name=rec.name,
                lane=_lane_of(rec),
                start=start,
                end=end,
                lock_wait=float(rec.attrs.get("lock_wait", 0.0)),
                sim=sim,
                span_id=rec.span_id,
                parent_id=rec.parent_id,
                attrs=rec.attrs,
            )
        )
    return tasks


# ----------------------------------------------------------------------
# Chrome Trace Event Format
# ----------------------------------------------------------------------
def chrome_trace(
    records: Optional[Iterable[TraceRecord]] = None,
) -> Dict[str, Any]:
    """Convert trace records to a Chrome Trace Event Format document.

    Defaults to the global tracer's buffer.  The result is a JSON-safe
    dict with ``traceEvents`` sorted by timestamp: complete (``"X"``)
    events for everything with an extent, instant (``"i"``) events for
    point marks, plus ``"M"`` metadata naming the processes (wall / sim
    clock domains) and per-lane threads.  Timestamps and durations are
    microseconds, rebased per clock domain so both start near 0.
    """
    if records is None:
        records = get_tracer().records()
    records = list(records)

    # Rebase each clock domain to its own earliest timestamp.
    origins: Dict[int, float] = {}
    for rec in records:
        pid = PID_SIM if _is_sim(rec) else PID_WALL
        ts = float(rec.ts)
        if rec.kind == "event" and "start" in rec.attrs:
            ts = _sim_bounds(rec)[0]
        origins[pid] = min(origins.get(pid, ts), ts)

    # Stable lane -> tid assignment per process, in first-seen order.
    tids: Dict[Tuple[int, str], int] = {}

    def tid_for(pid: int, lane: str) -> int:
        key = (pid, lane)
        if key not in tids:
            tids[key] = sum(1 for p, _l in tids if p == pid)
        return tids[key]

    events: List[Dict[str, Any]] = []
    # Cross-rank message stitching: comm_send ("flow": "out") and
    # comm_recv ("flow": "in") records sharing a flow_id become a
    # Chrome flow-event arrow from the send point to the recv point.
    flow_sends: Dict[str, Tuple[int, int, float]] = {}
    flow_recvs: List[Tuple[str, int, int, float, int]] = []
    for rec in records:
        pid = PID_SIM if _is_sim(rec) else PID_WALL
        lane = _lane_of(rec)
        tid = tid_for(pid, lane)
        args = {
            k: v
            for k, v in rec.attrs.items()
            if isinstance(v, (str, int, float, bool)) or v is None
        }
        args["span_id"] = rec.span_id
        if rec.parent_id is not None:
            args["parent_id"] = rec.parent_id
        if rec.kind == "span" and rec.dur is not None:
            ts, dur = float(rec.ts), float(rec.dur)
            ph = "X"
        elif rec.kind == "event" and "start" in rec.attrs:
            start, end = _sim_bounds(rec)
            ts, dur = start, end - start
            ph = "X"
        else:
            ts, dur = float(rec.ts), 0.0
            ph = "i"
        event: Dict[str, Any] = {
            "name": rec.name,
            "ph": ph,
            "ts": round((ts - origins[pid]) * _US, 3),
            "dur": round(dur * _US, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if ph == "i":
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
        flow = rec.attrs.get("flow")
        flow_id = rec.attrs.get("flow_id")
        if flow_id is not None:
            if flow == "out":
                flow_sends[flow_id] = (pid, tid, event["ts"])
            elif flow == "in":
                flow_recvs.append(
                    (flow_id, pid, tid, event["ts"], rec.span_id)
                )
    # Emit one flow arrow per delivered message.  Broadcast/allgather
    # sends fan out to several receivers, so the edge id is
    # flow_id + receiver (Chrome flow ids must be unique per arrow).
    for flow_id, pid, tid, ts, span_id in flow_recvs:
        send = flow_sends.get(flow_id)
        if send is None:
            continue
        s_pid, s_tid, s_ts = send
        edge = f"{flow_id}>{span_id}"
        events.append(
            {
                "name": "comm",
                "cat": "comm",
                "ph": "s",
                "id": edge,
                "ts": s_ts,
                "dur": 0,
                "pid": s_pid,
                "tid": s_tid,
                "args": {"flow_id": flow_id},
            }
        )
        events.append(
            {
                "name": "comm",
                "cat": "comm",
                "ph": "f",
                "bp": "e",
                "id": edge,
                "ts": max(ts, s_ts),
                "dur": 0,
                "pid": pid,
                "tid": tid,
                "args": {"flow_id": flow_id},
            }
        )
    events.sort(key=lambda e: (e["pid"], e["ts"], e["tid"]))

    meta: List[Dict[str, Any]] = []
    names = {PID_WALL: "parapll (wall clock)", PID_SIM: "parapll (simulated)"}
    for pid in sorted({p for p, _l in tids}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "dur": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": names[pid]},
            }
        )
    for (pid, lane), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "dur": 0,
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs.timeline", "schema": "chrome-trace/1"},
    }


def write_chrome_trace(
    path_or_file: Union[str, IO[str]],
    records: Optional[Iterable[TraceRecord]] = None,
) -> int:
    """Write a Chrome trace JSON file; returns the trace-event count."""
    doc = chrome_trace(records)
    text = json.dumps(doc, indent=1)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)  # type: ignore[union-attr]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            fh.write(text)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
@dataclass
class LaneBreakdown:
    """Where one worker's share of the makespan went.

    ``busy + lock_wait + idle == 1`` (fractions of the makespan).
    """

    lane: str
    tasks: int
    busy_seconds: float
    lock_wait_seconds: float
    idle_seconds: float
    busy: float
    lock_wait: float
    idle: float


@dataclass
class CriticalPathReport:
    """The analysed timeline of one build.

    Attributes:
        makespan: window covered by the tasks, seconds.
        sim: whether the timestamps are simulated seconds.
        lanes: per-worker breakdowns, lane-name order.
        chain: the longest dependency chain, in execution order.
        chain_seconds: summed task time along the chain.
        chain_coverage: ``chain_seconds / makespan`` — how much of the
            end-to-end time the chain explains (1.0 means the makespan
            is fully serialised on this chain).
        slowest: the top-k slowest tasks, slowest first.
    """

    makespan: float
    sim: bool
    lanes: List[LaneBreakdown]
    chain: List[TimelineTask]
    chain_seconds: float
    chain_coverage: float
    slowest: List[TimelineTask]


def _dependency_chain(tasks: List[TimelineTask]) -> List[TimelineTask]:
    """The longest dependency chain, walked backwards from the end.

    The dependency structure is implicit: a task could not start before
    (a) its predecessor on the same lane finished, or (b) the task whose
    commit most recently preceded its start finished (the label store /
    commit-lock ordering, and span parentage for nested spans).  Walking
    from the last task to finish, each step picks the latest-finishing
    task that ended at or before the current task's start — preferring a
    same-lane predecessor on (near-)ties, and following ``parent_id``
    upward when the chain reaches the start of a nested span.
    """
    if not tasks:
        return []
    by_id = {t.span_id: t for t in tasks}
    by_end = sorted(tasks, key=lambda t: t.end)
    ends = [t.end for t in by_end]
    current = max(tasks, key=lambda t: t.end)
    chain = [current]
    seen = {id(current)}
    eps = 1e-9
    while True:
        hi = bisect_right(ends, current.start + eps)
        nxt = None
        if hi > 0:
            best_end = ends[hi - 1]
            # Among the latest finishers (ties within eps), prefer the
            # same-lane predecessor; otherwise take any latest one.
            k = hi - 1
            while k >= 0 and ends[k] >= best_end - eps:
                cand = by_end[k]
                if id(cand) not in seen:
                    if nxt is None:
                        nxt = cand
                    if cand.lane == current.lane:
                        nxt = cand
                        break
                k -= 1
        if nxt is None:
            parent = (
                by_id.get(current.parent_id) if current.parent_id else None
            )
            if parent is not None and id(parent) not in seen:
                nxt = parent
            else:
                break
        chain.append(nxt)
        seen.add(id(nxt))
        current = nxt
    chain.reverse()
    return chain


def _drop_containers(tasks: List[TimelineTask]) -> List[TimelineTask]:
    """Filter out enclosing spans, keeping only leaf work items.

    A span is a container when another task nests under it via
    ``parent_id`` (serial builds: same-thread nesting), or when it is
    alone on its lane, covers essentially the whole makespan, and
    temporally encloses most other tasks (threaded builds: the
    whole-build span wraps every worker's root searches but is never
    their ``parent_id`` — span nesting is thread-local).  Counting a
    container as work would report its lane as 100% busy and hand it
    the critical path.  Ordinary tasks that merely overlap smaller
    tasks on other lanes are kept.
    """
    ids_with_children = {
        t.parent_id for t in tasks if t.parent_id is not None
    }
    lane_counts: Dict[str, int] = {}
    for t in tasks:
        lane_counts[t.lane] = lane_counts.get(t.lane, 0) + 1
    t0 = min(t.start for t in tasks)
    t1 = max(t.end for t in tasks)
    span_floor = 0.98 * (t1 - t0)
    by_start = sorted(tasks, key=lambda t: t.start)
    starts = [t.start for t in by_start]

    def is_container(t: TimelineTask) -> bool:
        if t.span_id in ids_with_children:
            return True
        if lane_counts[t.lane] != 1 or t.duration < span_floor:
            return False
        others = len(tasks) - 1
        if others == 0:
            return False
        lo = bisect_left(starts, t.start)
        hi = bisect_right(starts, t.end)
        enclosed = sum(
            1
            for other in by_start[lo:hi]
            if other is not t and other.end <= t.end
        )
        return 2 * enclosed >= others

    return [t for t in tasks if not is_container(t)]


def analyze_critical_path(
    records: Optional[Iterable[TraceRecord]] = None,
    top_k: int = 5,
    task_names: Optional[Iterable[str]] = None,
) -> CriticalPathReport:
    """Analyse a trace buffer into a :class:`CriticalPathReport`.

    Args:
        records: trace records (defaults to the global tracer).  When
            the buffer holds both wall-clock and simulated records the
            simulated domain is analysed (it is the one with scheduling
            semantics; pre-filter the records to override).
        top_k: how many slowest tasks to report.
        task_names: restrict the analysis to these record names
            (default: every record with an extent, minus enclosing
            whole-build spans, which would otherwise count one lane as
            100% busy).

    Raises:
        ValueError: when the records contain no analysable tasks.
    """
    if records is None:
        records = get_tracer().records()
    tasks = extract_tasks(records)
    if any(t.sim for t in tasks):
        tasks = [t for t in tasks if t.sim]
    if task_names is not None:
        wanted = set(task_names)
        tasks = [t for t in tasks if t.name in wanted]
    else:
        tasks = _drop_containers(tasks)
    if not tasks:
        raise ValueError("no timed tasks in the trace buffer")

    t0 = min(t.start for t in tasks)
    t1 = max(t.end for t in tasks)
    makespan = max(t1 - t0, 1e-12)

    lanes: Dict[str, List[TimelineTask]] = {}
    for t in tasks:
        lanes.setdefault(t.lane, []).append(t)
    breakdowns = []
    for lane in sorted(lanes):
        lane_tasks = lanes[lane]
        lock = sum(min(t.lock_wait, t.duration) for t in lane_tasks)
        busy = sum(t.duration for t in lane_tasks) - lock
        idle = max(0.0, makespan - busy - lock)
        breakdowns.append(
            LaneBreakdown(
                lane=lane,
                tasks=len(lane_tasks),
                busy_seconds=busy,
                lock_wait_seconds=lock,
                idle_seconds=idle,
                busy=busy / makespan,
                lock_wait=lock / makespan,
                idle=idle / makespan,
            )
        )

    chain = _dependency_chain(tasks)
    chain_seconds = sum(t.duration for t in chain)
    slowest = sorted(tasks, key=lambda t: t.duration, reverse=True)[:top_k]
    return CriticalPathReport(
        makespan=makespan,
        sim=any(t.sim for t in tasks),
        lanes=breakdowns,
        chain=chain,
        chain_seconds=chain_seconds,
        chain_coverage=min(1.0, chain_seconds / makespan),
        slowest=slowest,
    )


def render_critical_path(report: CriticalPathReport) -> str:
    """Terminal-friendly rendering of a :class:`CriticalPathReport`."""
    unit = "sim-s" if report.sim else "s"
    lines = [
        "critical path",
        "=============",
        f"makespan {report.makespan:.4f}{unit}, longest chain "
        f"{len(report.chain)} tasks / {report.chain_seconds:.4f}{unit} "
        f"({report.chain_coverage:.0%} of makespan)",
        "per-worker breakdown (busy / lock-wait / idle):",
    ]
    for lane in report.lanes:
        lines.append(
            f"  {lane.lane:<12} {lane.tasks:5d} tasks  "
            f"{lane.busy:6.1%} / {lane.lock_wait:6.1%} / {lane.idle:6.1%}"
        )
    if report.slowest:
        lines.append(f"top {len(report.slowest)} slowest tasks:")
        for t in report.slowest:
            what = f"root {t.attrs['root']}" if "root" in t.attrs else t.name
            lines.append(
                f"  {t.duration:.5f}{unit}  {what:<14} on {t.lane}"
            )
    return "\n".join(lines)
