"""The build monitor: live per-root telemetry while an index is built.

The query path has EXPLAIN, tracing and the flight recorder; the build
path — where the paper's actual claims live (pruning power, the
Figure-6 label skew, static-vs-dynamic balance) — had nothing between
"build started" and "build finished".  :class:`BuildMonitor` fills that
gap: builders report every committed root (with its
:class:`~repro.types.SearchStats`) and the monitor turns the stream
into periodic progress snapshots:

* ``roots_done`` / ``total_roots`` and the completion fraction;
* throughput (roots/sec, labels/sec over the whole run) and an ETA
  extrapolated from the remaining root count;
* the pruning-effectiveness split — of all settled vertices, how many
  were pruned by the 2-hop-cover test vs. turned into label entries —
  which is the live version of the paper's pruning-power argument;
* per-worker activity and **stall detection**: a worker that has not
  committed a root for ``stall_seconds`` while others make progress is
  flagged (a deadlocked rank, a root stuck on a pathological search).

Snapshots are emitted on a sampling schedule (every ``sample_every``
roots and/or every ``interval_seconds`` of wall time — sampling, not
per-root emission, is what keeps the monitor's overhead under the <5 %
``build_serial`` budget gated by the ``audit_overhead`` perf workload).
Each emitted snapshot goes three places at once:

* the monitor's own event list, exportable as ``parapll-buildmon/1``
  JSONL via :meth:`BuildMonitor.write_jsonl`;
* the process-wide flight recorder (kind ``build_progress``), so a
  worker/rank failure dump includes the last N build-progress frames;
* the metrics registry gauges (``parapll_buildmon_*``), so a scrape of
  a building process shows live progress.

Builders do not take a monitor parameter: they call
:func:`report_root`, which is a no-op (one global load) unless a
monitor has been installed with :func:`install` / :func:`monitored`.
That keeps the hot loops free of plumbing and the disabled cost at one
``is None`` test per root::

    from repro.obs import buildmon

    monitor = buildmon.BuildMonitor(total_roots=graph.num_vertices)
    with buildmon.monitored(monitor):
        build_parallel_threads(graph, 4)
    monitor.write_jsonl("build-progress.jsonl")
    print(monitor.render())
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.obs import config as _config
from repro.obs import flightrec as _flightrec
from repro.types import SearchStats

__all__ = [
    "BUILDMON_SCHEMA",
    "BuildMonitor",
    "active",
    "install",
    "uninstall",
    "monitored",
    "report_root",
    "report_note",
]

BUILDMON_SCHEMA = "parapll-buildmon/1"

#: A worker with no commit for this long (while the build is live) is
#: reported as stalled.
DEFAULT_STALL_SECONDS = 30.0


class BuildMonitor:
    """Aggregates per-root build telemetry into progress snapshots.

    Args:
        total_roots: expected root count (enables fraction + ETA);
            ``None`` when unknown (e.g. an open-ended dynamic build).
        sample_every: emit a snapshot every N committed roots
            (``None`` disables count-based sampling).
        interval_seconds: emit a snapshot when at least this much wall
            time passed since the last one (``None`` disables
            time-based sampling).  With both samplers disabled only
            :meth:`finish` and explicit :meth:`emit` calls produce
            events.
        stall_seconds: inactivity threshold for stall detection.
        keep_per_root: retain one :class:`SearchStats` per committed
            root (in commit order) on :attr:`per_root` — the input the
            Figure-6 CDF (:func:`repro.core.stats.label_cdf`) needs.
        sink: optional callback invoked with each emitted snapshot
            dict (the live ``parapll index --progress`` renderer).
        clock: monotonic clock override (tests inject a fake).

    Thread safety: :meth:`root_done` takes a small internal lock, so
    one monitor can be shared by all worker threads of a build.
    """

    def __init__(
        self,
        total_roots: Optional[int] = None,
        sample_every: Optional[int] = None,
        interval_seconds: Optional[float] = 0.5,
        stall_seconds: float = DEFAULT_STALL_SECONDS,
        keep_per_root: bool = True,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total_roots is not None and total_roots < 0:
            raise ValueError("total_roots must be non-negative")
        if sample_every is not None and sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if interval_seconds is not None and interval_seconds < 0:
            raise ValueError("interval_seconds must be non-negative")
        if stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        self.total_roots = total_roots
        self.sample_every = sample_every
        self.interval_seconds = interval_seconds
        self.stall_seconds = stall_seconds
        self.keep_per_root = keep_per_root
        self.sink = sink
        self._clock = clock
        self._lock = threading.Lock()

        self._started = self._clock()
        self._finished: Optional[float] = None
        self.roots_done = 0
        self.labels_total = 0
        self.settled_total = 0
        self.pruned_total = 0
        #: One SearchStats per committed root, in commit order.
        self.per_root: List[SearchStats] = []
        #: worker id -> (roots committed, last-commit monotonic time).
        self._workers: Dict[int, List[float]] = {}
        self._stalled: set = set()
        self._last_emit = self._started
        self._last_emit_roots = 0
        self._seq = 0
        #: Emitted events, oldest first (``build_progress`` snapshots
        #: plus any :meth:`note` annotations).
        self.events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Reporting (builders call these)
    # ------------------------------------------------------------------
    def root_done(
        self,
        worker: int,
        root: int,
        stats: Optional[SearchStats] = None,
        labels: int = 0,
    ) -> None:
        """Record one committed root search.

        Args:
            worker: worker/rank id that committed the root.
            root: the root vertex.
            stats: the search's counters; when given, ``labels`` is
                taken from ``stats.labels_added``.
            labels: label entries committed (used when *stats* is
                ``None``).
        """
        now = self._clock()
        with self._lock:
            self.roots_done += 1
            if stats is not None:
                self.labels_total += stats.labels_added
                self.settled_total += stats.settled
                self.pruned_total += stats.pruned
                if self.keep_per_root:
                    self.per_root.append(stats)
            else:
                self.labels_total += labels
            entry = self._workers.setdefault(worker, [0, now])
            entry[0] += 1
            entry[1] = now
            self._stalled.discard(worker)
            due = False
            if self.sample_every is not None:
                due = self.roots_done - self._last_emit_roots >= self.sample_every
            if not due and self.interval_seconds is not None:
                due = now - self._last_emit >= self.interval_seconds
            if not due and (
                self.total_roots is not None
                and self.roots_done >= self.total_roots
            ):
                due = True
            if due:
                self._emit_locked(now)

    def note(self, kind: str, **attrs: Any) -> None:
        """Record an auxiliary build event (sync round, failure, ...).

        The event lands in the monitor's JSONL export alongside the
        ``build_progress`` snapshots; *attrs* must be JSON-safe.
        """
        now = self._clock()
        with self._lock:
            self._seq += 1
            self.events.append(
                {
                    "seq": self._seq,
                    "ts": time.time(),
                    "mono": now,
                    "kind": kind,
                    "attrs": dict(attrs),
                }
            )

    def finish(self) -> Dict[str, Any]:
        """Emit a final snapshot and freeze the rates; returns it."""
        now = self._clock()
        with self._lock:
            if self._finished is None:
                self._finished = now
            return self._emit_locked(now, final=True)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The current progress state as a JSON-safe dict (no emit)."""
        with self._lock:
            return self._snapshot_locked(self._clock())

    def _snapshot_locked(self, now: float, final: bool = False) -> Dict[str, Any]:
        end = self._finished if self._finished is not None else now
        elapsed = max(end - self._started, 0.0)
        roots_per_second = self.roots_done / elapsed if elapsed > 0 else 0.0
        labels_per_second = self.labels_total / elapsed if elapsed > 0 else 0.0
        remaining = (
            max(self.total_roots - self.roots_done, 0)
            if self.total_roots is not None
            else None
        )
        eta = (
            remaining / roots_per_second
            if remaining is not None and roots_per_second > 0
            else None
        )
        settled = self.settled_total
        stalled = sorted(self._stalled_locked(now)) if not final else []
        return {
            "kind": "build_progress",
            "roots_done": self.roots_done,
            "total_roots": self.total_roots,
            "fraction_done": (
                self.roots_done / self.total_roots
                if self.total_roots
                else None
            ),
            "labels_total": self.labels_total,
            "settled_total": settled,
            "pruned_total": self.pruned_total,
            # Of everything settled, the share discarded by the prune
            # test vs. turned into label entries (the live pruning-
            # effectiveness ratio; both 0.0 before any stats arrive).
            "prune_ratio": self.pruned_total / settled if settled else 0.0,
            "label_ratio": (
                (settled - self.pruned_total) / settled if settled else 0.0
            ),
            "elapsed_seconds": elapsed,
            "roots_per_second": roots_per_second,
            "labels_per_second": labels_per_second,
            "eta_seconds": eta,
            "workers": {
                str(w): {"roots": int(c), "idle_seconds": max(now - last, 0.0)}
                for w, (c, last) in sorted(self._workers.items())
            },
            "stalled_workers": stalled,
            "final": bool(final or self._finished is not None),
        }

    def _stalled_locked(self, now: float) -> List[int]:
        """Workers inactive for >= stall_seconds while others commit."""
        if len(self._workers) < 2:
            return []
        stalled = [
            w
            for w, (_c, last) in self._workers.items()
            if now - last >= self.stall_seconds
        ]
        # Everyone idle means the build is (probably) over, not stuck.
        if len(stalled) == len(self._workers):
            return []
        return stalled

    def _emit_locked(self, now: float, final: bool = False) -> Dict[str, Any]:
        snap = self._snapshot_locked(now, final=final)
        self._seq += 1
        event = {
            "seq": self._seq,
            "ts": time.time(),
            "mono": now,
            "kind": "build_progress",
            "attrs": {k: v for k, v in snap.items() if k != "kind"},
        }
        self.events.append(event)
        self._last_emit = now
        self._last_emit_roots = self.roots_done
        newly_stalled = set(snap["stalled_workers"]) - self._stalled
        self._stalled = set(snap["stalled_workers"])
        # Feed the flight recorder (always-on ring) and the metrics
        # registry so failure dumps and scrapes see build progress.
        _flightrec.record(
            "build_progress",
            roots_done=snap["roots_done"],
            total_roots=snap["total_roots"],
            labels_total=snap["labels_total"],
            labels_per_second=round(snap["labels_per_second"], 3),
            prune_ratio=round(snap["prune_ratio"], 4),
            eta_seconds=(
                round(snap["eta_seconds"], 3)
                if snap["eta_seconds"] is not None
                else None
            ),
            stalled_workers=snap["stalled_workers"],
        )
        for worker in sorted(newly_stalled):
            _flightrec.record(
                "worker_stall",
                worker=worker,
                idle_seconds=snap["workers"][str(worker)]["idle_seconds"],
            )
        if _config.METRICS:
            from repro.obs.instruments import record_build_progress

            record_build_progress(
                snap["roots_done"],
                snap["labels_total"],
                snap["eta_seconds"],
            )
        if self.sink is not None:
            self.sink(snap)
        return snap

    # ------------------------------------------------------------------
    # Export / rendering
    # ------------------------------------------------------------------
    def write_jsonl(
        self, path_or_file: Union[str, os.PathLike, IO[str]]
    ) -> int:
        """Write header + events as ``parapll-buildmon/1`` JSONL.

        Returns:
            The number of events written (header excluded).
        """
        with self._lock:
            events = list(self.events)
        header = {
            "kind": "header",
            "schema": BUILDMON_SCHEMA,
            "pid": os.getpid(),
            "total_roots": self.total_roots,
            "events": len(events),
            "dumped_at": time.time(),
        }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(event) for event in events)
        text = "\n".join(lines) + "\n"
        if hasattr(path_or_file, "write"):
            path_or_file.write(text)  # type: ignore[union-attr]
        else:
            with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                fh.write(text)
        return len(events)

    def render(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """One ``parapll top``-style text frame of the build."""
        snap = snapshot if snapshot is not None else self.snapshot()
        total = snap["total_roots"]
        frac = snap["fraction_done"]
        progress = (
            f"{snap['roots_done']}/{total} roots ({frac:.1%})"
            if total
            else f"{snap['roots_done']} roots"
        )
        eta = snap["eta_seconds"]
        lines = [
            "parapll build",
            "=============",
            f"progress   {progress}",
            f"labels     {snap['labels_total']} entries "
            f"({snap['labels_per_second']:.0f}/s)",
            f"pruning    {snap['prune_ratio']:.1%} pruned / "
            f"{snap['label_ratio']:.1%} labeled of "
            f"{snap['settled_total']} settled",
            f"elapsed    {snap['elapsed_seconds']:.1f} s"
            + (f"    eta {eta:.1f} s" if eta is not None else ""),
        ]
        workers = snap.get("workers") or {}
        if workers:
            parts = []
            for w, info in workers.items():
                mark = "!" if int(w) in set(snap["stalled_workers"]) else ""
                parts.append(f"w{w}{mark}:{info['roots']}")
            lines.append("workers    " + "  ".join(parts))
        if snap["stalled_workers"]:
            lines.append(
                "STALLED    worker(s) "
                + ", ".join(str(w) for w in snap["stalled_workers"])
                + f" idle >= {self.stall_seconds:.0f}s"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level installation (what the builders see)
# ----------------------------------------------------------------------
_active: Optional[BuildMonitor] = None

#: The most recently *finished* monitor (set by :func:`monitored` on
#: exit).  Late observers — the telemetry relay's periodic flush, which
#: can miss a sub-interval build entirely — read this to ship the final
#: progress snapshot after the monitored scope has already closed.
_last_finished: Optional[BuildMonitor] = None


def active() -> Optional[BuildMonitor]:
    """The currently installed monitor, or ``None``."""
    return _active


def last_finished() -> Optional[BuildMonitor]:
    """The most recently finished :func:`monitored` monitor, if any."""
    return _last_finished


def install(monitor: BuildMonitor) -> BuildMonitor:
    """Install *monitor* as the process-wide build monitor."""
    global _active
    _active = monitor
    return monitor


def uninstall() -> None:
    """Remove the installed monitor (no-op when none is installed)."""
    global _active
    _active = None


@contextmanager
def monitored(monitor: BuildMonitor) -> Iterator[BuildMonitor]:
    """Install *monitor* for the duration of the block, then finish it.

    The previously installed monitor (if any) is restored on exit, so
    nested scopes compose.
    """
    global _active, _last_finished
    previous = _active
    _active = monitor
    try:
        yield monitor
    finally:
        _active = previous
        monitor.finish()
        _last_finished = monitor


def report_root(
    worker: int,
    root: int,
    stats: Optional[SearchStats] = None,
    labels: int = 0,
) -> None:
    """Report one committed root to the installed monitor (if any).

    This is the builders' hook; it costs one global load when no
    monitor is installed.
    """
    monitor = _active
    if monitor is not None:
        monitor.root_done(worker, root, stats=stats, labels=labels)


def report_note(kind: str, **attrs: Any) -> None:
    """Report an auxiliary build event to the installed monitor."""
    monitor = _active
    if monitor is not None:
        monitor.note(kind, **attrs)
