"""Phase timers and a sampling profiler for hot loops.

:class:`PhaseTimer` accumulates wall time per named build phase
(ordering, search, finalize, ...) and mirrors each phase into the
``parapll_build_phase_seconds`` gauge so phase timings show up in
metric snapshots alongside the counters.

:class:`SamplingProfiler` is the opt-in "where is the time going"
hook: a daemon thread periodically samples every live thread's top
stack frame via ``sys._current_frames()`` (stdlib, no dependency) and
tallies ``(function, file, line)`` hit counts.  Sampling costs nothing
on the hot path itself — the profiled code runs unmodified.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs import config as _config
from repro.obs.metrics import Gauge, MetricsRegistry, get_registry

__all__ = ["PhaseTimer", "SamplingProfiler"]


class PhaseTimer:
    """Accumulates elapsed seconds per named phase.

    Args:
        registry: registry to mirror phases into (default: the global
            one); pass ``None``-like ``mirror=False`` semantics by
            disabling metrics globally.
        metric: gauge name used for mirroring.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        metric: str = "parapll_build_phase_seconds",
    ) -> None:
        self._acc: Dict[str, float] = {}
        self._registry = registry or get_registry()
        self._gauge: Gauge = self._registry.gauge(
            metric, "Accumulated seconds per build phase", labels=("phase",)
        )

    @contextmanager
    def phase(self, name: str):
        """Time one phase (re-entering the same name accumulates)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self._acc[name] = self._acc.get(name, 0.0) + elapsed
            if _config.METRICS:
                self._gauge.labels(phase=name).set(self._acc[name])

    def report(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds, in first-entry order."""
        return dict(self._acc)

    @property
    def total(self) -> float:
        """Sum of all phase times."""
        return sum(self._acc.values())

    def summary(self) -> str:
        """One line: ``order 0.012s | search 1.204s | finalize 0.003s``."""
        return " | ".join(
            f"{name} {secs:.3f}s" for name, secs in self._acc.items()
        )


class SamplingProfiler:
    """A low-overhead statistical profiler over all live threads.

    Args:
        interval: seconds between samples (default 5 ms).
        max_samples: stop sampling after this many ticks (bounds memory
            and guards against a forgotten ``stop()``).

    Use as a context manager::

        with SamplingProfiler(interval=0.002) as prof:
            build_serial(graph)
        for (func, file, line), hits in prof.top(5):
            ...
    """

    def __init__(
        self, interval: float = 0.005, max_samples: int = 200_000
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_samples = max_samples
        self._tally: _TallyCounter = _TallyCounter()
        self._samples = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.is_set() and self._samples < self.max_samples:
            for ident, frame in sys._current_frames().items():
                if ident == own:
                    continue
                code = frame.f_code
                self._tally[
                    (code.co_name, code.co_filename, frame.f_lineno)
                ] += 1
            self._samples += 1
            self._stop.wait(self.interval)

    def start(self) -> "SamplingProfiler":
        """Begin sampling on a daemon thread; returns self."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Number of sampling ticks taken."""
        return self._samples

    def top(self, n: int = 10) -> List[Tuple[Tuple[str, str, int], int]]:
        """The *n* most-sampled ``(function, file, line)`` sites."""
        return self._tally.most_common(n)

    def summary(self, n: int = 10) -> str:
        """Human-readable top-N report."""
        lines = [f"{self._samples} samples @ {self.interval * 1e3:.1f}ms"]
        for (func, filename, lineno), hits in self.top(n):
            share = hits / max(1, sum(self._tally.values()))
            lines.append(
                f"  {share:5.1%} {func} ({filename.rsplit('/', 1)[-1]}"
                f":{lineno})"
            )
        return "\n".join(lines)
