"""The telemetry bus: a process-local, non-blocking event queue.

Every observability layer so far (metrics, traces, flightrec, buildmon,
qlog) lives in module-level in-process state that goes dark across a
``fork``/``spawn`` boundary — exactly the boundary ParaPLL's
rank×thread story is about.  The bus is the first half of the fix: a
bounded, lock-light queue that producers append *frames* to without
ever blocking, and that an exporter (:mod:`repro.obs.relay`) drains and
ships to a collector in another process.

Design rules, in priority order:

* **Never block or slow the instrumented path.**  ``publish`` is one
  lock acquisition around a deque append; when the queue is full the
  frame is *dropped and counted*, never waited on.  With no bus
  installed the module-level :func:`publish_event` hook costs one
  global load and an ``is None`` test — the same discipline as
  :mod:`repro.obs.buildmon` and :mod:`repro.obs.qlog`.
* **Drops are explicit.**  Per-kind drop counters ride along in every
  shipped frame batch, so the collector (and ``parapll obs``) can
  always distinguish "quiet" from "overloaded".
* **Clock discipline.**  Every frame carries both ``ts`` (wall, for
  event timestamps in merged output) and ``mono`` (monotonic, for every
  *interval* computation: queue lag, flush age).  Lag is never derived
  from wall clocks — a stepped clock must not fake a telemetry stall.

Wire schema (``parapll-telemetry/1``): a stream of JSON objects.  The
first is a header identifying the source process::

    {"kind": "header", "schema": "parapll-telemetry/1",
     "pid": 4242, "rank": 1, "capacity": 4096}

Every following object is one frame::

    {"kind": "metrics" | "spans" | "flightrec" | "buildmon" | "events",
     "seq": 17, "ts": 1754650000.1, "mono": 12.482,
     "dropped": {"events": 0},            # cumulative per-kind drops
     "payload": ...}

* ``metrics`` — a batch of per-series *deltas* since the previous
  metrics frame (see :class:`MetricsDelta`); counters and histograms
  ship increments so the collector can merge by summing, gauges ship
  current values for last-write-wins.
* ``spans`` — a batch of :class:`~repro.obs.trace.TraceRecord` dicts.
* ``flightrec`` — a batch of flight-recorder events.
* ``buildmon`` — one build-monitor progress snapshot.
* ``events`` — explicit producer events published by the instrumented
  build/serve paths via :func:`publish_event`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    histogram_bucket_counts,
)

__all__ = [
    "TELEMETRY_SCHEMA",
    "FRAME_KINDS",
    "DEFAULT_CAPACITY",
    "TelemetryBus",
    "MetricsDelta",
    "active",
    "install",
    "uninstall",
    "publish_event",
]

TELEMETRY_SCHEMA = "parapll-telemetry/1"

#: The frame kinds the wire schema carries.
FRAME_KINDS = ("metrics", "spans", "flightrec", "buildmon", "events")

DEFAULT_CAPACITY = 4096


class TelemetryBus:
    """A bounded, non-blocking frame queue with explicit drop counters.

    Args:
        capacity: maximum queued frames; further publishes are dropped
            (and counted per kind) until the exporter drains.

    Thread safety: ``publish`` and ``drain`` share one small lock held
    only for the queue operation itself, so any number of producer
    threads can publish while one exporter drains.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._queue: deque = deque()
        self._seq = itertools.count(1)
        self.published = 0
        #: Cumulative drops per frame kind (never reset).
        self.dropped: Dict[str, int] = {}
        #: High watermark of queue lag seen at drain time, seconds
        #: (monotonic age of the oldest queued frame).
        self.max_lag_seconds = 0.0

    # ------------------------------------------------------------------
    def publish(self, kind: str, payload: Any) -> bool:
        """Queue one frame; returns ``False`` (and counts) when full.

        Never blocks: a slow or absent exporter costs dropped frames,
        not producer latency.
        """
        frame = {
            "kind": kind,
            "seq": next(self._seq),
            "ts": time.time(),
            "mono": time.monotonic(),
            "payload": payload,
        }
        with self._lock:
            if len(self._queue) >= self.capacity:
                self.dropped[kind] = self.dropped.get(kind, 0) + 1
                return False
            self._queue.append(frame)
            self.published += 1
        return True

    def drain(self, max_frames: Optional[int] = None) -> List[Dict[str, Any]]:
        """Remove and return queued frames, oldest first.

        Updates :attr:`max_lag_seconds` with the age of the oldest
        frame being drained (monotonic — wall-clock steps cannot fake
        a stall).
        """
        now = time.monotonic()
        out: List[Dict[str, Any]] = []
        with self._lock:
            while self._queue and (
                max_frames is None or len(out) < max_frames
            ):
                out.append(self._queue.popleft())
        if out:
            lag = max(0.0, now - out[0]["mono"])
            if lag > self.max_lag_seconds:
                self.max_lag_seconds = lag
        return out

    def depth(self) -> int:
        """Frames currently queued."""
        with self._lock:
            return len(self._queue)

    def total_dropped(self) -> int:
        """Total frames dropped across all kinds."""
        with self._lock:
            return sum(self.dropped.values())

    def header(self, rank: Optional[int] = None) -> Dict[str, Any]:
        """The ``parapll-telemetry/1`` stream header for this process."""
        return {
            "kind": "header",
            "schema": TELEMETRY_SCHEMA,
            "pid": os.getpid(),
            "rank": rank,
            "capacity": self.capacity,
        }


class MetricsDelta:
    """Per-series registry deltas between successive collections.

    The relay ships metric *deltas*, not cumulative snapshots, so the
    collector's merge is a plain sum for counters and histograms — two
    children and the parent can all bump the same counter and the
    merged total is exact, with no per-source bookkeeping in the parent
    registry.  Gauges are the exception: they ship current values and
    merge last-write-wins (tagged by source at the collector).

    A registry ``reset()`` between collections makes a cumulative value
    go backwards; that is detected per series and the post-reset value
    is shipped as the delta (the pre-reset increments were already
    shipped).

    The first collection ships each series' full cumulative value: a
    client attaching mid-process relays the story so far, so after any
    sequence of collections the shipped deltas sum to the source
    registry's cumulative total — the invariant the collector's merge
    relies on.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._registry = registry if registry is not None else get_registry()
        self._last: Dict[Tuple[str, Tuple[str, ...]], Any] = {}

    def collect(self) -> List[Dict[str, Any]]:
        """Deltas since the previous call (empty series are skipped)."""
        out: List[Dict[str, Any]] = []
        for metric in self._registry.collect():
            for key, series in metric.series_items():
                value = series.value()  # type: ignore[attr-defined]
                k = (metric.name, key)
                entry = {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                    "labels": dict(zip(metric.label_names, key)),
                }
                if metric.kind == "histogram":
                    counts = histogram_bucket_counts(value)
                    last = self._last.get(k)
                    if last is not None and all(
                        c >= l for c, l in zip(counts, last["counts"])
                    ):
                        dcounts = [
                            c - l for c, l in zip(counts, last["counts"])
                        ]
                        dsum = value["sum"] - last["sum"]
                        dcount = value["count"] - last["count"]
                    else:  # first sight or reset
                        dcounts = counts
                        dsum = value["sum"]
                        dcount = value["count"]
                    self._last[k] = {
                        "counts": counts,
                        "sum": value["sum"],
                        "count": value["count"],
                    }
                    if dcount == 0:
                        continue
                    entry["delta"] = {
                        "bounds": [
                            b for b, _c in value["buckets"] if b != "+Inf"
                        ],
                        "counts": dcounts,
                        "sum": dsum,
                        "count": dcount,
                    }
                elif metric.kind == "counter":
                    last = self._last.get(k, 0.0)
                    delta = value - last if value >= last else value
                    self._last[k] = value
                    if delta == 0:
                        continue
                    entry["delta"] = delta
                else:  # gauge: ship the current value when it changed
                    last = self._last.get(k)
                    self._last[k] = value
                    if last is not None and value == last:
                        continue
                    entry["value"] = value
                out.append(entry)
        return out


# ----------------------------------------------------------------------
# Module-level installation (what the producers see)
# ----------------------------------------------------------------------
_active: Optional[TelemetryBus] = None


def active() -> Optional[TelemetryBus]:
    """The currently installed bus, or ``None``."""
    return _active


def install(bus: TelemetryBus) -> TelemetryBus:
    """Install *bus* as the process-wide telemetry bus."""
    global _active
    _active = bus
    return bus


def uninstall() -> None:
    """Remove the installed bus (no-op when none is installed)."""
    global _active
    _active = None


def publish_event(name: str, **attrs: Any) -> None:
    """Publish one producer event to the installed bus (if any).

    This is the instrumented paths' hook; it costs one global load and
    an ``is None`` test when no bus is installed, gated by the
    ``telemetry_overhead`` perf workload when one is.
    """
    bus = _active
    if bus is not None:
        bus.publish(
            "events",
            {
                "name": name,
                "thread": threading.current_thread().name,
                "attrs": attrs,
            },
        )
