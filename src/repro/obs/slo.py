"""Sliding-window latency SLOs: windowed quantiles, budgets, burn rates.

The process-lifetime histograms behind ``parapll obs`` answer "how has
this server behaved since startup"; an operator asks a different
question — *is it healthy right now*.  This module keeps the last few
minutes of request latencies in per-second rings, aggregates them over
multiple resolutions (10 s / 1 m / 5 m by default), and evaluates
declarative :class:`SLOTarget` objectives against them:

* a **latency** target — "at least ``objective`` of requests complete
  within ``threshold_seconds``" (the windowed form of a p99 bound);
* an **availability** target — "at least ``objective`` of requests
  succeed".

Each target's **error budget** is ``1 - objective``; its **burn rate**
is the bad-request fraction observed in its window divided by that
budget.  Burn rate 1.0 means the window is consuming budget exactly as
fast as the objective allows; sustained >1.0 means the SLO is being
violated.  Crossing 1.0 emits an ``slo_breach`` flight-recorder event
(``slo_recovered`` on the way back) and the live values are exported as
``parapll_slo_*`` gauges, so a scrape or a failure dump shows SLO state
without any polling loop.

:meth:`SLOTracker.should_shed` is the load-shedding hook: it reports
whether the worst burn rate exceeds a configurable multiple, recomputed
at most once per second so the server's hot path pays one attribute
read.  :class:`~repro.service.server.DistanceServer` uses it to
fast-fail point/batch requests while introspection ops keep flowing —
the generalization of the batch deadline abort to whole-server
overload.

The default tracker (:func:`get_tracker`) is process-wide, like the
metrics registry: servers record into it unless given their own, and
``repro.obs.reset()`` clears it.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import config as _config
from repro.obs import flightrec as _flightrec
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_QUANTILES,
    histogram_quantile,
)

__all__ = [
    "SLO_SCHEMA",
    "DEFAULT_WINDOWS",
    "DEFAULT_TARGETS",
    "SLOTarget",
    "SlidingWindowHistogram",
    "SLOTracker",
    "get_tracker",
    "set_tracker",
]

SLO_SCHEMA = "parapll-slo/1"

#: Aggregation resolutions, seconds (10 s / 1 m / 5 m).
DEFAULT_WINDOWS: Tuple[int, ...] = (10, 60, 300)


@dataclass(frozen=True)
class SLOTarget:
    """One declarative service-level objective.

    Attributes:
        name: stable identifier (gauge label, report key).
        kind: ``"latency"`` or ``"availability"``.
        objective: required good-request fraction in ``(0, 1)``.
        threshold_seconds: latency bound a request must meet to count
            as good (latency targets only).
        window_seconds: evaluation window.
    """

    name: str
    kind: str = "latency"
    objective: float = 0.99
    threshold_seconds: Optional[float] = None
    window_seconds: int = 60

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "availability"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == "latency" and (
            self.threshold_seconds is None or self.threshold_seconds <= 0
        ):
            raise ValueError("latency targets need threshold_seconds > 0")
        if self.window_seconds < 1:
            raise ValueError("window_seconds must be >= 1")

    @property
    def budget(self) -> float:
        """The error budget: the tolerated bad-request fraction."""
        return 1.0 - self.objective


#: The stock serving objectives: 99% of requests under 50 ms and
#: 99.9% of requests succeeding, both over the last minute.
DEFAULT_TARGETS: Tuple[SLOTarget, ...] = (
    SLOTarget(
        name="latency_p99_50ms",
        kind="latency",
        objective=0.99,
        threshold_seconds=0.05,
        window_seconds=60,
    ),
    SLOTarget(
        name="availability",
        kind="availability",
        objective=0.999,
        window_seconds=60,
    ),
)


class _Slot:
    """One second of observations: bucket counts + exact over-counts."""

    __slots__ = ("second", "counts", "over", "sum", "count", "errors")

    def __init__(self, second: int, buckets: int, thresholds: int) -> None:
        self.second = second
        self.counts = [0] * (buckets + 1)
        #: observations strictly over each latency threshold.
        self.over = [0] * thresholds
        self.sum = 0.0
        self.count = 0
        self.errors = 0


class SlidingWindowHistogram:
    """Per-second latency rings aggregated over arbitrary windows.

    Args:
        bounds: inclusive histogram bucket upper edges (seconds).
        thresholds: latency thresholds tracked *exactly* (per-slot
            over-counts), so SLO targets are not quantized to bucket
            edges.
        horizon_seconds: how far back slots are retained; windows wider
            than this cannot be aggregated.
        clock: monotonic clock override (tests inject a fake).

    One small lock guards each observe/aggregate; observations are a
    bisect plus a handful of increments.
    """

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        thresholds: Sequence[float] = (),
        horizon_seconds: int = 360,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if horizon_seconds < 1:
            raise ValueError("horizon_seconds must be >= 1")
        self._bounds = tuple(float(b) for b in bounds)
        self.thresholds = tuple(float(t) for t in thresholds)
        self.horizon_seconds = int(horizon_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: List[Optional[_Slot]] = [None] * self.horizon_seconds
        self.total_count = 0
        self.total_errors = 0

    def _slot_for(self, second: int) -> _Slot:
        idx = second % self.horizon_seconds
        slot = self._slots[idx]
        if slot is None or slot.second != second:
            slot = _Slot(second, len(self._bounds), len(self.thresholds))
            self._slots[idx] = slot
        return slot

    def observe(self, seconds: float, ok: bool = True) -> None:
        """Record one request latency (``ok=False`` marks a failure)."""
        now_second = int(self._clock())
        bucket = bisect_left(self._bounds, seconds)
        with self._lock:
            slot = self._slot_for(now_second)
            slot.counts[bucket] += 1
            slot.sum += seconds
            slot.count += 1
            if not ok:
                slot.errors += 1
            for i, threshold in enumerate(self.thresholds):
                if seconds > threshold:
                    slot.over[i] += 1
            self.total_count += 1
            if not ok:
                self.total_errors += 1

    def window(self, window_seconds: int) -> Dict[str, Any]:
        """Aggregate the last *window_seconds* into one snapshot.

        Returns:
            ``{"window_seconds", "count", "errors", "sum", "buckets",
            "over"}`` — ``buckets`` in the same cumulative
            ``[[bound, cum], ...]`` shape the registry histograms use
            (so :func:`repro.obs.metrics.histogram_quantile` applies),
            ``over`` mapping each tracked threshold to its exact
            over-threshold count.

        Raises:
            ValueError: for a window wider than the horizon.
        """
        if window_seconds < 1 or window_seconds > self.horizon_seconds:
            raise ValueError(
                f"window must be in [1, {self.horizon_seconds}] seconds"
            )
        now_second = int(self._clock())
        counts = [0] * (len(self._bounds) + 1)
        over = [0] * len(self.thresholds)
        total = 0
        errors = 0
        acc = 0.0
        with self._lock:
            for second in range(now_second - window_seconds + 1, now_second + 1):
                slot = self._slots[second % self.horizon_seconds]
                if slot is None or slot.second != second:
                    continue
                for i, c in enumerate(slot.counts):
                    counts[i] += c
                for i, c in enumerate(slot.over):
                    over[i] += c
                total += slot.count
                errors += slot.errors
                acc += slot.sum
        cumulative: List[List[Any]] = []
        running = 0
        for bound, c in zip(list(self._bounds) + ["+Inf"], counts):
            running += c
            cumulative.append([bound, running])
        return {
            "window_seconds": window_seconds,
            "count": total,
            "errors": errors,
            "sum": acc,
            "buckets": cumulative,
            "over": {
                repr(t): over[i] for i, t in enumerate(self.thresholds)
            },
        }

    def quantile(self, window_seconds: int, q: float) -> float:
        """Windowed *q*-quantile estimate (``nan`` when empty)."""
        return histogram_quantile(self.window(window_seconds), q)

    def reset(self) -> None:
        """Drop every slot and the lifetime counters."""
        with self._lock:
            self._slots = [None] * self.horizon_seconds
            self.total_count = 0
            self.total_errors = 0


class SLOTracker:
    """Evaluates :class:`SLOTarget` objectives over sliding windows.

    Args:
        targets: the objectives to track (default
            :data:`DEFAULT_TARGETS`).
        windows: aggregation resolutions for the windowed quantiles
            reported by :meth:`status` (default 10 s / 1 m / 5 m).
        clock: monotonic clock override (tests inject a fake).
    """

    def __init__(
        self,
        targets: Sequence[SLOTarget] = DEFAULT_TARGETS,
        windows: Sequence[int] = DEFAULT_WINDOWS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not targets:
            raise ValueError("at least one SLO target is required")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ValueError("SLO target names must be unique")
        self.targets = tuple(targets)
        self.windows = tuple(sorted(set(int(w) for w in windows)))
        if not self.windows or self.windows[0] < 1:
            raise ValueError("windows must be positive")
        horizon = max(
            [t.window_seconds for t in self.targets] + list(self.windows)
        ) + 60
        self._clock = clock
        thresholds = sorted(
            {
                t.threshold_seconds
                for t in self.targets
                if t.threshold_seconds is not None
            }
        )
        self.histogram = SlidingWindowHistogram(
            thresholds=thresholds, horizon_seconds=horizon, clock=clock
        )
        self._breached: Dict[str, bool] = {t.name: False for t in self.targets}
        self._eval_lock = threading.Lock()
        self._last_eval = float("-inf")
        self._worst_burn = 0.0

    # ------------------------------------------------------------------
    def record(self, seconds: float, ok: bool = True) -> None:
        """Record one served request (the hot-path entry point)."""
        self.histogram.observe(seconds, ok=ok)

    # ------------------------------------------------------------------
    def _evaluate_target(self, target: SLOTarget) -> Dict[str, Any]:
        snap = self.histogram.window(target.window_seconds)
        count = snap["count"]
        if target.kind == "availability":
            bad = snap["errors"]
        else:
            bad = snap["over"][repr(target.threshold_seconds)] + snap["errors"]
        bad_fraction = bad / count if count else 0.0
        burn_rate = bad_fraction / target.budget
        return {
            "name": target.name,
            "kind": target.kind,
            "objective": target.objective,
            "threshold_seconds": target.threshold_seconds,
            "window_seconds": target.window_seconds,
            "requests": count,
            "bad_requests": bad,
            "bad_fraction": bad_fraction,
            "error_budget": target.budget,
            "burn_rate": burn_rate,
            "budget_remaining": max(0.0, 1.0 - burn_rate),
            "breached": burn_rate > 1.0,
        }

    def evaluate(self) -> List[Dict[str, Any]]:
        """Evaluate every target now; emits breach/recovery events.

        Transitions across burn rate 1.0 are recorded into the flight
        recorder and counted; the live burn rate and remaining budget
        are mirrored onto the ``parapll_slo_*`` gauges.
        """
        results = [self._evaluate_target(t) for t in self.targets]
        worst = 0.0
        for result in results:
            name = result["name"]
            worst = max(worst, result["burn_rate"])
            was = self._breached[name]
            now = result["breached"]
            if now and not was:
                _flightrec.record(
                    "slo_breach",
                    target=name,
                    burn_rate=round(result["burn_rate"], 3),
                    bad_requests=result["bad_requests"],
                    requests=result["requests"],
                )
            elif was and not now:
                _flightrec.record(
                    "slo_recovered",
                    target=name,
                    burn_rate=round(result["burn_rate"], 3),
                )
            self._breached[name] = now
            if _config.METRICS:
                from repro.obs.instruments import record_slo_target

                record_slo_target(
                    name,
                    result["burn_rate"],
                    result["budget_remaining"],
                    breached=(now and not was),
                )
        self._worst_burn = worst
        return results

    def worst_burn_rate(self, max_age_seconds: float = 1.0) -> float:
        """The highest burn rate across targets, recomputed lazily.

        A full evaluation walks every window, so callers on the request
        path get a value cached for up to *max_age_seconds* — overload
        decisions do not need sub-second freshness.
        """
        now = self._clock()
        with self._eval_lock:
            if now - self._last_eval >= max_age_seconds:
                self._last_eval = now
                self.evaluate()
            return self._worst_burn

    def should_shed(
        self, burn_rate_threshold: float, max_age_seconds: float = 1.0
    ) -> bool:
        """Whether load shedding should engage right now."""
        return self.worst_burn_rate(max_age_seconds) > burn_rate_threshold

    # ------------------------------------------------------------------
    def windowed_quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, Dict[str, float]]:
        """Latency quantiles per resolution window.

        Returns:
            ``{"10s": {"p50": ..., "p95": ..., "p99": ...}, ...}``;
            windows with no samples are omitted.
        """
        out: Dict[str, Dict[str, float]] = {}
        for window in self.windows:
            snap = self.histogram.window(window)
            if not snap["count"]:
                continue
            out[_window_label(window)] = {
                f"p{int(q * 100)}": histogram_quantile(snap, q) for q in qs
            }
        return out

    def status(self) -> Dict[str, Any]:
        """The full ``parapll-slo/1`` health document."""
        targets = self.evaluate()
        return {
            "schema": SLO_SCHEMA,
            "targets": targets,
            "breached": [t["name"] for t in targets if t["breached"]],
            "worst_burn_rate": self._worst_burn,
            "windows": list(self.windows),
            "windowed_latency_quantiles": self.windowed_quantiles(),
            "requests_total": self.histogram.total_count,
            "errors_total": self.histogram.total_errors,
        }

    def reset(self) -> None:
        """Drop all windows and breach state (targets survive)."""
        self.histogram.reset()
        self._breached = {t.name: False for t in self.targets}
        with self._eval_lock:
            self._last_eval = float("-inf")
            self._worst_burn = 0.0


def _window_label(window_seconds: int) -> str:
    if window_seconds % 60 == 0:
        return f"{window_seconds // 60}m"
    return f"{window_seconds}s"


_default_tracker = SLOTracker()


def get_tracker() -> SLOTracker:
    """The process-wide default tracker (servers record into it)."""
    return _default_tracker


def set_tracker(tracker: SLOTracker) -> SLOTracker:
    """Replace the process-wide default tracker; returns it."""
    global _default_tracker
    _default_tracker = tracker
    return _default_tracker
