"""The index-health auditor: one versioned report per built index.

Where :mod:`repro.obs.buildmon` watches a build in flight, the auditor
examines the *finished* artifact — the flat CSR label triple — and
answers the questions the paper's evaluation asks of every index:

* **Label-size distribution** — per-vertex entry counts (mean = the
  paper's "LN" column, p50/p95/p99/max), straight off ``indptr``.
* **Hub coverage concentration** — the Figure-6 skew measured on the
  finished index: the fraction of all entries contributed by the
  top-ranked hubs, and ``roots_to_reach`` for several coverage
  fractions (the "~90 % from ~100 roots" statistic), via
  :func:`repro.core.stats.hub_coverage_cdf`.
* **Dominated (redundant) entries** — labels covered by an
  earlier-ranked common hub.  A serial build is canonical and must
  report zero; parallel and cluster builds legitimately carry some
  (Table 5), and the count quantifies exactly how many.  The scan
  reuses the *same* domination predicate as the invariant verifier
  (:mod:`repro.check.invariants`), so ``parapll audit`` and ``parapll
  check index`` can never disagree.
* **Memory attribution** — per-array bytes of the CSR triple and the
  resident-set estimate for memory-mapped ``dir`` bundles, via
  :meth:`LabelStore.memory_breakdown`.

Reports are plain JSON dicts under the versioned schema
``parapll-audit/1`` (:func:`validate_report` rejects anything else),
so they can be stored next to an index bundle and diffed later:
:func:`diff_reports` compares two audits — serial vs. parallel build,
pre/post dynamic repair, two rank orders — and flags regressions
(new dominated entries, label growth) explicitly.

Surfaces: ``parapll audit run | diff`` (CLI), the ``audit`` server op,
and the ``audit_overhead`` perf workload.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.stats import hub_contribution, hub_coverage_cdf, roots_to_reach
from repro.errors import CheckError

__all__ = [
    "AUDIT_SCHEMA",
    "audit_index",
    "validate_report",
    "load_report",
    "diff_reports",
    "render_report",
    "render_diff",
]

AUDIT_SCHEMA = "parapll-audit/1"

#: Coverage fractions reported by default (0.9 is the paper's figure).
DEFAULT_COVERAGE_FRACTIONS = (0.5, 0.9, 0.99)

#: Cap on dominated-entry examples carried in the report.
_MAX_EXAMPLES = 20


def audit_index(
    index,
    coverage_fractions: Sequence[float] = DEFAULT_COVERAGE_FRACTIONS,
    check_dominated: bool = True,
    atol: float = 1e-9,
    source: Optional[str] = None,
) -> Dict[str, Any]:
    """Audit a built :class:`~repro.core.index.PLLIndex`.

    Args:
        index: the index to audit (fresh or loaded; mmap-backed works).
        coverage_fractions: hub-coverage fractions to report
            ``roots_to_reach`` for.
        check_dominated: run the O(entries × avg-label) domination
            scan; disable for very large indexes when only sizes and
            coverage are needed (the report marks the section
            ``checked: false``).
        atol: float tolerance of the domination predicate (must match
            the invariant verifier's to keep the two in agreement).
        source: optional provenance string stored in the report (e.g.
            the index path).

    Returns:
        A JSON-safe ``parapll-audit/1`` report dict.
    """
    store = index.store
    indptr, hubs, dists = store.finalized_arrays()
    n = store.n
    sizes = np.diff(indptr)
    total = int(len(hubs))

    # -- label-size distribution --------------------------------------
    if n:
        label_sizes = {
            "mean": float(sizes.mean()),
            "min": int(sizes.min()),
            "p50": float(np.percentile(sizes, 50)),
            "p95": float(np.percentile(sizes, 95)),
            "p99": float(np.percentile(sizes, 99)),
            "max": int(sizes.max()),
        }
    else:
        label_sizes = {
            "mean": 0.0, "min": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "max": 0,
        }

    # -- hub coverage concentration (Figure 6 on the finished index) --
    contrib = hub_contribution(store)
    cdf = hub_coverage_cdf(store)
    top10 = min(10, n)
    coverage = {
        "roots_to_reach": {
            f"{f:g}": int(roots_to_reach(cdf, f)) if total else 0
            for f in coverage_fractions
        },
        "top_hub_entries": int(contrib[0]) if n else 0,
        "top10_fraction": (
            float(contrib[:top10].sum() / total) if total else 0.0
        ),
        "nonzero_hubs": int(np.count_nonzero(contrib)),
    }

    # -- dominated / redundant entries --------------------------------
    dominated: Dict[str, Any] = {"checked": bool(check_dominated)}
    if check_dominated:
        # The verifier's own predicate, imported lazily: repro.check
        # sits a layer above repro.obs, and sharing the exact function
        # is what keeps `parapll audit` and `parapll check index` in
        # agreement by construction.
        from repro.check.invariants import _dominated

        order = np.asarray(index.order, dtype=np.int64)
        rank = index.rank
        count = 0
        examples: List[Dict[str, Any]] = []
        for v in range(n):
            hubs_v = store.finalized_hubs(v)
            dists_v = store.finalized_dists(v)
            rv = int(rank[v])
            for i in range(len(hubs_v)):
                h = int(hubs_v[i])
                if h == rv:
                    continue  # the self label is never dominated
                d = float(dists_v[i])
                if _dominated(store, int(order[h]), v, h, d, atol):
                    count += 1
                    if len(examples) < _MAX_EXAMPLES:
                        examples.append(
                            {"vertex": v, "hub_rank": h, "dist": d}
                        )
        dominated["count"] = count
        dominated["examples"] = examples
    else:
        dominated["count"] = None
        dominated["examples"] = []

    report: Dict[str, Any] = {
        "schema": AUDIT_SCHEMA,
        "generated_at": time.time(),
        "source": source,
        "n": n,
        "total_entries": total,
        "avg_label_size": float(total / n) if n else 0.0,
        "label_sizes": label_sizes,
        "hub_coverage": coverage,
        "dominated": dominated,
        "memory": store.memory_breakdown(),
    }
    return report


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
_TOP_KEYS = {
    "schema": str,
    "generated_at": (int, float),
    "n": int,
    "total_entries": int,
    "avg_label_size": (int, float),
    "label_sizes": dict,
    "hub_coverage": dict,
    "dominated": dict,
    "memory": dict,
}
_LABEL_SIZE_KEYS = ("mean", "min", "p50", "p95", "p99", "max")
_COVERAGE_KEYS = (
    "roots_to_reach", "top_hub_entries", "top10_fraction", "nonzero_hubs",
)
_MEMORY_KEYS = (
    "indptr_bytes", "hubs_bytes", "dists_bytes", "total_bytes",
    "bytes_per_entry", "mmap", "resident_bytes_estimate",
)


def validate_report(report: Any) -> None:
    """Structurally validate a ``parapll-audit/1`` report.

    Raises:
        CheckError: naming the first offending field.
    """
    if not isinstance(report, dict):
        raise CheckError("audit report must be a JSON object")
    if report.get("schema") != AUDIT_SCHEMA:
        raise CheckError(
            f"audit schema is {report.get('schema')!r}, "
            f"expected {AUDIT_SCHEMA!r}"
        )
    for key, typ in _TOP_KEYS.items():
        if key not in report:
            raise CheckError(f"audit report missing key {key!r}")
        if not isinstance(report[key], typ):
            raise CheckError(
                f"audit report key {key!r} has type "
                f"{type(report[key]).__name__}"
            )
    for key in _LABEL_SIZE_KEYS:
        if key not in report["label_sizes"]:
            raise CheckError(f"label_sizes missing {key!r}")
        if not isinstance(report["label_sizes"][key], (int, float)):
            raise CheckError(f"label_sizes[{key!r}] is not numeric")
    for key in _COVERAGE_KEYS:
        if key not in report["hub_coverage"]:
            raise CheckError(f"hub_coverage missing {key!r}")
    rtr = report["hub_coverage"]["roots_to_reach"]
    if not isinstance(rtr, dict) or not all(
        isinstance(v, int) for v in rtr.values()
    ):
        raise CheckError("hub_coverage.roots_to_reach must map to ints")
    dom = report["dominated"]
    if "checked" not in dom or "count" not in dom or "examples" not in dom:
        raise CheckError("dominated section incomplete")
    if dom["checked"] and not isinstance(dom["count"], int):
        raise CheckError("dominated.count must be an int when checked")
    for key in _MEMORY_KEYS:
        if key not in report["memory"]:
            raise CheckError(f"memory missing {key!r}")
    # Internal consistency: sizes must account for every entry.
    if report["n"] and report["total_entries"]:
        if report["label_sizes"]["max"] < 1:
            raise CheckError("non-empty index with max label size < 1")


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a report written by ``parapll audit run``."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_reports(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    """Compare two audit reports (*a* = baseline, *b* = candidate).

    Returns:
        A JSON-safe diff with per-field deltas and a ``regressions``
        list naming what got worse in *b*: new dominated entries,
        label-entry growth, or a heavier coverage tail (more roots
        needed to reach 90 %).  ``comparable`` is False (and deltas are
        still reported) when the two indexes cover different vertex
        counts.

    Raises:
        CheckError: if either input fails schema validation.
    """
    validate_report(a)
    validate_report(b)
    regressions: List[str] = []

    entries_delta = b["total_entries"] - a["total_entries"]
    if entries_delta > 0:
        pct = (
            100.0 * entries_delta / a["total_entries"]
            if a["total_entries"]
            else float("inf")
        )
        regressions.append(
            f"label entries grew by {entries_delta} (+{pct:.1f}%)"
        )

    dom_a = a["dominated"]["count"] if a["dominated"]["checked"] else None
    dom_b = b["dominated"]["count"] if b["dominated"]["checked"] else None
    dominated_delta = (
        dom_b - dom_a if dom_a is not None and dom_b is not None else None
    )
    if dominated_delta is not None and dominated_delta > 0:
        regressions.append(
            f"dominated entries grew by {dominated_delta} "
            f"({dom_a} -> {dom_b})"
        )
    if dom_b:
        regressions.append(f"candidate carries {dom_b} dominated entr(ies)")

    rtr_deltas: Dict[str, Optional[int]] = {}
    for frac, a_val in a["hub_coverage"]["roots_to_reach"].items():
        b_val = b["hub_coverage"]["roots_to_reach"].get(frac)
        rtr_deltas[frac] = (b_val - a_val) if b_val is not None else None
    delta_90 = rtr_deltas.get("0.9")
    if delta_90 is not None and delta_90 > 0:
        regressions.append(
            f"coverage tail heavier: roots_to_reach(0.9) +{delta_90}"
        )

    return {
        "schema": AUDIT_SCHEMA,
        "kind": "diff",
        "comparable": a["n"] == b["n"],
        "n": {"a": a["n"], "b": b["n"]},
        "total_entries": {
            "a": a["total_entries"],
            "b": b["total_entries"],
            "delta": entries_delta,
        },
        "avg_label_size": {
            "a": a["avg_label_size"],
            "b": b["avg_label_size"],
            "delta": b["avg_label_size"] - a["avg_label_size"],
        },
        "max_label_size": {
            "a": a["label_sizes"]["max"],
            "b": b["label_sizes"]["max"],
            "delta": b["label_sizes"]["max"] - a["label_sizes"]["max"],
        },
        "dominated": {"a": dom_a, "b": dom_b, "delta": dominated_delta},
        "roots_to_reach": rtr_deltas,
        "memory_total_bytes": {
            "a": a["memory"]["total_bytes"],
            "b": b["memory"]["total_bytes"],
            "delta": b["memory"]["total_bytes"] - a["memory"]["total_bytes"],
        },
        "regressions": regressions,
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(report: Dict[str, Any]) -> str:
    """Terminal summary of one audit report."""
    ls = report["label_sizes"]
    cov = report["hub_coverage"]
    dom = report["dominated"]
    mem = report["memory"]
    lines = [
        f"index audit ({report['schema']})",
        "=" * 32,
        f"vertices       {report['n']}",
        f"label entries  {report['total_entries']} "
        f"(avg {report['avg_label_size']:.2f}/vertex)",
        f"label sizes    p50={ls['p50']:.0f}  p95={ls['p95']:.0f}  "
        f"p99={ls['p99']:.0f}  max={ls['max']}",
        "hub coverage   "
        + "  ".join(
            f"{frac}->{count} roots"
            for frac, count in cov["roots_to_reach"].items()
        ),
        f"concentration  top hub {cov['top_hub_entries']} entries, "
        f"top-10 hubs {cov['top10_fraction']:.1%} of all",
    ]
    if dom["checked"]:
        verdict = "canonical" if dom["count"] == 0 else "redundant"
        lines.append(
            f"dominated      {dom['count']} entr(ies) [{verdict}]"
        )
    else:
        lines.append("dominated      (scan skipped)")
    lines.append(
        f"memory         {mem['total_bytes']} B total "
        f"(indptr {mem['indptr_bytes']}, hubs {mem['hubs_bytes']}, "
        f"dists {mem['dists_bytes']})"
        + ("  [mmap]" if mem["mmap"] else "")
    )
    if mem["mmap"]:
        lines.append(
            f"resident est.  {mem['resident_bytes_estimate']} B"
        )
    return "\n".join(lines)


def render_diff(diff: Dict[str, Any]) -> str:
    """Terminal summary of an audit diff."""
    lines = ["audit diff (a = baseline, b = candidate)", "=" * 40]
    if not diff["comparable"]:
        lines.append(
            f"NOTE: different vertex counts "
            f"(a={diff['n']['a']}, b={diff['n']['b']})"
        )
    for key in ("total_entries", "avg_label_size", "max_label_size"):
        row = diff[key]
        delta = row["delta"]
        sign = "+" if isinstance(delta, (int, float)) and delta > 0 else ""
        if isinstance(delta, float):
            lines.append(
                f"{key:<16} {row['a']:.2f} -> {row['b']:.2f} "
                f"({sign}{delta:.2f})"
            )
        else:
            lines.append(
                f"{key:<16} {row['a']} -> {row['b']} ({sign}{delta})"
            )
    dom = diff["dominated"]
    if dom["delta"] is not None:
        sign = "+" if dom["delta"] > 0 else ""
        lines.append(
            f"{'dominated':<16} {dom['a']} -> {dom['b']} "
            f"({sign}{dom['delta']})"
        )
    for frac, delta in diff["roots_to_reach"].items():
        if delta is None:
            continue
        sign = "+" if delta > 0 else ""
        lines.append(f"roots_to_reach({frac})  {sign}{delta}")
    if diff["regressions"]:
        lines.append("regressions:")
        for r in diff["regressions"]:
            lines.append(f"  - {r}")
        lines.append("verdict: REGRESSED")
    else:
        lines.append("verdict: OK (no regressions)")
    return "\n".join(lines)
