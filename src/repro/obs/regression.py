"""The regression gate: compare two BENCH documents metric by metric.

:func:`compare` walks every metric of the *baseline* document, finds its
counterpart in the *current* one, and classifies the pair using the
baseline's recorded per-metric tolerance (scaled by ``tolerance_scale``
for noisier environments).  All suite metrics are lower-is-better
(times, operation counts, bytes), so:

* ratio > 1 + tol  →  **regressed**
* ratio < 1 - tol  →  **improved**
* otherwise        →  **unchanged**

with an absolute epsilon per metric kind so microscopic wall-clock
jitter on sub-millisecond workloads never trips the gate.  A metric
present in the baseline but missing from the current run is itself a
failure (**missing** — a silently dropped measurement must not pass
CI); metrics only present in the current run are reported as **new**
and do not fail the gate.

Wall-clock (``kind == "time"``) metrics can be excluded wholesale via
``ignore_kinds`` when comparing across machines — CI compares a
fresh run against the checked-in baseline on counters and simulated
seconds only, both of which are machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.perf import ABS_EPSILON, PerfError

__all__ = [
    "MetricComparison",
    "ComparisonReport",
    "compare",
    "STATUS_ORDER",
]

#: Severity order for report rendering (worst first).
STATUS_ORDER = ("regressed", "missing", "new", "improved", "unchanged")


@dataclass
class MetricComparison:
    """One metric's verdict.

    Attributes:
        workload: workload name.
        metric: metric name.
        kind: metric kind (``time`` / ``sim`` / ``counter``).
        baseline: baseline median (``None`` for *new* metrics).
        current: current median (``None`` for *missing* metrics).
        tolerance: the relative tolerance applied.
        ratio: ``current / baseline`` where both exist and the baseline
            is nonzero.
        status: ``regressed`` / ``missing`` / ``new`` / ``improved`` /
            ``unchanged``.
    """

    workload: str
    metric: str
    kind: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: float
    ratio: Optional[float]
    status: str


@dataclass
class ComparisonReport:
    """Every metric verdict plus the gate decision."""

    comparisons: List[MetricComparison] = field(default_factory=list)
    ignored_kinds: Sequence[str] = ()

    @property
    def regressions(self) -> List[MetricComparison]:
        """Comparisons that fail the gate (regressed or missing)."""
        return [
            c for c in self.comparisons if c.status in ("regressed", "missing")
        ]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing went missing."""
        return not self.regressions

    @property
    def exit_code(self) -> int:
        """Process exit code for the CLI (0 pass, 1 fail)."""
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        """Verdict histogram, in :data:`STATUS_ORDER`."""
        out = {status: 0 for status in STATUS_ORDER}
        for c in self.comparisons:
            out[c.status] += 1
        return out

    def render(self, verbose: bool = False) -> str:
        """Terminal summary; regressions always listed, rest on demand."""
        counts = self.counts()
        headline = ", ".join(
            f"{n} {status}" for status, n in counts.items() if n
        ) or "nothing compared"
        lines = [f"regression gate: {headline}"]
        if self.ignored_kinds:
            lines.append(
                f"  (ignoring kinds: {', '.join(self.ignored_kinds)})"
            )
        for c in sorted(
            self.comparisons,
            key=lambda c: (STATUS_ORDER.index(c.status), c.workload, c.metric),
        ):
            if not verbose and c.status in ("unchanged",):
                continue
            if c.status == "missing":
                detail = "metric missing from current run"
            elif c.status == "new":
                detail = f"new metric, current={c.current:g}"
            else:
                ratio = f"{c.ratio:.3f}x" if c.ratio is not None else "n/a"
                detail = (
                    f"{c.baseline:g} -> {c.current:g} ({ratio}, "
                    f"tol {c.tolerance:.0%})"
                )
            lines.append(
                f"  [{c.status:<9}] {c.workload}.{c.metric} ({c.kind}): "
                f"{detail}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _classify(baseline: float, current: float, kind: str, tol: float):
    eps = ABS_EPSILON.get(kind, 0.0)
    ratio = current / baseline if baseline else None
    if abs(current - baseline) <= eps:
        status = "unchanged"
    elif baseline == 0:
        # Zero baseline: any growth beyond the epsilon is a regression
        # (there is no meaningful ratio to apply a tolerance to).
        status = "regressed" if current > baseline else "improved"
    elif ratio > 1.0 + tol:
        status = "regressed"
    elif ratio < 1.0 - tol:
        status = "improved"
    else:
        status = "unchanged"
    return status, ratio


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance_scale: float = 1.0,
    ignore_kinds: Iterable[str] = (),
) -> ComparisonReport:
    """Compare two BENCH documents into a :class:`ComparisonReport`.

    Args:
        baseline: the reference document (e.g. the checked-in
            ``benchmarks/baseline.json``).
        current: the freshly recorded document.
        tolerance_scale: multiplier on every per-metric tolerance
            (raise above 1.0 on noisy shared hardware).
        ignore_kinds: metric kinds to exclude entirely (pass
            ``("time",)`` when the two documents come from different
            machines).

    Raises:
        PerfError: for documents without a workloads section, a
            non-positive tolerance scale, or mismatched suite configs
            (scale / seed / dataset) — counter and sim metrics are only
            comparable between runs of the identical workload.
    """
    if tolerance_scale <= 0:
        raise PerfError("tolerance_scale must be positive")
    for name, doc in (("baseline", baseline), ("current", current)):
        if not isinstance(doc.get("workloads"), dict):
            raise PerfError(f"{name} document has no workloads section")
    base_cfg = baseline.get("config", {})
    cur_cfg = current.get("config", {})
    for key in ("scale", "seed", "dataset"):
        if key in base_cfg and key in cur_cfg and base_cfg[key] != cur_cfg[key]:
            raise PerfError(
                f"config mismatch: baseline {key}={base_cfg[key]!r} vs "
                f"current {key}={cur_cfg[key]!r}; runs are not comparable"
            )
    ignored = tuple(ignore_kinds)
    report = ComparisonReport(ignored_kinds=ignored)

    base_wl = baseline["workloads"]
    cur_wl = current["workloads"]
    for wl_name in sorted(base_wl):
        base_metrics = base_wl[wl_name].get("metrics", {})
        cur_metrics = cur_wl.get(wl_name, {}).get("metrics", {})
        for m_name in sorted(base_metrics):
            b = base_metrics[m_name]
            kind = b.get("kind", "time")
            if kind in ignored:
                continue
            tol = float(b.get("tol", 0.0)) * tolerance_scale
            c = cur_metrics.get(m_name)
            if c is None:
                report.comparisons.append(
                    MetricComparison(
                        workload=wl_name,
                        metric=m_name,
                        kind=kind,
                        baseline=float(b["median"]),
                        current=None,
                        tolerance=tol,
                        ratio=None,
                        status="missing",
                    )
                )
                continue
            status, ratio = _classify(
                float(b["median"]), float(c["median"]), kind, tol
            )
            report.comparisons.append(
                MetricComparison(
                    workload=wl_name,
                    metric=m_name,
                    kind=kind,
                    baseline=float(b["median"]),
                    current=float(c["median"]),
                    tolerance=tol,
                    ratio=ratio,
                    status=status,
                )
            )
    # Metrics that exist only in the current run: informational.
    for wl_name in sorted(cur_wl):
        base_metrics = base_wl.get(wl_name, {}).get("metrics", {})
        for m_name in sorted(cur_wl[wl_name].get("metrics", {})):
            c = cur_wl[wl_name]["metrics"][m_name]
            if m_name in base_metrics or c.get("kind", "time") in ignored:
                continue
            report.comparisons.append(
                MetricComparison(
                    workload=wl_name,
                    metric=m_name,
                    kind=c.get("kind", "time"),
                    baseline=None,
                    current=float(c["median"]),
                    tolerance=0.0,
                    ratio=None,
                    status="new",
                )
            )
    return report
