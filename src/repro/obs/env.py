"""Environment metadata stamped onto benchmark results.

Benchmark numbers are only comparable when you know what produced them:
interpreter, platform, core count, source revision, and when.  This
module gathers that once per process (the git lookup shells out) and
hands back a JSON-safe dict that the bench runner and the perf suite
embed into every result file.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
from typing import Dict, Optional

__all__ = ["environment_metadata", "git_revision"]

_GIT_CACHE: Dict[str, Optional[str]] = {}


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a checkout.

    Best-effort: any failure (no git binary, not a repository, timeout)
    yields ``None`` rather than an exception, so result stamping never
    breaks a benchmark run.  The answer is cached per directory.
    """
    key = cwd or os.getcwd()
    if key not in _GIT_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5.0,
            )
            sha = out.stdout.strip()
            _GIT_CACHE[key] = sha if out.returncode == 0 and sha else None
        except (OSError, subprocess.SubprocessError):
            _GIT_CACHE[key] = None
    return _GIT_CACHE[key]


def environment_metadata() -> Dict[str, object]:
    """A JSON-safe description of the machine and source revision.

    Keys: ``python`` / ``implementation`` / ``platform`` / ``machine`` /
    ``cpu_count`` / ``numpy`` / ``git_sha`` / ``timestamp_utc``.
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # lint-ok: PC004 — env probing must never raise
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy_version,
        "git_sha": git_revision(os.path.dirname(os.path.abspath(__file__))),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
