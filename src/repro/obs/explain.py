"""Per-query EXPLAIN: why did QUERY(s, t) return that distance?

A 2-hop-cover answer is a minimum over the common hubs of two labels,
and when the answer looks wrong — or merely expensive — the interesting
question is which hub won, how close the losers came, and how much of
each label the merge join had to scan.  :func:`explain_query` re-runs
the query on a *separate diagnostic code path*
(:func:`repro.core.query.query_candidates`): the production
:func:`~repro.core.query.query_distance` loop carries no EXPLAIN
branches, so plain queries pay nothing (guarded by the
``explain_overhead`` perf workload).

Each losing candidate is classified:

* ``"winner"`` — the hub realising the minimum (lowest rank on ties,
  matching :func:`~repro.core.query.query_result`);
* ``"redundant"`` — ties the winning distance through a different hub:
  an alternative optimal meeting vertex, label space the periodic
  cluster sync (the paper's ``c``) or delayed pruning paid for without
  improving this query;
* ``"dominated"`` — strictly worse than the winner.

The JSON form (:meth:`QueryExplanation.to_dict`, schema
``parapll-explain/1``) is what ``parapll explain --json`` and the
server's ``explain`` op emit; CI validates it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.labels import LabelStore
from repro.core.paths import isclose_distance
from repro.core.query import query_candidates

__all__ = ["EXPLAIN_SCHEMA", "HubCandidate", "QueryExplanation", "explain_query"]

EXPLAIN_SCHEMA = "parapll-explain/1"


def _encode(value: float) -> Any:
    """JSON-safe distance (``"inf"`` for unreachable, as the server)."""
    return "inf" if value == math.inf else value


@dataclass(frozen=True)
class HubCandidate:
    """One common hub of the two labels and the path cost through it.

    Attributes:
        hub_rank: the hub's position in the indexing order.
        hub: the hub's vertex id (``None`` when no ordering was given).
        d_s: distance hub -> s.
        d_t: distance hub -> t.
        total: ``d_s + d_t``, the candidate answer through this hub.
        role: ``"winner"`` / ``"redundant"`` / ``"dominated"``.
        slack: how far this candidate is above the winning distance
            (0.0 for the winner and redundant ties).
    """

    hub_rank: int
    hub: Optional[int]
    d_s: float
    d_t: float
    total: float
    role: str
    slack: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form."""
        return {
            "hub_rank": self.hub_rank,
            "hub": self.hub,
            "d_s": self.d_s,
            "d_t": self.d_t,
            "total": self.total,
            "role": self.role,
            "slack": self.slack,
        }


@dataclass(frozen=True)
class QueryExplanation:
    """The full attribution of one distance query.

    Attributes:
        s: source vertex.
        t: target vertex.
        distance: the winning distance (``inf`` when unreachable;
            exactly equal to :func:`~repro.core.query.query_distance`).
        hub: winning hub as a vertex id (``None`` if unreachable, if
            ``s == t``, or when no ordering was supplied).
        hub_rank: winning hub's rank (``None`` as above).
        candidates: every common hub, hub-rank order.
        label_size_s: entries in the finalized ``L(s)``.
        label_size_t: entries in the finalized ``L(t)``.
        scanned_s: label entries the merge join consumed on the s side.
        scanned_t: label entries consumed on the t side.
    """

    s: int
    t: int
    distance: float
    hub: Optional[int]
    hub_rank: Optional[int]
    candidates: List[HubCandidate] = field(default_factory=list)
    label_size_s: int = 0
    label_size_t: int = 0
    scanned_s: int = 0
    scanned_t: int = 0

    @property
    def reachable(self) -> bool:
        """Whether any common hub connects the two vertices."""
        return self.distance != math.inf

    def to_dict(self) -> Dict[str, Any]:
        """The documented ``parapll-explain/1`` JSON document."""
        return {
            "schema": EXPLAIN_SCHEMA,
            "s": self.s,
            "t": self.t,
            "distance": _encode(self.distance),
            "reachable": self.reachable,
            "hub": self.hub,
            "hub_rank": self.hub_rank,
            "candidates": [c.to_dict() for c in self.candidates],
            "labels": {
                "s_size": self.label_size_s,
                "t_size": self.label_size_t,
                "s_scanned": self.scanned_s,
                "t_scanned": self.scanned_t,
            },
        }

    def render(self) -> str:
        """Terminal-friendly EXPLAIN output (``parapll explain``)."""
        dist = "unreachable" if not self.reachable else f"{self.distance}"
        lines = [
            f"EXPLAIN distance({self.s}, {self.t}) = {dist}",
            f"  labels: |L({self.s})| = {self.label_size_s} "
            f"(scanned {self.scanned_s}), "
            f"|L({self.t})| = {self.label_size_t} "
            f"(scanned {self.scanned_t})",
        ]
        if self.s == self.t:
            lines.append("  trivial query: source equals target")
            return "\n".join(lines)
        if not self.candidates:
            lines.append("  no common hub: the labels never meet")
            return "\n".join(lines)
        lines.append(
            f"  {len(self.candidates)} candidate hub(s), best via "
            + (
                f"hub {self.hub}"
                if self.hub is not None
                else f"rank {self.hub_rank}"
            )
        )
        lines.append(
            "  rank      hub     d(hub,s)     d(hub,t)        total  role"
        )
        for c in self.candidates:
            hub = "-" if c.hub is None else str(c.hub)
            lines.append(
                f"  {c.hub_rank:>4} {hub:>8} {c.d_s:12.6g} {c.d_t:12.6g} "
                f"{c.total:12.6g}  {c.role}"
            )
        return "\n".join(lines)


def explain_query(
    store: LabelStore,
    s: int,
    t: int,
    order: Optional[Sequence[int]] = None,
) -> QueryExplanation:
    """Attribute ``QUERY(s, t)`` over a finalized label store.

    Args:
        store: the (finalized) label store; finalization is triggered
            if needed.
        s: source vertex.
        t: target vertex.
        order: the index's vertex ordering — when given, hub ranks are
            mapped back to vertex ids in the output.

    Returns:
        A :class:`QueryExplanation` whose ``distance`` equals
        :func:`~repro.core.query.query_distance` exactly (same floats,
        same tie-break).
    """
    store.finalize()
    candidates_raw, scanned_s, scanned_t = query_candidates(store, s, t)
    if s == t:
        return QueryExplanation(
            s=s,
            t=t,
            distance=0.0,
            hub=None,
            hub_rank=None,
            candidates=[],
            label_size_s=len(store.finalized_hubs(s)),
            label_size_t=len(store.finalized_hubs(t)),
            scanned_s=0,
            scanned_t=0,
        )

    best = math.inf
    best_rank: Optional[int] = None
    for rank, d_s, d_t in candidates_raw:
        total = d_s + d_t
        if total < best:
            best = total
            best_rank = rank

    candidates: List[HubCandidate] = []
    for rank, d_s, d_t in candidates_raw:
        total = d_s + d_t
        if rank == best_rank:
            role = "winner"
            slack = 0.0
        elif isclose_distance(total, best):
            role = "redundant"
            slack = 0.0
        else:
            role = "dominated"
            slack = total - best
        candidates.append(
            HubCandidate(
                hub_rank=rank,
                hub=int(order[rank]) if order is not None else None,
                d_s=d_s,
                d_t=d_t,
                total=total,
                role=role,
                slack=slack,
            )
        )

    hub_vertex = (
        int(order[best_rank])
        if order is not None and best_rank is not None
        else None
    )
    return QueryExplanation(
        s=s,
        t=t,
        distance=float(best),
        hub=hub_vertex,
        hub_rank=best_rank,
        candidates=candidates,
        label_size_s=len(store.finalized_hubs(s)),
        label_size_t=len(store.finalized_hubs(t)),
        scanned_s=scanned_s,
        scanned_t=scanned_t,
    )
