"""The well-known ParaPLL instruments, declared once on the registry.

Every instrumented module imports its handles from here, so the metric
name table in README.md has exactly one source of truth.  All handles
live on the default registry; ``registry.reset()`` zeroes them in place
without invalidating these references.

Call sites guard updates with ``if config.METRICS`` themselves when the
update is per-inner-loop; the ``record_*`` helpers below bundle the
common multi-counter bumps (one per root search, per sync round, ...)
and include the guard.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import config as _config
from repro.obs.metrics import get_registry

_REG = get_registry()

#: Estimated serialized size of one label entry on the wire:
#: vertex id (4B) + hub rank (4B) + float32 distance (4B).
ENTRY_BYTES = 12

# ----------------------------------------------------------------------
# Build (pruned-Dijkstra / pruned-BFS root searches; any execution mode)
# ----------------------------------------------------------------------
BUILD_ROOTS = _REG.counter(
    "parapll_build_roots_total", "Pruned root searches completed"
)
BUILD_SETTLED = _REG.counter(
    "parapll_build_settled_total", "Vertices settled across all searches"
)
BUILD_PRUNE_HITS = _REG.counter(
    "parapll_build_prune_hits_total",
    "Settled vertices discarded by the 2-hop-cover prune test",
)
BUILD_LABELS = _REG.counter(
    "parapll_build_labels_total", "Label entries produced by root searches"
)
BUILD_HEAP_POPS = _REG.counter(
    "parapll_build_heap_pops_total", "Priority-queue delete-min operations"
)
BUILD_QUERY_SCANS = _REG.counter(
    "parapll_build_query_scans_total",
    "Label entries read by prune-test queries",
)
BUILD_PHASE = _REG.gauge(
    "parapll_build_phase_seconds",
    "Accumulated seconds per build phase",
    labels=("phase",),
)

# ----------------------------------------------------------------------
# Build monitor (live progress of an in-flight build)
# ----------------------------------------------------------------------
BUILDMON_ROOTS_DONE = _REG.gauge(
    "parapll_buildmon_roots_done",
    "Roots committed so far in the monitored build",
)
BUILDMON_LABELS_TOTAL = _REG.gauge(
    "parapll_buildmon_labels_total",
    "Label entries committed so far in the monitored build",
)
BUILDMON_ETA = _REG.gauge(
    "parapll_buildmon_eta_seconds",
    "Estimated seconds until the monitored build completes (-1 unknown)",
)
BUILDMON_SNAPSHOTS = _REG.counter(
    "parapll_buildmon_snapshots_total",
    "Progress snapshots emitted by the build monitor",
)

# ----------------------------------------------------------------------
# Thread pool / task manager
# ----------------------------------------------------------------------
WORKER_ROOTS = _REG.counter(
    "parapll_worker_roots_total",
    "Roots indexed per worker thread",
    labels=("worker",),
)
WORKER_QUEUE_WAIT = _REG.counter(
    "parapll_worker_queue_wait_seconds_total",
    "Seconds each worker spent asking the task manager for work",
    labels=("worker",),
)
COMMIT_LOCK_WAIT = _REG.counter(
    "parapll_commit_lock_wait_seconds_total",
    "Seconds workers waited to acquire the label-commit lock",
)
COMMIT_LOCK_HOLD = _REG.counter(
    "parapll_commit_lock_hold_seconds_total",
    "Seconds the label-commit lock was held",
)
COMMITS = _REG.counter(
    "parapll_commits_total", "Label delta commits into the shared store"
)
TASKS_DISPATCHED = _REG.counter(
    "parapll_tasks_dispatched_total",
    "Root tasks handed out by the task manager",
    labels=("policy",),
)

# ----------------------------------------------------------------------
# Cluster substrate
# ----------------------------------------------------------------------
CLUSTER_SYNC_ROUNDS = _REG.counter(
    "parapll_cluster_sync_rounds_total",
    "Completed cluster synchronisation rounds (allgather exchanges)",
)
CLUSTER_SYNC_ENTRIES = _REG.histogram(
    "parapll_cluster_sync_entries",
    "Label entries exchanged per synchronisation round",
    buckets=(1, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
)
CLUSTER_MESSAGES = _REG.counter(
    "parapll_cluster_messages_total",
    "Simulated communicator operations",
    labels=("op",),
)
CLUSTER_BYTES = _REG.counter(
    "parapll_cluster_bytes_total",
    "Estimated bytes moved by the simulated communicator "
    f"({ENTRY_BYTES}B per label entry, fan-out counted)",
)
CLUSTER_REDUNDANT_LABELS = _REG.counter(
    "parapll_cluster_redundant_labels_total",
    "Remote label entries skipped at merge because a node already "
    "held them (the redundancy a serial build would not produce)",
)

# ----------------------------------------------------------------------
# Serving layer
# ----------------------------------------------------------------------
SERVICE_REQUESTS = _REG.counter(
    "parapll_service_requests_total",
    "Requests handled by the TCP distance server",
    labels=("op",),
)
SERVICE_ERRORS = _REG.counter(
    "parapll_service_errors_total",
    "Requests answered with ok=false",
    labels=("op",),
)
SERVICE_LATENCY = _REG.histogram(
    "parapll_service_request_seconds",
    "Server-side request handling latency",
    labels=("op",),
)
SERVICE_MALFORMED = _REG.counter(
    "parapll_service_malformed_lines_total",
    "Request lines that failed JSON decoding",
)
SERVICE_SLOW = _REG.counter(
    "parapll_service_slow_requests_total",
    "Requests slower than the server's slow-query threshold",
    labels=("op",),
)
ORACLE_QUERIES = _REG.counter(
    "parapll_oracle_queries_total",
    "Point-distance queries answered by the in-process oracle",
)
ORACLE_CACHE_HITS = _REG.counter(
    "parapll_oracle_cache_hits_total",
    "Oracle queries answered from the LRU cache",
)
SERVICE_SHED = _REG.counter(
    "parapll_service_shed_total",
    "Requests fast-failed by the SLO load shedder",
    labels=("op",),
)

# ----------------------------------------------------------------------
# SLO engine (sliding-window objectives; see repro.obs.slo)
# ----------------------------------------------------------------------
SLO_BURN_RATE = _REG.gauge(
    "parapll_slo_burn_rate",
    "Error-budget burn rate per SLO target (1.0 = burning exactly at "
    "the objective's tolerance; >1.0 = violating)",
    labels=("target",),
)
SLO_BUDGET_REMAINING = _REG.gauge(
    "parapll_slo_error_budget_remaining",
    "Fraction of the windowed error budget left per SLO target",
    labels=("target",),
)
SLO_BREACHES = _REG.counter(
    "parapll_slo_breaches_total",
    "Burn-rate threshold crossings (breach transitions) per SLO target",
    labels=("target",),
)

# ----------------------------------------------------------------------
# Telemetry relay (cross-process plane; see repro.obs.relay)
# ----------------------------------------------------------------------
TELEMETRY_FRAMES = _REG.counter(
    "parapll_telemetry_frames_total",
    "Telemetry frames received per relay source",
    labels=("source",),
)
TELEMETRY_DROPPED = _REG.counter(
    "parapll_telemetry_dropped_total",
    "Frames dropped at the source's bounded bus, per relay source",
    labels=("source",),
)
TELEMETRY_LAG = _REG.gauge(
    "parapll_telemetry_queue_lag_seconds",
    "Max bus queue lag observed at the source, seconds",
    labels=("source",),
)

#: Ops the server reports individually; anything else is folded into
#: "unknown" so hostile clients cannot blow up label cardinality.
KNOWN_SERVICE_OPS = frozenset(
    {
        "ping",
        "distance",
        "batch",
        "knn",
        "path",
        "stats",
        "metrics",
        "explain",
        "status",
        "debug",
        "audit",
        "health",
    }
)


# ----------------------------------------------------------------------
# Bundled record helpers (one call per instrumented operation)
# ----------------------------------------------------------------------
def record_search(
    settled: int, pruned: int, labels: int, pops: int, scans: int
) -> None:
    """Record one completed pruned root search (any execution mode)."""
    if not _config.METRICS:
        return
    BUILD_ROOTS.inc()
    BUILD_SETTLED.inc(settled)
    BUILD_PRUNE_HITS.inc(pruned)
    BUILD_LABELS.inc(labels)
    BUILD_HEAP_POPS.inc(pops)
    BUILD_QUERY_SCANS.inc(scans)


def record_build_progress(
    roots_done: int, labels_total: int, eta_seconds: Optional[float]
) -> None:
    """Record one emitted build-monitor progress snapshot."""
    if not _config.METRICS:
        return
    BUILDMON_ROOTS_DONE.set(roots_done)
    BUILDMON_LABELS_TOTAL.set(labels_total)
    BUILDMON_ETA.set(eta_seconds if eta_seconds is not None else -1.0)
    BUILDMON_SNAPSHOTS.inc()


def record_sync_round(entries: int) -> None:
    """Record one cluster synchronisation round exchanging *entries*."""
    if not _config.METRICS:
        return
    CLUSTER_SYNC_ROUNDS.inc()
    CLUSTER_SYNC_ENTRIES.observe(entries)


def record_comm(op: str, entries: int, fanout: int = 1) -> None:
    """Record one communicator operation moving *entries* label entries
    to *fanout* receivers (0 receivers — a 1-rank collective — moves no
    bytes but still counts as an operation)."""
    if not _config.METRICS:
        return
    CLUSTER_MESSAGES.labels(op=op).inc()
    CLUSTER_BYTES.inc(entries * ENTRY_BYTES * max(0, fanout))


def record_request(
    op: Optional[str], seconds: float, ok: bool, include_latency: bool = True
) -> None:
    """Record one server request: counter, latency histogram, errors.

    Args:
        op: request op (folded into ``"unknown"`` when unrecognised).
        seconds: server-side handling time.
        ok: whether the request succeeded.
        include_latency: pass ``False`` when the caller records latency
            at a finer grain itself (the batch op observes *per-pair*
            latencies via :func:`record_batch_pair` instead of skewing
            the histogram with one whole-request sample).
    """
    if not _config.METRICS:
        return
    label = op if op in KNOWN_SERVICE_OPS else "unknown"
    SERVICE_REQUESTS.labels(op=label).inc()
    if include_latency:
        SERVICE_LATENCY.labels(op=label).observe(seconds)
    if not ok:
        SERVICE_ERRORS.labels(op=label).inc()


def record_batch_pair(seconds: float) -> None:
    """Record one pair's latency inside a batch request."""
    if not _config.METRICS:
        return
    SERVICE_LATENCY.labels(op="batch").observe(seconds)


def record_slow_request(op: Optional[str]) -> None:
    """Count one request that exceeded the slow-query threshold."""
    if not _config.METRICS:
        return
    label = op if op in KNOWN_SERVICE_OPS else "unknown"
    SERVICE_SLOW.labels(op=label).inc()


def record_shed(op: Optional[str]) -> None:
    """Count one request fast-failed by the SLO load shedder."""
    if not _config.METRICS:
        return
    label = op if op in KNOWN_SERVICE_OPS else "unknown"
    SERVICE_SHED.labels(op=label).inc()


def record_slo_target(
    target: str, burn_rate: float, budget_remaining: float, breached: bool
) -> None:
    """Mirror one SLO target evaluation onto the gauges.

    Args:
        target: SLO target name.
        burn_rate: current windowed burn rate.
        budget_remaining: fraction of the windowed budget left.
        breached: ``True`` only on the breach *transition* (the counter
            counts crossings, not evaluations while breached).
    """
    if not _config.METRICS:
        return
    SLO_BURN_RATE.labels(target=target).set(burn_rate)
    SLO_BUDGET_REMAINING.labels(target=target).set(budget_remaining)
    if breached:
        SLO_BREACHES.labels(target=target).inc()
