"""The performance suite: small deterministic workloads, recorded runs.

One ``BENCH_<tag>.json`` file captures everything needed to compare two
revisions of this codebase: per-workload wall/simulated times and the
key operation counters (heap pops, prune hits, labels, sync bytes),
each run ``repeats`` times with the median and extremes recorded, plus
environment metadata so numbers from different machines are never
silently conflated.  :mod:`repro.obs.regression` consumes two such
files and classifies every metric as improved / unchanged / regressed.

Three metric kinds, with different noise characteristics:

* ``"time"`` — wall-clock seconds; machine- and load-dependent, gated
  with a generous default tolerance and skippable across machines.
* ``"sim"`` — simulated seconds from the discrete-event executor;
  deterministic for a fixed seed, gated tightly.
* ``"counter"`` — operation counts; deterministic except where noted
  (threaded-build label counts depend on commit interleaving), gated
  exactly by default with per-metric overrides.

The workload set covers every execution mode: serial build, threaded
build at p ∈ {1, 4}, simulated build, cluster build with one sync, a
query batch, a TCP server round-trip, a seeded closed-loop traffic
replay with an SLO verdict, and the qlog/SLO and telemetry-relay
hot-path overhead gates.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs.env import environment_metadata

__all__ = [
    "BENCH_SCHEMA",
    "PerfError",
    "Workload",
    "default_workloads",
    "run_suite",
    "read_bench",
    "write_bench",
    "render_bench",
    "DEFAULT_TOLERANCES",
]

BENCH_SCHEMA = "parapll-bench/1"

#: Default relative tolerances per metric kind (see module docstring).
DEFAULT_TOLERANCES: Dict[str, float] = {
    "time": 0.35,
    "sim": 0.02,
    "counter": 0.0,
}

#: Absolute slack per kind: differences below this never count as a
#: change (guards tiny-workload timing noise and float drift).
ABS_EPSILON: Dict[str, float] = {
    "time": 0.005,
    "sim": 1e-9,
    "counter": 0.5,
}


class PerfError(ReproError):
    """Raised for invalid perf-suite configuration or result files."""


def _metric(
    value: float, kind: str, unit: str, tol: Optional[float] = None
) -> Dict[str, Any]:
    if kind not in DEFAULT_TOLERANCES:
        raise PerfError(f"unknown metric kind {kind!r}")
    return {
        "value": float(value),
        "kind": kind,
        "unit": unit,
        "tol": DEFAULT_TOLERANCES[kind] if tol is None else float(tol),
    }


def _counter_value(name: str) -> float:
    from repro.obs.metrics import get_registry

    metric = get_registry().get(name)
    if metric is None:
        return 0.0
    total = 0.0
    for _key, series in metric.series_items():
        value = series.value()  # type: ignore[attr-defined]
        if isinstance(value, dict):
            total += float(value["sum"])
        else:
            total += float(value)
    return total


class PerfContext:
    """Shared state for one suite run: the workload graph and knobs."""

    def __init__(self, scale: float, seed: int, dataset: str) -> None:
        from repro.generators.paper import load_dataset

        self.scale = scale
        self.seed = seed
        self.dataset = dataset
        self.graph = load_dataset(dataset, scale=scale, seed=seed)


class Workload:
    """One named, repeatable measurement.

    Args:
        name: stable identifier (a key of the BENCH file).
        fn: callable taking a :class:`PerfContext` and returning the
            metric dict for one run; called once per repeat with the
            obs registry freshly reset.
        timeline: optional callable producing a JSON-safe timeline
            summary (per-worker fractions) recorded once per suite run.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[PerfContext], Dict[str, Dict[str, Any]]],
        timeline: Optional[Callable[[PerfContext], Dict[str, Any]]] = None,
    ) -> None:
        self.name = name
        self.fn = fn
        self.timeline = timeline


# ----------------------------------------------------------------------
# Workload implementations
# ----------------------------------------------------------------------
def _build_counters(tol_labels: float = 0.0) -> Dict[str, Dict[str, Any]]:
    """The build-side operation counters, read from the registry."""
    return {
        "heap_pops": _metric(
            _counter_value("parapll_build_heap_pops_total"), "counter", "ops"
        ),
        "prune_hits": _metric(
            _counter_value("parapll_build_prune_hits_total"),
            "counter",
            "ops",
            tol=tol_labels,
        ),
        "labels": _metric(
            _counter_value("parapll_build_labels_total"),
            "counter",
            "entries",
            tol=tol_labels,
        ),
    }


def _wl_serial_build(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    from repro.core.serial import build_serial

    t0 = time.perf_counter()
    build_serial(ctx.graph)
    wall = time.perf_counter() - t0
    out = {"wall_seconds": _metric(wall, "time", "s")}
    out.update(_build_counters())
    return out


def _wl_thread_build(p: int):
    def run(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
        from repro.parallel.threads import build_parallel_threads

        t0 = time.perf_counter()
        build_parallel_threads(ctx.graph, p, policy="dynamic")
        wall = time.perf_counter() - t0
        out = {"wall_seconds": _metric(wall, "time", "s")}
        # With p > 1, prune effectiveness depends on commit
        # interleaving, so label/pop counts are noisy by nature.
        out.update(_build_counters(tol_labels=0.0 if p == 1 else 0.5))
        if p > 1:
            out["heap_pops"]["tol"] = 0.5
        out["roots"] = _metric(
            _counter_value("parapll_build_roots_total"), "counter", "roots"
        )
        return out

    return run


def _wl_multicore_build(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """Serial vs. 4-process shared-memory build on the perf graph.

    The wall clocks and the derived speedup are kind ``time`` (machine-
    dependent: the speedup only materialises with >= 4 real cores, so
    CI compares with ``--ignore-kinds time``); the gating metrics are
    the deterministic ones — every root committed exactly once and the
    procs index answering a query sample identically to serial.
    """
    import numpy as np

    from repro.core.index import PLLIndex
    from repro.parallel.procs import build_parallel_procs

    t0 = time.perf_counter()
    serial = PLLIndex.build(ctx.graph)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    procs = build_parallel_procs(ctx.graph, 4, policy="dynamic")
    procs_wall = time.perf_counter() - t0
    rng = np.random.default_rng(ctx.seed)
    n = ctx.graph.num_vertices
    pairs = rng.integers(0, n, size=(256, 2))
    exact = bool(
        np.allclose(
            serial.distance_batch(pairs),
            procs.distance_batch(pairs),
            equal_nan=True,
        )
    )
    return {
        "serial_wall_seconds": _metric(serial_wall, "time", "s"),
        "procs_wall_seconds": _metric(procs_wall, "time", "s"),
        "speedup_x": _metric(
            serial_wall / procs_wall if procs_wall else 0.0, "time", "x"
        ),
        "roots_committed": _metric(
            _counter_value("parapll_worker_roots_total"), "counter", "roots"
        ),
        "query_exact": _metric(1.0 if exact else 0.0, "counter", "bool"),
    }


def _run_sim(ctx: PerfContext):
    from repro.sim.executor import simulate_intra_node

    return simulate_intra_node(
        ctx.graph,
        4,
        policy="dynamic",
        jitter=0.15,
        worker_jitter=0.25,
        seed=ctx.seed + 4,
    )


def _wl_sim_build(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    _index, run = _run_sim(ctx)
    out = {
        "makespan_sim_seconds": _metric(run.makespan, "sim", "s"),
        "computation_sim_seconds": _metric(
            run.computation_time, "sim", "s"
        ),
    }
    out.update(_build_counters())
    return out


def _wl_sim_build_timeline(ctx: PerfContext) -> Dict[str, Any]:
    """Traced sim build reduced to per-worker fractions (JSON-safe)."""
    from repro import obs
    from repro.obs.timeline import analyze_critical_path

    previous = obs.current_config()
    obs.get_tracer().clear()
    obs.configure(tracing=True)
    try:
        _run_sim(ctx)
        report = analyze_critical_path(task_names=("root_search",))
    finally:
        obs.configure(tracing=previous.tracing)
        obs.get_tracer().clear()
    return {
        "makespan_sim_seconds": report.makespan,
        "chain_tasks": len(report.chain),
        "chain_seconds": report.chain_seconds,
        "chain_coverage": report.chain_coverage,
        "workers": [
            {
                "lane": lane.lane,
                "tasks": lane.tasks,
                "busy": lane.busy,
                "lock_wait": lane.lock_wait,
                "idle": lane.idle,
            }
            for lane in report.lanes
        ],
    }


def _wl_cluster_build(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    from repro.cluster.parapll import simulate_cluster

    _index, run = simulate_cluster(
        ctx.graph,
        2,
        threads_per_node=2,
        policy="dynamic",
        syncs=1,
        jitter=0.15,
        worker_jitter=0.25,
        seed=ctx.seed + 9,
    )
    return {
        "makespan_sim_seconds": _metric(run.makespan, "sim", "s"),
        "communication_sim_seconds": _metric(
            run.communication_time, "sim", "s"
        ),
        "sync_entries": _metric(
            _counter_value("parapll_cluster_sync_entries"),
            "counter",
            "entries",
        ),
        "sync_bytes": _metric(
            _counter_value("parapll_cluster_bytes_total"), "counter", "B"
        ),
        "redundant_labels": _metric(
            _counter_value("parapll_cluster_redundant_labels_total"),
            "counter",
            "entries",
        ),
    }


def _wl_query_batch(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    import numpy as np

    from repro.core.index import PLLIndex

    index = PLLIndex.build(ctx.graph)
    n = ctx.graph.num_vertices
    rng = np.random.default_rng(ctx.seed)
    pairs = rng.integers(0, n, size=(2000, 2))
    t0 = time.perf_counter()
    for s, t in pairs:
        index.query(int(s), int(t))
    wall = time.perf_counter() - t0
    return {
        "wall_seconds": _metric(wall, "time", "s"),
        "queries": _metric(len(pairs), "counter", "queries"),
    }


def _wl_batch_query(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """The vectorised batch kernel vs the per-pair Python loop.

    Times ``query_distance_batch`` on 10k pairs against the equivalent
    scalar ``query_distance`` loop over the same pairs, and counts how
    many answers agree bit-for-bit (``batch_matches`` must equal
    ``pairs`` — the kernel is exact, not approximate).  The
    ``batch_over_scalar`` ratio is the batch wall divided by the scalar
    wall: lower is better, and staying well under 1/3 is the point of
    the kernel.
    """
    import numpy as np

    from repro.core.index import PLLIndex
    from repro.core.query import query_distance, query_distance_batch

    index = PLLIndex.build(ctx.graph)
    store = index.store
    n = ctx.graph.num_vertices
    rng = np.random.default_rng(ctx.seed + 23)
    pairs = rng.integers(0, n, size=(10_000, 2))

    t0 = time.perf_counter()
    batch_out = query_distance_batch(store, pairs)
    batch_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_out = np.array(
        [query_distance(store, int(s), int(t)) for s, t in pairs]
    )
    scalar_wall = time.perf_counter() - t0

    matches = int(np.sum(batch_out == scalar_out))
    return {
        "batch_seconds": _metric(batch_wall, "time", "s"),
        "scalar_seconds": _metric(scalar_wall, "time", "s"),
        # Dimensionless wall ratio; generous tol — both walls jitter.
        "batch_over_scalar": _metric(
            batch_wall / scalar_wall, "time", "x", tol=1.0
        ),
        "batch_matches": _metric(float(matches), "counter", "pairs"),
        "pairs": _metric(float(len(pairs)), "counter", "pairs"),
    }


def _wl_server_roundtrip(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    import numpy as np

    from repro.core.index import PLLIndex
    from repro.service.oracle import DistanceOracle
    from repro.service.server import DistanceClient, DistanceServer

    index = PLLIndex.build(ctx.graph)
    oracle = DistanceOracle(index)
    n = ctx.graph.num_vertices
    rng = np.random.default_rng(ctx.seed)
    pairs = rng.integers(0, n, size=(100, 2))
    with DistanceServer(oracle) as server:
        with DistanceClient("127.0.0.1", server.port) as client:
            client.ping()  # connection warm-up, excluded from timing
            t0 = time.perf_counter()
            for s, t in pairs:
                client.distance(int(s), int(t))
            wall = time.perf_counter() - t0
    return {
        "wall_seconds": _metric(wall, "time", "s"),
        "requests": _metric(len(pairs), "counter", "requests"),
    }


def _wl_index_invariants(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """``parapll check index`` smoke: every BENCH file records whether a
    threaded build of the suite graph passes the label-invariant
    verifier, plus the violation/redundancy counts — so a concurrency
    regression that corrupts labels (rather than slowing them down)
    still fails the perf gate."""
    from repro.check.invariants import verify_index
    from repro.parallel.threads import build_parallel_threads

    index = build_parallel_threads(ctx.graph, 4, policy="dynamic")
    t0 = time.perf_counter()
    report = verify_index(index, samples=32, seed=ctx.seed)
    wall = time.perf_counter() - t0
    return {
        "verify_seconds": _metric(wall, "time", "s"),
        "invariants_ok": _metric(
            1.0 if report.ok else 0.0, "counter", "bool"
        ),
        "invariant_violations": _metric(
            float(len(report.violations)), "counter", "violations"
        ),
        # Redundant labels are legal but worth watching: a sustained
        # order-of-magnitude jump means pruning got much less
        # effective.  Commit interleaving makes the count swing ~2.5x
        # run to run, hence the very loose tolerance.
        "redundant_labels": _metric(
            float(report.redundant_labels), "counter", "entries", tol=3.0
        ),
        "sampled_pairs": _metric(
            float(report.sampled_pairs), "counter", "pairs"
        ),
    }


def _wl_explain_overhead(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """EXPLAIN must cost the plain query path nothing.

    EXPLAIN runs on a separate diagnostic code path
    (:func:`repro.core.query.query_candidates`), not an ``if`` inside
    the hot merge join — so this workload times the *plain*
    ``query_distance`` loop (gating it like any other time metric: a
    regression here means EXPLAIN leaked into the hot path) and
    separately times the EXPLAIN loop, while asserting that every
    explained distance equals the plain query bit-for-bit.
    """
    import numpy as np

    from repro.core.index import PLLIndex
    from repro.core.paths import isclose_distance
    from repro.core.query import query_distance

    index = PLLIndex.build(ctx.graph)
    store = index.store
    n = ctx.graph.num_vertices
    rng = np.random.default_rng(ctx.seed + 17)
    pairs = [(int(s), int(t)) for s, t in rng.integers(0, n, size=(100, 2))]

    t0 = time.perf_counter()
    plain = [query_distance(store, s, t) for s, t in pairs]
    plain_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    explanations = [index.explain(s, t) for s, t in pairs]
    explain_wall = time.perf_counter() - t0

    # atol=0.0 makes isclose_distance an exact-equality test (with the
    # INF sentinel handled): EXPLAIN must reproduce the query verbatim.
    matches = sum(
        1
        for d, e in zip(plain, explanations)
        if isclose_distance(d, e.distance, atol=0.0)
    )
    return {
        "plain_query_seconds": _metric(plain_wall, "time", "s"),
        "explain_seconds": _metric(explain_wall, "time", "s"),
        "explain_matches": _metric(float(matches), "counter", "pairs"),
        "pairs": _metric(float(len(pairs)), "counter", "pairs"),
    }


def _wl_audit_overhead(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """Buildmon must be (nearly) free; the audit must stay canonical.

    The <5% overhead assertion cannot be enforced by differencing two
    whole-build walls: on the sub-100ms suite build, run-to-run wall
    noise is ±10% — larger than the bound being asserted — so that
    gate would fail on noise, not regressions.  Instead the monitor's
    *added work* is timed directly: the build calls ``root_done`` once
    per root plus the sampled emissions, so n hook calls (driving the
    same sampling schedule a monitored build would) divided by the
    plain build wall IS the overhead fraction, and because its true
    value is ~1% the noise multiplies a small number and the 5% gate
    holds deterministically.  ``overhead_within_gate`` (exact counter)
    fails the perf comparison outright if the fraction ever exceeds
    0.05; ``monitor_overhead_ratio`` keeps the end-to-end
    monitored/plain wall ratio as an informational time metric; and
    ``progress_events`` pins the sampling schedule exactly, so a
    change that makes the monitor emit per root fails even when the
    machine is too noisy to see it in the walls.  The same workload
    times a full ``audit_index`` pass and pins its dominated count to
    zero — a serial build is canonical by construction, so a nonzero
    count here means the builder or the audit broke.
    """
    from repro.core.index import PLLIndex
    from repro.core.serial import build_serial
    from repro.obs import buildmon as _buildmon
    from repro.obs.audit import audit_index
    from repro.obs.buildmon import BuildMonitor
    from repro.types import SearchStats

    n = ctx.graph.num_vertices
    sample_every = max(1, n // 20)

    def _monitor() -> BuildMonitor:
        return BuildMonitor(
            total_roots=n,
            sample_every=sample_every,
            interval_seconds=None,
            keep_per_root=False,
        )

    def plain_wall() -> float:
        t0 = time.perf_counter()
        build_serial(ctx.graph)
        return time.perf_counter() - t0

    def monitored_wall() -> float:
        monitor = _monitor()
        with _buildmon.monitored(monitor):
            t0 = time.perf_counter()
            build_serial(ctx.graph)
            wall = time.perf_counter() - t0
        events[0] = len(monitor.events)
        return wall

    events = [0]
    plain = min(plain_wall() for _ in range(3))
    monitored = min(monitored_wall() for _ in range(3))

    # The monitor's entire footprint in a serial build: one root_done
    # per root, same sampling schedule, same stats bookkeeping.
    hook_monitor = _monitor()
    stats = SearchStats(root=0, settled=20, pruned=8, labels_added=12)
    t0 = time.perf_counter()
    for root in range(n):
        hook_monitor.root_done(0, root, stats=stats)
    hook_wall = time.perf_counter() - t0
    fraction = hook_wall / plain

    index = PLLIndex.build(ctx.graph)
    t0 = time.perf_counter()
    report = audit_index(index, source="perf")
    audit_wall = time.perf_counter() - t0

    return {
        "plain_build_seconds": _metric(plain, "time", "s"),
        "monitored_build_seconds": _metric(monitored, "time", "s"),
        # End-to-end wall ratio, informational only (see docstring).
        "monitor_overhead_ratio": _metric(
            monitored / plain, "time", "x", tol=0.5
        ),
        "monitor_hook_fraction": _metric(fraction, "time", "x", tol=1.0),
        # The hard gate: exact counter, 1.0 iff overhead <= 5%.
        "overhead_within_gate": _metric(
            1.0 if fraction <= 0.05 else 0.0, "counter", "bool"
        ),
        "progress_events": _metric(
            float(events[0]), "counter", "events"
        ),
        "audit_seconds": _metric(audit_wall, "time", "s"),
        "dominated_entries": _metric(
            float(report["dominated"]["count"]), "counter", "entries"
        ),
        "label_entries": _metric(
            float(report["total_entries"]), "counter", "entries"
        ),
    }


def _wl_serve_replay(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """Seeded closed-loop replay against a live server, gated.

    This is the measurement ROADMAP item 2's sharded tier will be
    accepted against: a deterministic Zipf-skewed request sequence
    (same seed ⇒ same pairs, every run) pushed through the real TCP
    stack by concurrent clients, reporting throughput and tail
    latencies.  ``throughput_rps`` is recorded for the baseline but
    carries a huge tolerance — the regression gate is lower-is-better,
    so the gated forms are ``us_per_request`` and the p50/p99 walls.
    ``errors`` and ``breached_targets`` are exact: replaying a healthy
    index through a healthy server must produce neither.
    """
    from repro.core.index import PLLIndex
    from repro.obs.slo import SLOTracker
    from repro.service.oracle import DistanceOracle
    from repro.service.replay import ReplayConfig, run_replay
    from repro.service.server import DistanceServer

    index = PLLIndex.build(ctx.graph)
    oracle = DistanceOracle(index)
    config = ReplayConfig(
        mode="closed",
        source="zipf",
        requests=600,
        clients=4,
        seed=ctx.seed,
    )
    # A private tracker keeps the replay's SLO windows out of the
    # process-wide one (and vice versa).
    with DistanceServer(oracle, slo_tracker=SLOTracker()) as server:
        report = run_replay(config, host="127.0.0.1", port=server.port)
    lat = report["latency_us"]
    outcomes = report["outcomes"]
    return {
        "wall_seconds": _metric(report["wall_seconds"], "time", "s"),
        "us_per_request": _metric(
            report["wall_seconds"] * 1e6 / report["requests"], "time", "us"
        ),
        "p50_us": _metric(lat["p50"], "time", "us"),
        "p99_us": _metric(lat["p99"], "time", "us", tol=1.0),
        "throughput_rps": _metric(
            report["throughput_rps"], "time", "req/s", tol=5.0
        ),
        "requests": _metric(float(report["requests"]), "counter", "requests"),
        "errors": _metric(float(outcomes.get("error", 0)), "counter", "requests"),
        "breached_targets": _metric(
            float(len(report["verdict"]["breached"])), "counter", "targets"
        ),
    }


def _wl_qlog_overhead(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """The qlog + SLO hooks must cost the serve path <5%.

    Same reasoning as ``audit_overhead``: differencing two whole walls
    cannot assert a 5% bound under ±10% run noise, so the hooks' *added
    work* is timed directly and divided by the wall the hooks ride — a
    plain served request over the loopback TCP stack (socket + JSON
    framing + dispatch + oracle), measured as min-of-3 like the other
    overhead gates.  Per served request the added work is exactly: one
    :func:`repro.obs.qlog.record_query` call against an installed
    recorder (global load + seeded sampling decision + on sampled
    queries the record append) plus one
    :meth:`~repro.obs.slo.SLOTracker.record` (one lock, one bucket
    bisect, per-threshold exceedance counts).  The gate is evaluated at
    5% sampling — the recommended always-on capture rate; full capture
    (``qlog_sample=1.0``, the default, meant for short diagnostic
    windows) is reported informationally as ``full_sample_fraction``.
    ``qlog_records`` pins the seeded sampler's output exactly: a
    different count means sampling determinism broke.
    """
    import numpy as np

    from repro.core.index import PLLIndex
    from repro.obs import qlog as _qlog
    from repro.obs.slo import SLOTracker
    from repro.service.oracle import DistanceOracle
    from repro.service.server import DistanceClient, DistanceServer

    index = PLLIndex.build(ctx.graph)
    n = ctx.graph.num_vertices
    rng = np.random.default_rng(ctx.seed + 31)
    pairs = [(int(s), int(t)) for s, t in rng.integers(0, n, size=(1000, 2))]

    oracle = DistanceOracle(index, cache_size=1024)
    with DistanceServer(oracle, slo_tracker=SLOTracker()) as server:
        client = DistanceClient("127.0.0.1", server.port)
        try:

            def plain_wall() -> float:
                t0 = time.perf_counter()
                for s, t in pairs:
                    client.distance(s, t)
                return time.perf_counter() - t0

            plain = min(plain_wall() for _ in range(3))
        finally:
            client.close()

    def hook_wall(sample: float) -> tuple:
        recorder = _qlog.QueryLogRecorder(sample=sample, seed=ctx.seed)
        tracker = SLOTracker()
        _qlog.install(recorder)
        try:
            wall = float("inf")
            for _ in range(3):
                recorder.clear()
                t0 = time.perf_counter()
                for s, t in pairs:
                    _qlog.record_query("distance", s, t, 10.0)
                    tracker.record(1e-5, ok=True)
                wall = min(wall, time.perf_counter() - t0)
        finally:
            _qlog.uninstall()
        return wall, recorder.sampled

    sampled_wall, records = hook_wall(0.05)
    full_wall, _ = hook_wall(1.0)
    fraction = sampled_wall / plain
    return {
        "plain_serve_seconds": _metric(plain, "time", "s"),
        "hook_fraction": _metric(fraction, "time", "x", tol=1.0),
        "full_sample_fraction": _metric(
            full_wall / plain, "time", "x", tol=1.0
        ),
        # The hard gate: exact counter, 1.0 iff overhead at the
        # recommended 5% sampling rate stays <= 5% of the
        # served-request wall.
        "overhead_within_gate": _metric(
            1.0 if fraction <= 0.05 else 0.0, "counter", "bool"
        ),
        "qlog_records": _metric(float(records), "counter", "records"),
        "pairs": _metric(float(len(pairs)), "counter", "pairs"),
    }


def _wl_check_overhead(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """The vector-clock sanitizer must cost the thread build <10%.

    Same direct-measurement reasoning as ``audit_overhead``: a 10%
    bound cannot be asserted by differencing two whole-build walls
    under ±10% run noise.  One instrumented build (under
    ``PARAPLL_SANITIZE=vc`` semantics: a fresh
    ``VectorClockSanitizer`` installed) counts the actual hook traffic
    — tracked accesses, lock acquire/release pairs, fork/join events —
    and must finish race-free (``vc_races`` pins that to zero).  The
    sanitizer's *added work* is then timed directly by replaying that
    exact hook schedule against a fresh engine, and divided by the
    plain build wall; ``overhead_within_gate`` (exact counter) fails
    the comparison outright if the fraction exceeds 0.10.  When the
    sanitizer is off the hooks must dispatch to nothing:
    ``hooks_active_when_off`` pins the off-path to an exact zero.
    """
    import gc

    from repro.check import hooks as _check_hooks
    from repro.check.vectorclock import VectorClockSanitizer
    from repro.parallel.threads import build_parallel_threads

    def plain_wall() -> float:
        t0 = time.perf_counter()
        build_parallel_threads(ctx.graph, 4, policy="dynamic")
        return time.perf_counter() - t0

    # Off-path: with no sanitizer installed the hooks are no-ops.
    ambient = _check_hooks.get_active()
    _check_hooks.set_active(None)
    # Freeze the garbage collector across the timed sections: by this
    # point the suite has built a dozen indexes, and automatic gen2
    # passes scan that whole heap mid-loop — the measured fraction
    # would track heap size (and the workload's position in the
    # suite), not the sanitizer.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        hooks_active = 1.0 if _check_hooks.get_active() is not None else 0.0
        plain = min(plain_wall() for _ in range(3))

        build_vc = VectorClockSanitizer()
        with build_vc:
            t0 = time.perf_counter()
            build_parallel_threads(ctx.graph, 4, policy="dynamic")
            sanitized = time.perf_counter() - t0

        # Replay the observed hook schedule against a fresh engine:
        # that loop IS the sanitizer's entire footprint in the build.
        # The instrumented build splits its accesses into two measured
        # populations — same-owner re-writes riding the FastTrack
        # same-epoch fast path (the overwhelming majority: commits to a
        # vertex's label streak from one worker) and full
        # epoch-allocating, stack-capturing slow-path accesses — and
        # the replay reproduces that observed mix exactly: a fresh
        # location per slow-path access (a one-location replay would
        # ride the fast path and dodge the conflict checks), then the
        # fast-path population as repeated writes to one hot location.
        slow = build_vc.accesses_tracked - build_vc.fastpath_hits
        names = [f"perf.store.{i}" for i in range(slow)]
        syncs = build_vc.sync_events // 2

        def replay_wall() -> float:
            replay = VectorClockSanitizer()
            lock = replay.make_lock("perf.commit")
            t0 = time.perf_counter()
            for name in names:
                with lock:
                    replay.record_access(name, write=True)
            for _ in range(build_vc.fastpath_hits):
                with lock:
                    replay.record_access("perf.store.hot", write=True)
            for i in range(syncs):
                replay.thread_fork(f"perf-w{i}")
                replay.thread_join(f"perf-w{i}")
            return time.perf_counter() - t0

        # Best of three, like the plain wall it is divided by.
        hook_wall = min(replay_wall() for _ in range(3))
        fraction = hook_wall / plain
    finally:
        _check_hooks.set_active(ambient)

    return {
        "plain_build_seconds": _metric(plain, "time", "s"),
        "sanitized_build_seconds": _metric(sanitized, "time", "s"),
        # End-to-end wall ratio, informational only (see docstring).
        "sanitizer_overhead_ratio": _metric(
            sanitized / plain, "time", "x", tol=0.5
        ),
        "sanitizer_hook_fraction": _metric(fraction, "time", "x", tol=1.0),
        # The hard gate: exact counter, 1.0 iff overhead <= 10%.
        "overhead_within_gate": _metric(
            1.0 if fraction <= 0.10 else 0.0, "counter", "bool"
        ),
        "vc_races": _metric(
            float(len(build_vc.reports)), "counter", "races"
        ),
        # Commit traffic tracks labels-added, which is interleaving-
        # dependent at p=4 (same reason thread_build_p4 widens labels).
        "vc_accesses": _metric(
            float(build_vc.accesses_tracked), "counter", "accesses",
            tol=0.5,
        ),
        "vc_fastpath_hits": _metric(
            float(build_vc.fastpath_hits), "counter", "accesses",
            tol=0.5,
        ),
        "vc_sync_events": _metric(
            float(build_vc.sync_events), "counter", "events"
        ),
        "hooks_active_when_off": _metric(
            hooks_active, "counter", "bool"
        ),
    }


def _wl_telemetry_overhead(ctx: PerfContext) -> Dict[str, Dict[str, Any]]:
    """The telemetry relay must cost the threaded build <5%.

    Same direct-measurement reasoning as the other overhead gates: a 5%
    bound cannot be asserted by differencing two whole-build walls
    under ±10% run noise.  Per committed root the relay adds exactly
    one :func:`repro.obs.bus.publish_event` call on the worker thread
    (a global load, a dict build and a deque append — the delta
    collection, span scan and socket write all ride the flush thread),
    so the hooks' added work is timed directly — the build's observed
    event count replayed against an installed bus, min-of-3 — and
    divided by the plain build wall.  ``overhead_within_gate`` (exact
    counter) fails the comparison outright if that fraction exceeds
    0.05.

    The end-to-end leg builds once with the full plane live — in-process
    :class:`~repro.obs.relay.Collector` on a *private* registry (merging
    into the registry the client diffs would re-ship every merged
    increment forever), relay client on the process registry, bus sized
    to the build so backpressure, not capacity, is under test — and
    pins the merge exact: the collector's merged
    ``parapll_build_roots_total`` must equal the source registry's own
    cumulative total (shipped deltas always sum to the source's truth —
    see :class:`repro.obs.bus.MetricsDelta`), with zero drops, zero
    malformed frames and zero merge errors.  When no bus is installed the producers must dispatch to
    nothing: ``bus_active_when_off`` pins the off-path to an exact
    zero.
    """
    import gc

    from repro.obs import bus as _bus
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.relay import Collector, RelayClient
    from repro.parallel.threads import build_parallel_threads

    n = ctx.graph.num_vertices

    def plain_wall() -> float:
        t0 = time.perf_counter()
        build_parallel_threads(ctx.graph, 4, policy="dynamic")
        return time.perf_counter() - t0

    # Same GC discipline as check_overhead: automatic gen2 passes over
    # the suite's accumulated heap would dominate the measured fraction.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        bus_active = 1.0 if _bus.active() is not None else 0.0
        plain = min(plain_wall() for _ in range(3))

        # End-to-end: one build with the relay plane fully live.
        collector = Collector(
            "127.0.0.1", 0, registry=MetricsRegistry()
        ).start()
        try:
            client = RelayClient(
                collector.host,
                collector.port,
                rank=0,
                bus=_bus.TelemetryBus(capacity=4 * n + 1024),
                flush_interval=0.05,
            )
            try:
                t0 = time.perf_counter()
                build_parallel_threads(ctx.graph, 4, policy="dynamic")
                relayed = time.perf_counter() - t0
            finally:
                client.close()
            # close() flushed synchronously; wait for the collector's
            # reader thread to drain the socket and see EOF.
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                stats = collector.stats()
                sources = stats["sources"]
                if sources and not any(
                    s["connected"] for s in sources.values()
                ):
                    break
                time.sleep(0.01)
            stats = collector.stats()
            expected_roots = _counter_value("parapll_build_roots_total")
            merged_roots = 0.0
            for metric in collector.registry.snapshot():
                if metric["name"] == "parapll_build_roots_total":
                    merged_roots = sum(
                        float(s["value"]) for s in metric["series"]
                    )
            event_frames = sum(
                src["by_kind"].get("events", 0)
                for src in stats["sources"].values()
            )
        finally:
            collector.close()

        # The hooks' added work: the exact per-root producer cost, the
        # observed number of times, against an installed bus.
        def hook_wall() -> float:
            bus = _bus.TelemetryBus(capacity=n + 16)
            _bus.install(bus)
            try:
                t0 = time.perf_counter()
                for root in range(n):
                    _bus.publish_event(
                        "root_commit", worker=0, root=root, labels=8
                    )
                return time.perf_counter() - t0
            finally:
                _bus.uninstall()

        hook = min(hook_wall() for _ in range(3))
        fraction = hook / plain
    finally:
        if gc_was_enabled:
            gc.enable()

    return {
        "plain_build_seconds": _metric(plain, "time", "s"),
        "relay_build_seconds": _metric(relayed, "time", "s"),
        # End-to-end wall ratio, informational only (see docstring).
        "relay_overhead_ratio": _metric(relayed / plain, "time", "x", tol=0.5),
        "relay_hook_fraction": _metric(fraction, "time", "x", tol=1.0),
        # The hard gate: exact counter, 1.0 iff overhead <= 5%.
        "overhead_within_gate": _metric(
            1.0 if fraction <= 0.05 else 0.0, "counter", "bool"
        ),
        # Merge exactness: the collector's merged counter equals the
        # source registry's cumulative total, and every root committed
        # with the bus installed arrived as one event frame.
        "merge_exact": _metric(
            1.0 if merged_roots == expected_roots else 0.0,
            "counter",
            "bool",
        ),
        "event_frames": _metric(float(event_frames), "counter", "frames"),
        "relay_drops": _metric(float(stats["dropped"]), "counter", "frames"),
        "malformed_frames": _metric(
            float(stats["malformed"]), "counter", "frames"
        ),
        "merge_errors": _metric(
            float(stats["merge_errors"]), "counter", "errors"
        ),
        "bus_active_when_off": _metric(bus_active, "counter", "bool"),
    }


def default_workloads() -> List[Workload]:
    """The standard PerfSuite (one Workload per execution mode)."""
    return [
        Workload("serial_build", _wl_serial_build),
        Workload("thread_build_p1", _wl_thread_build(1)),
        Workload("thread_build_p4", _wl_thread_build(4)),
        Workload("build_multicore", _wl_multicore_build),
        Workload("sim_build_p4", _wl_sim_build, timeline=_wl_sim_build_timeline),
        Workload("cluster_build_q2c1", _wl_cluster_build),
        Workload("query_batch", _wl_query_batch),
        Workload("batch_query", _wl_batch_query),
        Workload("server_roundtrip", _wl_server_roundtrip),
        Workload("index_invariants", _wl_index_invariants),
        Workload("explain_overhead", _wl_explain_overhead),
        Workload("audit_overhead", _wl_audit_overhead),
        Workload("serve_replay", _wl_serve_replay),
        Workload("qlog_overhead", _wl_qlog_overhead),
        Workload("check_overhead", _wl_check_overhead),
        Workload("telemetry_overhead", _wl_telemetry_overhead),
    ]


# ----------------------------------------------------------------------
# Suite runner
# ----------------------------------------------------------------------
def run_suite(
    repeats: int = 3,
    scale: float = 1.0,
    seed: int = 42,
    dataset: str = "Gnutella",
    tag: str = "dev",
    workloads: Optional[Sequence[Workload]] = None,
    include_timeline: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the PerfSuite and return the BENCH document.

    Each workload runs *repeats* times with the metrics registry reset
    per run; per-metric medians and extremes are recorded.  Counters are
    deterministic, so their median doubles as an exact fingerprint of
    the algorithmic work done.

    Raises:
        PerfError: for a non-positive repeat count.
    """
    from repro import obs

    if repeats < 1:
        raise PerfError("repeats must be >= 1")
    ctx = PerfContext(scale=scale, seed=seed, dataset=dataset)
    workloads = list(workloads) if workloads is not None else default_workloads()

    results: Dict[str, Any] = {}
    for wl in workloads:
        if progress:
            progress(f"running {wl.name} x{repeats}")
        runs: List[Dict[str, Dict[str, Any]]] = []
        for _ in range(repeats):
            obs.reset()
            runs.append(wl.fn(ctx))
        obs.reset()
        metrics: Dict[str, Any] = {}
        for name in runs[0]:
            samples = [run[name]["value"] for run in runs if name in run]
            meta = runs[0][name]
            metrics[name] = {
                "median": statistics.median(samples),
                "min": min(samples),
                "max": max(samples),
                "runs": samples,
                "kind": meta["kind"],
                "unit": meta["unit"],
                "tol": meta["tol"],
            }
        entry: Dict[str, Any] = {"metrics": metrics}
        if include_timeline and wl.timeline is not None:
            entry["timeline"] = wl.timeline(ctx)
        results[wl.name] = entry

    return {
        "schema": BENCH_SCHEMA,
        "tag": tag,
        "environment": environment_metadata(),
        "config": {
            "repeats": repeats,
            "scale": scale,
            "seed": seed,
            "dataset": dataset,
        },
        "workloads": results,
    }


# ----------------------------------------------------------------------
# BENCH file IO
# ----------------------------------------------------------------------
def write_bench(doc: Dict[str, Any], path: str) -> None:
    """Write a BENCH document as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")


def read_bench(path: str) -> Dict[str, Any]:
    """Read and validate a BENCH document.

    Raises:
        PerfError: for unreadable files or unknown schema versions.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise PerfError(f"cannot read benchmark file {path!r}: {exc}")
    if not isinstance(doc, dict) or "schema" not in doc:
        raise PerfError(f"{path!r} is not a BENCH file (no schema key)")
    if doc["schema"] != BENCH_SCHEMA:
        raise PerfError(
            f"{path!r} has schema {doc['schema']!r}; this build reads "
            f"{BENCH_SCHEMA!r}"
        )
    if "workloads" not in doc:
        raise PerfError(f"{path!r} has no workloads section")
    return doc


def render_bench(doc: Dict[str, Any]) -> str:
    """Terminal summary of one BENCH document (``parapll perf report``)."""
    env = doc.get("environment", {})
    cfg = doc.get("config", {})
    sha = env.get("git_sha") or "unknown"
    lines = [
        f"benchmark {doc.get('tag', '?')}  ({doc.get('schema')})",
        f"  recorded {env.get('timestamp_utc', '?')}  git {sha[:12]}",
        f"  python {env.get('python', '?')} on {env.get('platform', '?')}"
        f"  ({env.get('cpu_count', '?')} cpus)",
        f"  repeats={cfg.get('repeats', '?')} scale={cfg.get('scale', '?')}"
        f" dataset={cfg.get('dataset', '?')}",
    ]
    for name in sorted(doc.get("workloads", {})):
        entry = doc["workloads"][name]
        lines.append(f"{name}:")
        for metric in sorted(entry.get("metrics", {})):
            m = entry["metrics"][metric]
            value = m["median"]
            shown = (
                f"{value:.5f}" if isinstance(value, float) and value < 1e4
                else f"{value:.0f}"
            )
            lines.append(
                f"  {metric:<26} {shown:>14} {m['unit']:<7} "
                f"[{m['kind']}, tol {m['tol']:.0%}]"
            )
        timeline = entry.get("timeline")
        if timeline:
            lines.append(
                f"  timeline: chain {timeline['chain_tasks']} tasks "
                f"covering {timeline['chain_coverage']:.0%} of "
                f"{timeline['makespan_sim_seconds']:.4f} sim-s"
            )
            for w in timeline.get("workers", []):
                lines.append(
                    f"    {w['lane']:<10} busy {w['busy']:6.1%}  "
                    f"lock-wait {w['lock_wait']:6.1%}  idle {w['idle']:6.1%}"
                )
    return "\n".join(lines)
