"""Exporters: Prometheus text exposition, JSONL traces, text summary.

All output is produced from registry/tracer *snapshots*, so exporting
never blocks the instrumented hot paths for longer than one series
read.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.metrics import (
    DEFAULT_QUANTILES,
    Histogram,
    MetricsRegistry,
    get_registry,
    histogram_quantile,
)
from repro.obs.trace import TraceRecord, get_tracer

__all__ = [
    "prometheus_text",
    "trace_to_jsonl",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_summary",
]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms expand into the conventional ``_bucket`` (cumulative,
    with ``le`` upper-bound labels including ``+Inf``), ``_sum`` and
    ``_count`` series.
    """
    registry = registry or get_registry()
    lines: List[str] = []
    for metric in registry.collect():
        lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, series in metric.series_items():
            if isinstance(metric, Histogram):
                snap = series.value()
                for bound, cumulative in snap["buckets"]:
                    le = "+Inf" if bound == "+Inf" else _format_value(
                        float(bound)
                    )
                    labels = _format_labels(
                        tuple(metric.label_names) + ("le",),
                        tuple(key) + (le,),
                    )
                    lines.append(
                        f"{metric.name}_bucket{labels} {cumulative}"
                    )
                base = _format_labels(metric.label_names, key)
                lines.append(
                    f"{metric.name}_sum{base} {_format_value(snap['sum'])}"
                )
                lines.append(f"{metric.name}_count{base} {snap['count']}")
            else:
                labels = _format_labels(metric.label_names, key)
                lines.append(
                    f"{metric.name}{labels} "
                    f"{_format_value(series.value())}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------
def trace_to_jsonl(records: Optional[Iterable[TraceRecord]] = None) -> str:
    """Serialise trace records as one JSON object per line."""
    if records is None:
        records = get_tracer().records()
    return "\n".join(
        json.dumps(r.to_dict(), sort_keys=True) for r in records
    ) + ("\n" if records else "")


def write_trace_jsonl(
    path_or_file: Union[str, IO[str]],
    records: Optional[Iterable[TraceRecord]] = None,
) -> int:
    """Write records (default: the global tracer's) as JSONL.

    Returns:
        The number of records written.
    """
    if records is None:
        records = get_tracer().records()
    records = list(records)
    text = trace_to_jsonl(records)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)  # type: ignore[union-attr]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
            fh.write(text)
    return len(records)


def read_trace_jsonl(
    path_or_lines: Union[str, Iterable[str]],
) -> List[TraceRecord]:
    """Parse a JSONL trace back into :class:`TraceRecord` objects.

    Accepts a file path or any iterable of lines; blank lines are
    skipped.
    """
    if isinstance(path_or_lines, str):
        with open(path_or_lines, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(path_or_lines)
    out = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(TraceRecord.from_dict(json.loads(line)))
    return out


# ----------------------------------------------------------------------
# Human-readable summary (the `parapll obs` report)
# ----------------------------------------------------------------------
def _series_value(
    snapshot: Dict[str, Dict], name: str, labels: Optional[Dict] = None
) -> float:
    metric = snapshot.get(name)
    if metric is None:
        return 0.0
    want = {k: str(v) for k, v in (labels or {}).items()}
    for series in metric["series"]:
        if series["labels"] == want:
            value = series["value"]
            return float(value) if not isinstance(value, dict) else 0.0
    return 0.0


def _labeled_series(snapshot: Dict[str, Dict], name: str) -> List[Dict]:
    metric = snapshot.get(name)
    return list(metric["series"]) if metric else []


def render_summary(registry: Optional[MetricsRegistry] = None) -> str:
    """A terminal-friendly report of the well-known ParaPLL metrics.

    Sections with no recorded data are omitted, so the output adapts to
    whatever actually ran (serial build, threaded build, cluster sim,
    service traffic).
    """
    registry = registry or get_registry()
    snap = {m["name"]: m for m in registry.snapshot()}
    lines: List[str] = ["observability summary", "====================="]

    roots = _series_value(snap, "parapll_build_roots_total")
    if roots:
        labels = _series_value(snap, "parapll_build_labels_total")
        settled = _series_value(snap, "parapll_build_settled_total")
        pruned = _series_value(snap, "parapll_build_prune_hits_total")
        pops = _series_value(snap, "parapll_build_heap_pops_total")
        scans = _series_value(snap, "parapll_build_query_scans_total")
        lines.append("build:")
        lines.append(
            f"  roots searched     {int(roots)}  "
            f"(labels {int(labels)}, {labels / roots:.1f}/root)"
        )
        prune_rate = pruned / settled if settled else 0.0
        lines.append(
            f"  prune rate         {prune_rate:.1%}  "
            f"({int(pruned)} of {int(settled)} settled)"
        )
        lines.append(
            f"  heap pops          {int(pops)}  "
            f"(label entries scanned {int(scans)})"
        )
    phases = _labeled_series(snap, "parapll_build_phase_seconds")
    phase_parts = [
        f"{s['labels'].get('phase', '?')} {float(s['value']):.3f}s"
        for s in phases
        if not isinstance(s["value"], dict) and float(s["value"]) > 0
    ]
    if phase_parts:
        lines.append(f"  phases             {' | '.join(phase_parts)}")

    workers = _labeled_series(snap, "parapll_worker_roots_total")
    if workers:
        lines.append("workers:")
        for series in sorted(
            workers, key=lambda s: int(s["labels"].get("worker", 0))
        ):
            w = series["labels"].get("worker", "?")
            wait = _series_value(
                snap,
                "parapll_worker_queue_wait_seconds_total",
                {"worker": w},
            )
            lines.append(
                f"  worker {w}: {int(float(series['value']))} roots, "
                f"queue wait {wait:.4f}s"
            )
        hold = _series_value(snap, "parapll_commit_lock_hold_seconds_total")
        wait = _series_value(snap, "parapll_commit_lock_wait_seconds_total")
        commits = _series_value(snap, "parapll_commits_total")
        lines.append(
            f"  commit lock: {int(commits)} commits, "
            f"hold {hold:.4f}s, wait {wait:.4f}s"
        )

    rounds = _series_value(snap, "parapll_cluster_sync_rounds_total")
    if rounds:
        redundant = _series_value(
            snap, "parapll_cluster_redundant_labels_total"
        )
        bcast = _series_value(snap, "parapll_cluster_bytes_total")
        metric = snap.get("parapll_cluster_sync_entries")
        entries = 0.0
        entries_hist = None
        if metric:
            for series in metric["series"]:
                if isinstance(series["value"], dict):
                    entries += float(series["value"]["sum"])
                    entries_hist = series["value"]
        lines.append("cluster:")
        lines.append(
            f"  sync rounds        {int(rounds)}  "
            f"(entries exchanged {int(entries)})"
        )
        if entries_hist and entries_hist["count"]:
            qs = [
                histogram_quantile(entries_hist, q) for q in DEFAULT_QUANTILES
            ]
            lines.append(
                "  entries/round      p50 {:.0f} | p95 {:.0f} | "
                "p99 {:.0f}".format(*qs)
            )
        lines.append(
            f"  redundant labels   {int(redundant)}  "
            f"(est. bytes on the wire {int(bcast)})"
        )

    requests = _labeled_series(snap, "parapll_service_requests_total")
    if requests:
        lines.append("service:")
        parts = [
            f"{s['labels'].get('op', '?')}={int(float(s['value']))}"
            for s in requests
            if not isinstance(s["value"], dict)
        ]
        lines.append(f"  requests           {' '.join(sorted(parts))}")
        for series in sorted(
            _labeled_series(snap, "parapll_service_request_seconds"),
            key=lambda s: s["labels"].get("op", ""),
        ):
            value = series["value"]
            if not isinstance(value, dict) or not value["count"]:
                continue
            op = series["labels"].get("op", "?")
            qs = [
                histogram_quantile(value, q) * 1000.0
                for q in DEFAULT_QUANTILES
            ]
            lines.append(
                "  latency {:<10} p50 {:.2f}ms | p95 {:.2f}ms | "
                "p99 {:.2f}ms".format(op, *qs)
            )
        errors = sum(
            float(s["value"])
            for s in _labeled_series(snap, "parapll_service_errors_total")
            if not isinstance(s["value"], dict)
        )
        malformed = _series_value(
            snap, "parapll_service_malformed_lines_total"
        )
        slow = _series_value(snap, "parapll_service_slow_requests_total")
        lines.append(
            f"  errors             {int(errors)}  "
            f"(malformed lines {int(malformed)}, slow {int(slow)})"
        )
        # Sliding-window view (process-lifetime quantiles above hide
        # what the last few minutes looked like).
        from repro.obs.slo import get_tracker

        for window, qs in sorted(get_tracker().windowed_quantiles().items()):
            lines.append(
                "  window  {:<10} ".format(window)
                + " | ".join(
                    f"{name} {qs[name] * 1000.0:.2f}ms"
                    for name in sorted(qs)
                )
            )

    frames = _labeled_series(snap, "parapll_telemetry_frames_total")
    if frames:
        # Telemetry-plane health: one line per relay source (frames
        # received, frames dropped at the source's bounded bus, max
        # queue lag the source ever saw at drain time).
        lines.append("telemetry:")
        for series in sorted(
            frames, key=lambda s: s["labels"].get("source", "")
        ):
            source = series["labels"].get("source", "?")
            dropped = _series_value(
                snap, "parapll_telemetry_dropped_total", {"source": source}
            )
            lag = _series_value(
                snap,
                "parapll_telemetry_queue_lag_seconds",
                {"source": source},
            )
            lines.append(
                f"  {source:<16} frames {int(float(series['value']))}, "
                f"dropped {int(dropped)}, max queue lag {lag:.3f}s"
            )

    if len(lines) == 2:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
