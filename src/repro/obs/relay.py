"""Cross-process telemetry relay: child exporter + parent collector.

:mod:`repro.obs.bus` defines the frames; this module moves them.  A
worker process creates a :class:`RelayClient` pointing at the parent's
:class:`Collector` and from then on its metrics, spans, flight-recorder
events, build-monitor snapshots and explicit bus events stream over a
TCP connection as ``parapll-telemetry/1`` JSONL — one JSON object per
line, header first.  The collector merges everything into the parent's
registry and trace state with defined semantics:

* **counters sum** — children ship deltas (:class:`~repro.obs.bus
  .MetricsDelta`), the collector ``inc()``\\ s the same-named series, so
  the merged total is exactly the sum over sources plus the parent's
  own increments;
* **gauges are last-write-wins, tagged by source** — the merged series
  holds the most recently shipped value and
  :meth:`Collector.gauge_attribution` says which source wrote it;
* **histograms bucket-merge** — per-bucket counts, sum and count add
  via :func:`~repro.obs.metrics.merge_histogram_snapshot`, refusing
  mismatched bucket layouts;
* **spans and flightrec events stitch** — records gain ``pid``/``rank``
  attrs and a ``<source>:`` thread prefix so every process gets its own
  lanes in one Chrome trace (:meth:`Collector.write_chrome_trace`).

Failure modes (exercised in ``tests/test_telemetry.py``):

* **slow collector** — the child's bus is bounded; producers never
  block, excess frames are dropped and counted, and every shipped frame
  carries the cumulative per-kind drop counters so the collector can
  tell "quiet" from "overloaded";
* **dead collector** — a send failure marks the client dead, stops the
  flush thread and uninstalls the bus; the instrumented process keeps
  running, minus telemetry;
* **dead child / partial frame** — a connection that closes mid-line
  leaves a truncated JSON object; the collector counts it as malformed
  and keeps every complete frame received before it.

Clock discipline: frames carry wall ``ts`` (event timestamps only) and
monotonic ``mono``.  Queue lag, flush ages and stitched span times all
come from the monotonic clock — on Linux ``time.monotonic`` is
``CLOCK_MONOTONIC``, shared across local processes, which is what makes
cross-process span stitching line up.

In-process use (tests, demos): give the collector its *own* registry or
run it in a different process than the client.  Pointing a client's
delta collector at the same registry the collector merges into would
re-ship merged increments forever.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import socket
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.check import hooks as _hooks
from repro.obs import buildmon as _buildmon
from repro.obs import bus as _bus
from repro.obs import flightrec as _flightrec
from repro.obs.bus import TELEMETRY_SCHEMA, MetricsDelta, TelemetryBus
from repro.obs.metrics import (
    MetricsRegistry,
    ObsError,
    get_registry,
    merge_histogram_snapshot,
)
from repro.obs.trace import TraceRecord, get_tracer

__all__ = [
    "DEFAULT_FLUSH_INTERVAL",
    "RelayClient",
    "Collector",
    "render_fleet",
]

DEFAULT_FLUSH_INTERVAL = 0.25

#: Stitched trace records and event lists are bounded so a chatty fleet
#: cannot grow the parent without limit.
DEFAULT_MAX_RECORDS = 65_536
DEFAULT_MAX_EVENTS = 8_192

#: Telemetry-health instrument names (declared in
#: :mod:`repro.obs.instruments` for the README table; the collector
#: registers them idempotently on whatever registry it merges into).
FRAMES_METRIC = "parapll_telemetry_frames_total"
DROPPED_METRIC = "parapll_telemetry_dropped_total"
LAG_METRIC = "parapll_telemetry_queue_lag_seconds"


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
class RelayClient:
    """Ships this process's telemetry to a :class:`Collector`.

    On construction the client connects, writes the stream header and
    starts a daemon flush thread; from then on every
    ``flush_interval`` seconds (and once more at exit, via ``atexit``)
    it gathers

    * metric deltas from *registry* (counters/histograms as increments,
      gauges as current values),
    * trace records not yet shipped (tracked by ``span_id`` against the
      ring content, so re-flushes never duplicate),
    * flight-recorder events with ``seq`` beyond the last shipped,
    * the active build monitor's progress snapshot, and
    * everything queued on the bus by :func:`repro.obs.bus.publish_event`

    and sends them as one JSONL batch.  A send failure marks the client
    dead and uninstalls the bus — telemetry degrades, the workload
    does not.

    Args:
        host / port: the collector's listen address.
        rank: optional rank id stamped into the stream header (and onto
            stitched spans at the collector).
        registry: registry to collect deltas from (default process-wide).
        bus: the event bus to drain (default: a fresh one, installed
            process-wide unless *install_bus* is false).
        flush_interval: seconds between periodic flushes.
        connect_timeout: seconds to wait for the collector to accept.
        install_bus: install *bus* via :func:`repro.obs.bus.install` so
            module-level :func:`~repro.obs.bus.publish_event` feeds it.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        rank: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[TelemetryBus] = None,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        connect_timeout: float = 5.0,
        install_bus: bool = True,
    ) -> None:
        if flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        self.rank = rank
        self.flush_interval = flush_interval
        self.bus = bus if bus is not None else TelemetryBus()
        self._delta = MetricsDelta(registry)
        self._shipped_spans: set = set()
        self._last_flight_seq = 0
        self._final_shipped: Optional[_buildmon.BuildMonitor] = None
        self.frames_sent = 0
        self.flushes = 0
        self.send_failures = 0
        self.dead = False
        self._closed = False
        self._installed = False
        self._lock = _hooks.make_lock("obs.relay.client")

        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(connect_timeout)
        self._send_line(json.dumps(self.bus.header(rank=rank)))

        if install_bus:
            _bus.install(self.bus)
            self._installed = True
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-relay", daemon=True
        )
        _hooks.fork(self._thread.name)
        self._thread.start()
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _send_line(self, line: str) -> None:
        self._sock.sendall(line.encode("utf-8") + b"\n")

    def _run(self) -> None:
        while not self._stop.wait(self.flush_interval):
            self.flush()
            if self.dead:
                return

    def _gather_locked(self) -> List[Dict[str, Any]]:
        """Queue fresh telemetry on the bus, then drain everything."""
        deltas = self._delta.collect()
        if deltas:
            self.bus.publish("metrics", deltas)
        records = get_tracer().records()
        fresh = [r for r in records if r.span_id not in self._shipped_spans]
        # Reset to the ring's current content: evicted ids fall out, so
        # the set stays bounded by the tracer capacity.
        self._shipped_spans = {r.span_id for r in records}
        if fresh:
            self.bus.publish("spans", [r.to_dict() for r in fresh])
        events = [
            e
            for e in _flightrec.get_recorder().snapshot()
            if e["seq"] > self._last_flight_seq
        ]
        if events:
            self._last_flight_seq = events[-1]["seq"]
            self.bus.publish("flightrec", events)
        monitor = _buildmon.active()
        if monitor is None:
            # A fast build can start and finish entirely between two
            # periodic flushes; ship the finished monitor's final
            # snapshot once so the collector still sees it.
            finished = _buildmon.last_finished()
            if finished is not None and finished is not self._final_shipped:
                monitor = self._final_shipped = finished
        if monitor is not None:
            self.bus.publish("buildmon", monitor.snapshot())
        frames = self.bus.drain()
        dropped = dict(self.bus.dropped)
        lag = round(self.bus.max_lag_seconds, 6)
        for frame in frames:
            frame["dropped"] = dropped
            frame["lag"] = lag
        return frames

    def flush(self) -> int:
        """Gather and ship one batch; returns frames sent (0 if dead)."""
        with self._lock:
            if self.dead:
                return 0
            frames = self._gather_locked()
            if not frames:
                return 0
            try:
                self._send_line(
                    "\n".join(json.dumps(f, default=str) for f in frames)
                )
            except OSError:
                self.send_failures += 1
                self.dead = True
                if self._installed:
                    _bus.uninstall()
                    self._installed = False
                return 0
            self.frames_sent += len(frames)
            self.flushes += 1
            return len(frames)

    def close(self) -> None:
        """Final flush and shutdown (idempotent; runs at exit)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        self._thread.join(timeout=5.0)
        _hooks.join(self._thread.name)
        self.flush()
        if self._installed:
            _bus.uninstall()
            self._installed = False
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass
        atexit.unregister(self.close)

    def __enter__(self) -> "RelayClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
def _delta_to_snapshot(delta: Dict[str, Any]) -> Dict[str, Any]:
    """Re-encode a shipped histogram delta as a ``value()`` snapshot."""
    cumulative: List[List[Any]] = []
    running = 0
    bounds: List[Any] = list(delta["bounds"]) + ["+Inf"]
    for bound, count in zip(bounds, delta["counts"]):
        running += int(count)
        cumulative.append([bound, running])
    return {
        "buckets": cumulative,
        "sum": delta["sum"],
        "count": delta["count"],
    }


class Collector:
    """Accepts relay connections and merges the fleet's telemetry.

    One daemon thread accepts connections; each connection gets a
    reader thread that parses JSONL frames and merges them under one
    lock.  Start with :meth:`start` (or as a context manager); bind to
    ``port=0`` to let the OS pick (see :attr:`port`).

    Args:
        host / port: listen address (port 0 = ephemeral).
        registry: registry merged into (default process-wide).  Give
            the collector a private registry when a :class:`RelayClient`
            runs in the same process.
        max_records: cap on stitched trace records (oldest evicted).
        max_events: cap on retained flightrec/producer events.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        registry: Optional[MetricsRegistry] = None,
        max_records: int = DEFAULT_MAX_RECORDS,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = _hooks.make_lock("obs.relay.collector")
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._readers: List[threading.Thread] = []
        self._conn_ids = itertools.count(1)
        self._event_ids = itertools.count(1)
        #: source id -> health/stats dict (see :meth:`stats`).
        self.sources: Dict[str, Dict[str, Any]] = {}
        #: source id -> most recent buildmon snapshot.
        self.buildmon: Dict[str, Dict[str, Any]] = {}
        self.gauge_sources: Dict[Tuple[str, Tuple[str, ...]], str] = {}
        self._records: deque = deque(maxlen=max_records)
        self._events: deque = deque(maxlen=max_events)
        self.malformed = 0
        self.merge_errors = 0
        self._frames_ctr = self.registry.counter(
            FRAMES_METRIC,
            "Telemetry frames received per relay source",
            labels=("source",),
        )
        self._dropped_ctr = self.registry.counter(
            DROPPED_METRIC,
            "Frames dropped at the source's bounded bus, per relay source",
            labels=("source",),
        )
        self._lag_gauge = self.registry.gauge(
            LAG_METRIC,
            "Max bus queue lag observed at the source, seconds",
            labels=("source",),
        )

    # ------------------------------------------------------------------
    def start(self) -> "Collector":
        """Start the accept thread; returns self for chaining."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop,
                name="telemetry-collector",
                daemon=True,
            )
            _hooks.fork(self._accept_thread.name)
            self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:  # listener closed
                return
            reader = threading.Thread(
                target=self._read_conn,
                args=(conn, next(self._conn_ids)),
                name=f"telemetry-reader-{len(self._readers) + 1}",
                daemon=True,
            )
            self._readers.append(reader)
            reader.start()

    def _read_conn(self, conn: socket.socket, conn_id: int) -> None:
        source: Optional[str] = None
        try:
            with conn, conn.makefile("r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        # Partial frame: a child died mid-write.  Count
                        # it, keep everything already merged.
                        with self._lock:
                            self.malformed += 1
                        continue
                    if doc.get("kind") == "header":
                        source = self._register_source(doc, conn_id)
                    elif source is None:
                        with self._lock:
                            self.malformed += 1
                    else:
                        self._ingest(source, doc)
        except OSError:  # pragma: no cover - abrupt disconnect
            pass
        finally:
            if source is not None:
                with self._lock:
                    self.sources[source]["connected"] = False

    def _register_source(self, header: Dict[str, Any], conn_id: int) -> str:
        if header.get("schema") != TELEMETRY_SCHEMA:
            with self._lock:
                self.malformed += 1
        pid = header.get("pid", f"conn{conn_id}")
        rank = header.get("rank")
        source = f"r{rank}/pid{pid}" if rank is not None else f"pid{pid}"
        with self._lock:
            self.sources[source] = {
                "pid": pid,
                "rank": rank,
                "frames": 0,
                "by_kind": {},
                "dropped": {},
                "max_lag_seconds": 0.0,
                "connected": True,
                "last_mono": time.monotonic(),
            }
        return source

    # ------------------------------------------------------------------
    def _ingest(self, source: str, frame: Dict[str, Any]) -> None:
        kind = frame.get("kind")
        payload = frame.get("payload")
        with self._lock:
            stats = self.sources[source]
            stats["frames"] += 1
            stats["by_kind"][kind] = stats["by_kind"].get(kind, 0) + 1
            stats["last_mono"] = time.monotonic()
            prev_dropped = sum(stats["dropped"].values())
            dropped = frame.get("dropped")
            if isinstance(dropped, dict):
                stats["dropped"] = dropped
            drop_delta = max(0, sum(stats["dropped"].values()) - prev_dropped)
            lag = frame.get("lag")
            if isinstance(lag, (int, float)):
                stats["max_lag_seconds"] = max(
                    stats["max_lag_seconds"], float(lag)
                )
            self._frames_ctr.labels(source=source).inc()
            if drop_delta:
                self._dropped_ctr.labels(source=source).inc(drop_delta)
            self._lag_gauge.labels(source=source).set(
                stats["max_lag_seconds"]
            )
            if kind == "metrics":
                self._merge_metrics(source, payload or [])
            elif kind == "spans":
                self._stitch_spans(stats, source, payload or [])
            elif kind == "flightrec":
                self._stitch_flightrec(stats, source, payload or [])
            elif kind == "buildmon":
                if isinstance(payload, dict):
                    self.buildmon[source] = payload
            elif kind == "events":
                if isinstance(payload, dict):
                    self._stitch_event(stats, source, frame, payload)
            else:
                self.malformed += 1

    def _merge_metrics(
        self, source: str, deltas: List[Dict[str, Any]]
    ) -> None:
        for entry in deltas:
            try:
                name = entry["name"]
                labels = entry.get("labels") or {}
                label_names = tuple(labels.keys())
                help_ = entry.get("help", "")
                kind = entry.get("kind")
                if kind == "counter":
                    metric = self.registry.counter(
                        name, help_, labels=label_names
                    )
                    series = metric.labels(**labels) if labels else metric
                    series.inc(entry["delta"])
                elif kind == "gauge":
                    metric = self.registry.gauge(
                        name, help_, labels=label_names
                    )
                    series = metric.labels(**labels) if labels else metric
                    series.set(entry["value"])
                    key = tuple(str(labels[k]) for k in label_names)
                    self.gauge_sources[(name, key)] = source
                elif kind == "histogram":
                    delta = entry["delta"]
                    metric = self.registry.histogram(
                        name,
                        help_,
                        buckets=tuple(delta["bounds"]),
                        labels=label_names,
                    )
                    target = metric.labels(**labels) if labels else metric
                    merge_histogram_snapshot(
                        target, _delta_to_snapshot(delta)
                    )
                else:
                    self.merge_errors += 1
            except (ObsError, KeyError, TypeError, ValueError):
                # A malformed or conflicting series must not take the
                # collector down; it is counted and skipped.
                self.merge_errors += 1

    def _stitch_spans(
        self,
        stats: Dict[str, Any],
        source: str,
        payload: List[Dict[str, Any]],
    ) -> None:
        for doc in payload:
            try:
                rec = TraceRecord.from_dict(doc)
            except (KeyError, TypeError):
                self.malformed += 1
                continue
            rec.attrs.setdefault("pid", stats["pid"])
            if stats["rank"] is not None:
                rec.attrs.setdefault("rank", stats["rank"])
            # Re-home the lane: both the thread name and any worker id
            # are namespaced so two processes' "worker 0" stay separate
            # lanes in the stitched trace.
            if "worker" in rec.attrs:
                rec.attrs["worker"] = f"{source}:{rec.attrs['worker']}"
            rec.thread = f"{source}:{rec.thread}"
            self._records.append(rec)

    def _stitch_flightrec(
        self,
        stats: Dict[str, Any],
        source: str,
        payload: List[Dict[str, Any]],
    ) -> None:
        for event in payload:
            if not isinstance(event, dict) or "kind" not in event:
                self.malformed += 1
                continue
            tagged = dict(event)
            tagged["source"] = source
            self._events.append(tagged)
            attrs = dict(event.get("attrs") or {})
            attrs["pid"] = stats["pid"]
            if stats["rank"] is not None:
                attrs["rank"] = stats["rank"]
            self._records.append(
                TraceRecord(
                    name=str(event["kind"]),
                    kind="event",
                    ts=float(event.get("mono", 0.0)),
                    dur=None,
                    span_id=next(self._event_ids),
                    parent_id=None,
                    thread=f"{source}:{event.get('thread', 'main')}",
                    attrs=attrs,
                )
            )

    def _stitch_event(
        self,
        stats: Dict[str, Any],
        source: str,
        frame: Dict[str, Any],
        payload: Dict[str, Any],
    ) -> None:
        tagged = dict(payload)
        tagged["source"] = source
        tagged["ts"] = frame.get("ts")
        tagged["mono"] = frame.get("mono")
        self._events.append(tagged)
        attrs = dict(payload.get("attrs") or {})
        attrs["pid"] = stats["pid"]
        if stats["rank"] is not None:
            attrs["rank"] = stats["rank"]
        if "worker" in attrs:
            attrs["worker"] = f"{source}:{attrs['worker']}"
        self._records.append(
            TraceRecord(
                name=str(payload.get("name", "event")),
                kind="event",
                ts=float(frame.get("mono", 0.0)),
                dur=None,
                span_id=next(self._event_ids),
                parent_id=None,
                thread=f"{source}:{payload.get('thread', 'main')}",
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------
    def stitched_records(self) -> List[TraceRecord]:
        """Merged spans + events from every source, arrival order."""
        with self._lock:
            return list(self._records)

    def events(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Retained flightrec/producer events, oldest first."""
        with self._lock:
            out = list(self._events)
        if last is not None and last >= 0:
            out = out[-last:] if last else []
        return out

    def write_chrome_trace(self, path_or_file: Any) -> int:
        """One Chrome trace of the whole fleet; returns event count."""
        from repro.obs.timeline import write_chrome_trace

        return write_chrome_trace(path_or_file, self.stitched_records())

    def stats(self) -> Dict[str, Any]:
        """JSON-safe health summary (feeds ``parapll obs`` and the dash)."""
        with self._lock:
            sources = {
                name: {
                    "pid": s["pid"],
                    "rank": s["rank"],
                    "frames": s["frames"],
                    "by_kind": dict(s["by_kind"]),
                    "dropped": sum(s["dropped"].values()),
                    "max_lag_seconds": s["max_lag_seconds"],
                    "connected": s["connected"],
                }
                for name, s in sorted(self.sources.items())
            }
            return {
                "address": f"{self.host}:{self.port}",
                "sources": sources,
                "frames": sum(s["frames"] for s in sources.values()),
                "dropped": sum(s["dropped"] for s in sources.values()),
                "records": len(self._records),
                "events": len(self._events),
                "malformed": self.malformed,
                "merge_errors": self.merge_errors,
            }

    def gauge_attribution(self) -> Dict[str, str]:
        """``metric{labels}`` -> source that last wrote it (LWW tag)."""
        with self._lock:
            out = {}
            for (name, key), source in sorted(self.gauge_sources.items()):
                label = name if not key else f"{name}{{{','.join(key)}}}"
                out[label] = source
            return out

    def close(self) -> None:
        """Stop accepting, close the listener, join reader threads."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best effort
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            _hooks.join(self._accept_thread.name)
            self._accept_thread = None
        for reader in self._readers:
            reader.join(timeout=1.0)

    def __enter__(self) -> "Collector":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# Fleet dashboard frame
# ----------------------------------------------------------------------
def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds:.0f}s"


def render_fleet(collector: Collector) -> str:
    """One ``parapll dash`` text frame of the fleet's state.

    Per source: connection state, frames/drops/queue lag from the
    relay, and — when the source runs a monitored build — progress,
    roots/sec and prune ratio from its latest buildmon snapshot.  SLO
    burn rates come from the merged registry (gauge
    ``parapll_slo_burn_rate``), i.e. serve-side sources report their
    burn and the dash shows the last write per target.
    """
    stats = collector.stats()
    lines = [
        "parapll fleet",
        "=============",
        f"collector  {stats['address']}    sources "
        f"{len(stats['sources'])}    frames {stats['frames']}    "
        f"drops {stats['dropped']}    malformed {stats['malformed']}",
    ]
    if not stats["sources"]:
        lines.append("(no sources connected)")
    else:
        lines.append(
            f"{'source':<16} {'state':<6} {'frames':>6} {'drops':>6} "
            f"{'lag(s)':>8}  build"
        )
        for name, src in stats["sources"].items():
            state = "live" if src["connected"] else "gone"
            mon = collector.buildmon.get(name)
            if mon:
                total = mon.get("total_roots")
                done = mon.get("roots_done", 0)
                progress = f"{done}/{total}" if total else f"{done}"
                build = (
                    f"{progress} roots  "
                    f"{mon.get('roots_per_second', 0.0):.1f}/s  "
                    f"prune {mon.get('prune_ratio', 0.0):.1%}  "
                    f"eta {_fmt_eta(mon.get('eta_seconds'))}"
                )
                if mon.get("final"):
                    build += "  done"
            else:
                build = "-"
            lines.append(
                f"{name:<16} {state:<6} {src['frames']:>6} "
                f"{src['dropped']:>6} {src['max_lag_seconds']:>8.3f}  "
                f"{build}"
            )
    burn = collector.registry.get("parapll_slo_burn_rate")
    if burn is not None:
        parts = []
        for key, series in burn.series_items():
            target = key[0] if key else "default"
            parts.append(f"{target} {series.value():.2f}")  # type: ignore[attr-defined]
        if parts:
            lines.append("slo burn   " + " | ".join(parts))
    drops = stats["dropped"]
    if drops:
        lines.append(f"WARNING    {drops} frame(s) dropped at source buses")
    return "\n".join(lines)
