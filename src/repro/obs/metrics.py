"""A thread-safe metrics registry: counters, gauges, histograms.

Zero-dependency (stdlib only) and deliberately small: three metric
kinds, optional label dimensions, and a registry that hands out
idempotent handles so modules can declare their instruments at import
time.  The value surface is designed for two consumers:

* :func:`MetricsRegistry.snapshot` — a JSON-safe structure for the
  ``{"op": "metrics"}`` service endpoint and benchmark result files;
* :func:`repro.obs.export.prometheus_text` — Prometheus text
  exposition.

Concurrency: every labeled series owns one ``threading.Lock`` taken
only for the few arithmetic operations of an update, so concurrent
worker threads (see :mod:`repro.parallel.threads`) can bump shared
counters without losing increments.  Reads (``value()`` / snapshots)
take the same lock and therefore see consistent values.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "ObsError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "histogram_quantile",
    "histogram_bucket_counts",
    "merge_histogram_snapshot",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
]


class ObsError(ReproError):
    """Raised for invalid use of the observability layer."""


#: Default histogram buckets for request latencies, seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_INF = float("inf")

#: The quantiles summaries report by default (p50 / p95 / p99).
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def histogram_quantile(snapshot: Dict[str, object], q: float) -> float:
    """Estimate the *q*-quantile from a histogram snapshot.

    Prometheus-style linear interpolation inside the bucket containing
    the target rank, assuming observations are uniformly spread within
    each bucket (lower edge 0 for the first bucket).  A rank landing in
    the ``+Inf`` bucket is clamped to the highest finite bound — the
    estimate cannot exceed what the buckets can resolve.

    Args:
        snapshot: a histogram ``value()`` dict (``buckets``/``count``).
        q: quantile in ``[0, 1]``.

    Returns:
        The estimated quantile, or ``nan`` for an empty histogram.

    Raises:
        ObsError: for a quantile outside ``[0, 1]``.
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1], got {q}")
    count = int(snapshot["count"])  # type: ignore[arg-type]
    if count == 0:
        return float("nan")
    rank = q * count
    prev_bound = 0.0
    prev_cum = 0
    for bound, cumulative in snapshot["buckets"]:  # type: ignore[union-attr]
        cum = int(cumulative)
        if cum >= rank:
            if bound == "+Inf":
                return prev_bound
            upper = float(bound)
            if cum == prev_cum:
                return upper
            frac = (rank - prev_cum) / (cum - prev_cum)
            return prev_bound + (upper - prev_bound) * frac
        if bound != "+Inf":
            prev_bound = float(bound)
        prev_cum = cum
    return prev_bound


def histogram_bucket_counts(snapshot: Dict[str, object]) -> List[int]:
    """Per-bucket (non-cumulative) counts of a histogram snapshot.

    The inverse of the cumulative ``buckets`` encoding: element ``i``
    is the number of observations that landed in bucket ``i`` (the
    last element is the ``+Inf`` bucket).
    """
    out: List[int] = []
    prev = 0
    for _bound, cumulative in snapshot["buckets"]:  # type: ignore[union-attr]
        cum = int(cumulative)
        out.append(cum - prev)
        prev = cum
    return out


def merge_histogram_snapshot(
    target: "Histogram" | "_HistogramSeries", snapshot: Dict[str, object]
) -> None:
    """Merge a histogram snapshot (or delta) into *target*, in place.

    This is the collector's histogram-merge primitive: adding the
    snapshot's per-bucket counts, sum and count to the target series is
    exactly equivalent to having observed the snapshot's underlying
    stream on the target directly — counts, sums and bucket contents
    (including ``+Inf``) are exact, and quantile estimates agree to
    bucket resolution by construction.  The property tests in
    ``tests/test_telemetry.py`` pin this equivalence.

    Args:
        target: a :class:`Histogram` (its unlabeled series) or one
            labeled ``_HistogramSeries`` obtained via ``.labels()``.
        snapshot: a ``value()`` dict — cumulative ``buckets`` with the
            trailing ``"+Inf"`` bound, plus ``sum`` and ``count``.

    Raises:
        ObsError: when the bucket bounds disagree — merging across
            different bucket layouts silently mis-bins, so it is
            refused outright.
    """
    series = target._default() if isinstance(target, Histogram) else target
    bounds = tuple(
        float(b)
        for b, _c in snapshot["buckets"]  # type: ignore[union-attr]
        if b != "+Inf"
    )
    if bounds != series._bounds:
        raise ObsError(
            f"cannot merge histogram snapshots with different buckets: "
            f"{bounds} vs {series._bounds}"
        )
    counts = histogram_bucket_counts(snapshot)
    with series._lock:
        for i, c in enumerate(counts):
            series._counts[i] += c
        series._sum += float(snapshot["sum"])  # type: ignore[arg-type]
        series._count += int(snapshot["count"])  # type: ignore[arg-type]


class _Series:
    """One labeled time series of a counter or gauge."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (counters require it non-negative; see callers)."""
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class _CounterSeries(_Series):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError("counters can only increase")
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:  # pragma: no cover - guard
        raise ObsError("counters cannot be set; use inc()")


class _GaugeSeries(_Series):
    __slots__ = ()

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class _HistogramSeries:
    """One labeled series of a fixed-bucket histogram.

    Bucket semantics follow Prometheus: ``bounds[i]`` is the *inclusive*
    upper edge of bucket ``i`` (``value <= bound``), with an implicit
    ``+Inf`` bucket at the end.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def value(self) -> Dict[str, object]:
        """Snapshot: cumulative bucket counts, sum and count."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            s = self._sum
        cumulative: List[List[object]] = []
        running = 0
        # The +Inf bound is emitted as the string "+Inf" to stay strictly
        # JSON-safe (JSON has no infinity literal).
        bounds: List[object] = list(self._bounds) + ["+Inf"]
        for bound, c in zip(bounds, counts):
            running += c
            cumulative.append([bound, running])
        return {"buckets": cumulative, "sum": s, "count": total}

    def quantile(self, q: float) -> float:
        """Streaming *q*-quantile estimate (bucket interpolation)."""
        return histogram_quantile(self.value(), q)

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[float, float]:
        """Several quantile estimates from one snapshot."""
        snap = self.value()
        return {q: histogram_quantile(snap, q) for q in qs}

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._sum = 0.0
            self._count = 0


class _Metric:
    """Base: a named metric with zero or more label dimensions."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> None:
        _validate_name(name)
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            self._series[()] = self._new_series()

    def _new_series(self):
        raise NotImplementedError

    def labels(self, **labels: object):
        """The series for one label combination (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ObsError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[k]) for k in self.label_names)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._new_series())
        return series

    def _default(self):
        if self.label_names:
            raise ObsError(
                f"{self.name} has labels {self.label_names}; use .labels()"
            )
        return self._series[()]

    def series_items(self) -> List[Tuple[Tuple[str, ...], object]]:
        """Stable (label values, series) pairs for exporters."""
        with self._lock:
            return sorted(self._series.items())

    def reset(self) -> None:
        """Zero every series in place (handles stay valid)."""
        with self._lock:
            series = list(self._series.values())
        for s in series:
            s._reset()  # type: ignore[attr-defined]

    def snapshot_series(self) -> List[Dict[str, object]]:
        out = []
        for key, series in self.series_items():
            out.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "value": series.value(),  # type: ignore[attr-defined]
                }
            )
        return out


class Counter(_Metric):
    """A monotonically increasing value (events, totals, seconds spent)."""

    kind = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the (unlabeled) series."""
        self._default().inc(amount)

    def value(self) -> float:
        """Current value of the (unlabeled) series."""
        return self._default().value()


class Gauge(_Metric):
    """A value that can go up and down (sizes, phase timings)."""

    kind = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def value(self) -> float:
        return self._default().value()


class Histogram(_Metric):
    """A fixed-bucket distribution (latencies, delta sizes).

    Args:
        name: metric name.
        help: one-line description.
        buckets: strictly increasing inclusive upper bounds; an implicit
            ``+Inf`` bucket is always appended.
        labels: label dimension names.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Sequence[str] = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError(f"{name}: histogram needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObsError(f"{name}: buckets must be strictly increasing")
        if bounds and bounds[-1] == _INF:
            bounds = bounds[:-1]
        self.buckets = bounds
        super().__init__(name, help, labels)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        """Record one observation on the (unlabeled) series."""
        self._default().observe(value)

    def value(self) -> Dict[str, object]:
        """Snapshot of the (unlabeled) series."""
        return self._default().value()

    def quantile(self, q: float) -> float:
        """Streaming *q*-quantile of the (unlabeled) series."""
        return self._default().quantile(q)

    def quantiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[float, float]:
        """Several quantiles of the (unlabeled) series."""
        return self._default().quantiles(qs)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ObsError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ObsError(f"invalid metric name {name!r}")


class MetricsRegistry:
    """A named collection of metrics.

    Registration is idempotent: asking twice for the same name returns
    the same object, so modules can declare instruments at import time
    and tests can re-import freely.  Re-registering a name with a
    different kind, label set or buckets is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    def _register(self, cls, name: str, help: str, labels, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(
                    labels
                ):
                    raise ObsError(
                        f"metric {name!r} already registered with a "
                        f"different kind or labels"
                    )
                if kwargs.get("buckets") is not None and existing.buckets != tuple(
                    float(b) for b in kwargs["buckets"]
                ):
                    raise ObsError(
                        f"histogram {name!r} already registered with "
                        f"different buckets"
                    )
                return existing
            metric = (
                cls(name, help, labels=labels, **{
                    k: v for k, v in kwargs.items() if v is not None
                })
                if cls is Histogram
                else cls(name, help, labels=labels)
            )
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter."""
        return self._register(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge."""
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        labels: Sequence[str] = (),
    ) -> Histogram:
        """Register (or fetch) a histogram."""
        return self._register(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under *name*, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> List[_Metric]:
        """All metrics, sorted by name (for exporters)."""
        with self._lock:
            return [self._metrics[n] for n in sorted(self._metrics)]

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-safe dump of every metric and series.

        Counter/gauge series carry a float ``value``; histogram series
        carry ``{"buckets": [[upper_bound, cumulative_count], ...],
        "sum": ..., "count": ...}``.
        """
        return [
            {
                "name": m.name,
                "kind": m.kind,
                "help": m.help,
                "series": m.snapshot_series(),
            }
            for m in self.collect()
        ]

    def reset(self) -> None:
        """Zero every series of every metric (registrations survive)."""
        for metric in self.collect():
            metric.reset()


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used by the instrumentation."""
    return _default_registry
