"""Runtime switches for the observability layer.

Metrics (counter bumps) are **default-on**: they cost a handful of lock
acquisitions per root search / per request, which profiling shows is
well under the acceptance budget (<10 % on ``build_serial``).  Tracing
is **opt-in** because span records allocate and the ring buffer retains
references; enable it with::

    from repro import obs
    obs.configure(tracing=True, trace_capacity=65536)

Hot call sites read the module-level ``METRICS`` / ``TRACING`` booleans
directly (one attribute lookup) instead of going through a function, so
a disabled layer costs a single dict hit per instrumented operation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig", "configure", "current_config"]

#: Fast-path flags, mirrored from the active :class:`ObsConfig`.
METRICS: bool = True
TRACING: bool = False
TRACE_CAPACITY: int = 4096


@dataclass(frozen=True)
class ObsConfig:
    """A snapshot of the observability configuration.

    Attributes:
        metrics: whether counter/gauge/histogram updates are recorded.
        tracing: whether spans and events are captured.
        trace_capacity: ring-buffer size of the global tracer (oldest
            records are dropped once full).
    """

    metrics: bool = True
    tracing: bool = False
    trace_capacity: int = 4096


def configure(
    metrics: bool | None = None,
    tracing: bool | None = None,
    trace_capacity: int | None = None,
) -> ObsConfig:
    """Update the global observability configuration.

    Only the arguments passed (non-``None``) are changed.  Returns the
    resulting configuration snapshot.

    Raises:
        ValueError: for a non-positive trace capacity.
    """
    global METRICS, TRACING, TRACE_CAPACITY
    if metrics is not None:
        METRICS = bool(metrics)
    if tracing is not None:
        TRACING = bool(tracing)
    if trace_capacity is not None:
        if trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        TRACE_CAPACITY = int(trace_capacity)
    return current_config()


def current_config() -> ObsConfig:
    """The active configuration as an immutable snapshot."""
    return ObsConfig(
        metrics=METRICS, tracing=TRACING, trace_capacity=TRACE_CAPACITY
    )
