"""Runtime switches for the observability layer.

Metrics (counter bumps) are **default-on**: they cost a handful of lock
acquisitions per root search / per request, which profiling shows is
well under the acceptance budget (<10 % on ``build_serial``).  Tracing
is **opt-in** because span records allocate and the ring buffer retains
references; enable it with::

    from repro import obs
    obs.configure(tracing=True, trace_capacity=65536)

Hot call sites read the module-level ``METRICS`` / ``TRACING`` booleans
directly (one attribute lookup) instead of going through a function, so
a disabled layer costs a single dict hit per instrumented operation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ObsConfig", "configure", "current_config"]

#: Fast-path flags, mirrored from the active :class:`ObsConfig`.
METRICS: bool = True
TRACING: bool = False
TRACE_CAPACITY: int = 4096
QLOG_SAMPLE: float = 1.0


@dataclass(frozen=True)
class ObsConfig:
    """A snapshot of the observability configuration.

    Attributes:
        metrics: whether counter/gauge/histogram updates are recorded.
        tracing: whether spans and events are captured.
        trace_capacity: ring-buffer size of the global tracer (oldest
            records are dropped once full).
        qlog_sample: fraction of served queries the query-log recorder
            captures when one is installed (1.0 = every query, 0.0 =
            none; see :mod:`repro.obs.qlog`).
    """

    metrics: bool = True
    tracing: bool = False
    trace_capacity: int = 4096
    qlog_sample: float = 1.0


def configure(
    metrics: bool | None = None,
    tracing: bool | None = None,
    trace_capacity: int | None = None,
    qlog_sample: float | None = None,
) -> ObsConfig:
    """Update the global observability configuration.

    Only the arguments passed (non-``None``) are changed.  Returns the
    resulting configuration snapshot.

    Raises:
        ValueError: for a non-positive trace capacity or a sampling
            fraction outside ``[0, 1]``.
    """
    global METRICS, TRACING, TRACE_CAPACITY, QLOG_SAMPLE
    if metrics is not None:
        METRICS = bool(metrics)
    if tracing is not None:
        TRACING = bool(tracing)
    if trace_capacity is not None:
        if trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        TRACE_CAPACITY = int(trace_capacity)
    if qlog_sample is not None:
        if not 0.0 <= qlog_sample <= 1.0:
            raise ValueError("qlog_sample must be in [0, 1]")
        QLOG_SAMPLE = float(qlog_sample)
    return current_config()


def current_config() -> ObsConfig:
    """The active configuration as an immutable snapshot."""
    return ObsConfig(
        metrics=METRICS,
        tracing=TRACING,
        trace_capacity=TRACE_CAPACITY,
        qlog_sample=QLOG_SAMPLE,
    )
