"""Compressed-sparse-row storage for undirected weighted graphs.

:class:`CSRGraph` is the single graph representation used throughout the
library.  It is immutable after construction, stores the adjacency
structure in three numpy arrays (``indptr``, ``indices``, ``weights``)
and — because the pruned-Dijkstra inner loop is pure Python — caches a
list-of-tuples adjacency view that avoids per-visit numpy slicing
overhead (see the profiling discussion in the HPC guides: scalar numpy
indexing in a tight loop is far slower than native lists).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """An immutable undirected weighted graph in CSR form.

    Vertices are dense integers ``0..n-1``.  Each undirected edge
    ``{u, v}`` is stored twice (once per direction); ``num_edges``
    reports the *undirected* count ``len(indices) // 2``.

    Args:
        indptr: ``int64`` array of length ``n + 1``; neighbours of vertex
            ``u`` live in ``indices[indptr[u]:indptr[u + 1]]``.
        indices: ``int32`` array of neighbour vertex ids, sorted
            ascending within each vertex's slice.
        weights: ``float64`` array parallel to ``indices`` with strictly
            positive finite edge weights.
        name: optional human-readable dataset name.

    Raises:
        GraphError: if the arrays are inconsistent (wrong lengths,
            unsorted neighbour slices, non-positive weights, self loops,
            or asymmetric adjacency).
    """

    __slots__ = ("indptr", "indices", "weights", "name", "_adj", "_degrees")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if indptr.ndim != 1 or indices.ndim != 1 or weights.ndim != 1:
            raise GraphError("indptr, indices and weights must be 1-D arrays")
        if len(indptr) == 0:
            raise GraphError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0 or indptr[-1] != len(indices):
            raise GraphError(
                "indptr must start at 0 and end at len(indices) "
                f"(got {indptr[0]}..{indptr[-1]} for {len(indices)} arcs)"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if len(indices) != len(weights):
            raise GraphError("indices and weights must have equal length")
        if len(indices) % 2 != 0:
            raise GraphError("undirected graph must store an even number of arcs")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("neighbour index out of range")
        if len(weights) and (not np.all(np.isfinite(weights)) or weights.min() <= 0):
            raise GraphError("edge weights must be positive and finite")

        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.name = name
        self._adj: Optional[List[List[Tuple[int, float]]]] = None
        self._degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges ``m``."""
        return len(self.indices) // 2

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (``2 m``)."""
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex degree array (``int64``, cached)."""
        if self._degrees is None:
            self._degrees = np.diff(self.indptr)
        return self._degrees

    def degree(self, u: int) -> int:
        """Degree of vertex *u*."""
        self._check_vertex(u)
        return int(self.indptr[u + 1] - self.indptr[u])

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour ids of *u* as a numpy view (sorted ascending)."""
        self._check_vertex(u)
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def neighbor_weights(self, u: int) -> np.ndarray:
        """Edge weights parallel to :meth:`neighbors`."""
        self._check_vertex(u)
        return self.weights[self.indptr[u] : self.indptr[u + 1]]

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate undirected edges once each as ``(u, v, w)`` with ``u < v``."""
        indptr, indices, weights = self.indptr, self.indices, self.weights
        for u in range(self.num_vertices):
            for k in range(indptr[u], indptr[u + 1]):
                v = int(indices[k])
                if u < v:
                    yield u, v, float(weights[k])

    def adjacency_lists(self) -> List[List[Tuple[int, float]]]:
        """List-of-``(neighbour, weight)`` adjacency, cached.

        This is the representation used by the pure-Python shortest-path
        inner loops: iterating a native list of tuples is several times
        faster than repeatedly slicing and scalar-indexing numpy arrays.
        The cache is built once (O(m)) and shared by all algorithms.
        """
        if self._adj is None:
            indptr = self.indptr
            nbr = self.indices.tolist()
            wts = self.weights.tolist()
            adj: List[List[Tuple[int, float]]] = []
            for u in range(self.num_vertices):
                lo, hi = int(indptr[u]), int(indptr[u + 1])
                adj.append(list(zip(nbr[lo:hi], wts[lo:hi])))
            self._adj = adj
        return self._adj

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``.

        Raises:
            GraphError: if the edge does not exist.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        k = lo + int(np.searchsorted(self.indices[lo:hi], v))
        if k < hi and self.indices[k] == v:
            return float(self.weights[k])
        raise GraphError(f"no edge between {u} and {v}")

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge ``{u, v}`` exists."""
        try:
            self.edge_weight(u, v)
            return True
        except GraphError:
            return False

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        """Sum of undirected edge weights."""
        return float(self.weights.sum()) / 2.0

    def is_connected(self) -> bool:
        """Whether the graph has a single connected component.

        The empty graph is considered connected.
        """
        n = self.num_vertices
        if n <= 1:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        indptr, indices = self.indptr, self.indices
        while stack:
            u = stack.pop()
            for k in range(indptr[u], indptr[u + 1]):
                v = int(indices[k])
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == n

    def with_name(self, name: str) -> "CSRGraph":
        """A shallow copy of this graph under a different name."""
        g = CSRGraph(self.indptr, self.indices, self.weights, name=name)
        g._adj = self._adj
        g._degrees = self._degrees
        return g

    def reweighted(self, weights: Sequence[float]) -> "CSRGraph":
        """A copy of this graph with new per-arc weights.

        Args:
            weights: array of length ``num_arcs``; both directions of an
                undirected edge must carry the same value.
        """
        w = np.asarray(weights, dtype=np.float64)
        if len(w) != self.num_arcs:
            raise GraphError("weights length must equal num_arcs")
        return CSRGraph(self.indptr, self.indices, w, name=self.name)

    def unit_weighted(self) -> "CSRGraph":
        """A copy of this graph with all weights set to 1 (for BFS tests)."""
        return self.reweighted(np.ones(self.num_arcs))

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self.num_vertices:
            raise GraphError(
                f"vertex {u} out of range [0, {self.num_vertices})"
            )

    # ------------------------------------------------------------------
    # Equality / hashing: value semantics on the structure.
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable caches inside
