"""Graph substrate: CSR storage, construction, ordering, and utilities.

The whole library works on :class:`~repro.graph.csr.CSRGraph`, an
immutable undirected weighted graph in compressed-sparse-row form.
Use :class:`~repro.graph.builder.GraphBuilder` (or the generators in
:mod:`repro.generators`) to construct one.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.ops import (
    connected_components,
    degree_histogram,
    induced_subgraph,
    largest_connected_component,
    relabel,
)
from repro.graph.order import (
    by_approx_betweenness,
    by_degree,
    by_random,
    by_weighted_degree,
    ordering_rank,
    validate_ordering,
)
from repro.graph.validate import check_graph

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "connected_components",
    "degree_histogram",
    "induced_subgraph",
    "largest_connected_component",
    "relabel",
    "by_degree",
    "by_weighted_degree",
    "by_approx_betweenness",
    "by_random",
    "ordering_rank",
    "validate_ordering",
    "check_graph",
]
