"""Incremental construction of :class:`~repro.graph.csr.CSRGraph`.

:class:`GraphBuilder` accepts edges one at a time (or in bulk), tolerates
duplicates, self loops and either edge orientation, and produces a clean
undirected CSR graph: symmetric, deduplicated, self-loop-free, with
neighbour lists sorted ascending.

This is the funnel through which every file loader and every synthetic
generator produces graphs, so all cleaning policy lives here in one place.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["GraphBuilder"]

#: Duplicate-edge resolution policies.
_DUP_POLICIES = ("min", "max", "first", "last", "error")


class GraphBuilder:
    """Accumulates weighted undirected edges and emits a CSR graph.

    Args:
        num_vertices: number of vertices if known up front; otherwise the
            builder grows to ``max(endpoint) + 1``.
        on_duplicate: what to do when the same undirected edge is added
            more than once: keep the ``"min"`` (default), ``"max"``,
            ``"first"`` or ``"last"`` weight, or raise (``"error"``).
        drop_self_loops: silently discard ``u == v`` edges (default);
            if ``False``, adding a self loop raises :class:`GraphError`.

    Example:
        >>> b = GraphBuilder()
        >>> b.add_edge(0, 1, 2.5)
        >>> b.add_edge(1, 2, 1.0)
        >>> g = b.build(name="triangle-path")
        >>> g.num_vertices, g.num_edges
        (3, 2)
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        on_duplicate: str = "min",
        drop_self_loops: bool = True,
    ) -> None:
        if on_duplicate not in _DUP_POLICIES:
            raise GraphError(
                f"on_duplicate must be one of {_DUP_POLICIES}, got {on_duplicate!r}"
            )
        if num_vertices is not None and num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._n = num_vertices or 0
        self._explicit_n = num_vertices is not None
        self._on_duplicate = on_duplicate
        self._drop_self_loops = drop_self_loops
        # Canonical key (min(u,v), max(u,v)) -> weight.
        self._edges: dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add one undirected edge ``{u, v}`` with the given weight.

        Raises:
            GraphError: on negative endpoints, non-positive or non-finite
                weights, out-of-range endpoints (when ``num_vertices`` was
                given), forbidden self loops, or duplicate edges under the
                ``"error"`` policy.
        """
        u = int(u)
        v = int(v)
        weight = float(weight)
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        if self._explicit_n and (u >= self._n or v >= self._n):
            raise GraphError(
                f"edge ({u}, {v}) out of range for n={self._n}"
            )
        if not (weight > 0) or weight != weight or weight == float("inf"):
            raise GraphError(f"edge weight must be positive finite, got {weight}")
        if u == v:
            if self._drop_self_loops:
                if not self._explicit_n:
                    self._n = max(self._n, u + 1)
                return
            raise GraphError(f"self loop on vertex {u}")
        if not self._explicit_n:
            self._n = max(self._n, u + 1, v + 1)

        key = (u, v) if u < v else (v, u)
        old = self._edges.get(key)
        if old is None:
            self._edges[key] = weight
        elif self._on_duplicate == "min":
            self._edges[key] = min(old, weight)
        elif self._on_duplicate == "max":
            self._edges[key] = max(old, weight)
        elif self._on_duplicate == "last":
            self._edges[key] = weight
        elif self._on_duplicate == "first":
            pass
        else:  # "error"
            raise GraphError(f"duplicate edge {key}")

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Add many ``(u, v, weight)`` triples."""
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_unweighted_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add many ``(u, v)`` pairs with weight 1."""
        for u, v in edges:
            self.add_edge(u, v, 1.0)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Current vertex count the built graph will have."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Current number of distinct undirected edges."""
        return len(self._edges)

    def __len__(self) -> int:
        return self.num_edges

    # ------------------------------------------------------------------
    def build(self, name: str = "graph") -> CSRGraph:
        """Produce the CSR graph.  The builder stays usable afterwards."""
        n = self._n
        m = len(self._edges)
        if m == 0:
            return CSRGraph(
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.float64),
                name=name,
            )
        # Materialise both arc directions, then counting-sort by source.
        us = np.empty(2 * m, dtype=np.int64)
        vs = np.empty(2 * m, dtype=np.int32)
        ws = np.empty(2 * m, dtype=np.float64)
        for k, ((u, v), w) in enumerate(self._edges.items()):
            us[2 * k] = u
            vs[2 * k] = v
            us[2 * k + 1] = v
            vs[2 * k + 1] = u
            ws[2 * k] = w
            ws[2 * k + 1] = w
        # Sort by (source, target) so neighbour slices come out ascending.
        order = np.lexsort((vs, us))
        us, vs, ws = us[order], vs[order], ws[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, us + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRGraph(indptr, vs, ws, name=name)
