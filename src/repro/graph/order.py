"""Vertex orderings for the indexing stage.

PLL's pruning power depends on the order in which roots are indexed
(Section 2.2 / Proposition 2 of the paper): vertices through which many
shortest paths pass should come first.  The paper's ParaPLL uses the
classic *degree* ordering; we additionally provide a weighted-degree
ordering, a sampled approximation of the pruning potential ψ(v)
(the number of shortest paths through v, estimated by counting
appearances on sampled shortest-path trees), and a random ordering for
ablation baselines.

An *ordering* is a sequence ``order`` of all vertex ids, most important
first: ``order[0]`` is indexed first and becomes the lowest-rank hub.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

import numpy as np

from repro.errors import OrderingError
from repro.graph.csr import CSRGraph

__all__ = [
    "by_degree",
    "by_weighted_degree",
    "by_approx_betweenness",
    "by_random",
    "validate_ordering",
    "ordering_rank",
]


def by_degree(graph: CSRGraph) -> np.ndarray:
    """Vertices sorted by descending degree (the paper's ordering).

    Ties break toward the lower vertex id, making the ordering
    deterministic.
    """
    degs = graph.degrees
    # argsort is ascending and stable with kind="stable"; sort by
    # (-degree, id) via sorting ids on negated degree.
    return np.argsort(-degs, kind="stable").astype(np.int64)


def by_weighted_degree(graph: CSRGraph) -> np.ndarray:
    """Vertices sorted by descending *inverse-weight* degree.

    In a weighted graph a vertex with many light edges is a better hub
    than one with few heavy edges; we score each vertex by
    ``sum(1 / w)`` over incident edges.  Ties break toward lower id.
    """
    n = graph.num_vertices
    score = np.zeros(n, dtype=np.float64)
    np.add.at(
        score,
        np.repeat(np.arange(n), np.diff(graph.indptr)),
        1.0 / graph.weights,
    )
    return np.argsort(-score, kind="stable").astype(np.int64)


def by_random(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """A uniformly random ordering (ablation baseline)."""
    rng = np.random.default_rng(seed)
    order = np.arange(graph.num_vertices, dtype=np.int64)
    rng.shuffle(order)
    return order


def by_approx_betweenness(
    graph: CSRGraph, samples: int = 32, seed: int = 0
) -> np.ndarray:
    """Approximate the paper's ψ(v) by sampled shortest-path-tree counting.

    ψ(v) is the number of shortest paths through *v* [Potamias et al.].
    Exact betweenness is O(nm); instead we run Dijkstra from ``samples``
    random roots and credit every vertex with the size of its subtree in
    each shortest-path tree (the number of sampled shortest paths that
    pass through it).  Vertices are returned by descending total credit,
    degree-then-id as tie-breaks.

    Args:
        graph: the graph to order.
        samples: number of Dijkstra roots to sample (without replacement
            when possible).
        seed: RNG seed for root sampling.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(seed)
    roots = rng.choice(n, size=min(samples, n), replace=False)
    credit = np.zeros(n, dtype=np.float64)
    adj = graph.adjacency_lists()
    inf = float("inf")
    for s in roots:
        s = int(s)
        dist = [inf] * n
        parent = [-1] * n
        settled_order: List[int] = []
        dist[s] = 0.0
        pq = [(0.0, s)]
        while pq:
            d, u = heapq.heappop(pq)
            if d > dist[u]:
                continue
            settled_order.append(u)
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(pq, (nd, v))
        # Subtree sizes: process settled vertices farthest-first.
        subtree = np.ones(n, dtype=np.float64)
        for u in reversed(settled_order):
            p = parent[u]
            if p >= 0:
                subtree[p] += subtree[u]
        for u in settled_order:
            credit[u] += subtree[u]
    # Deterministic tie-breaking: credit desc, degree desc, id asc.
    degs = graph.degrees
    keys = np.lexsort((np.arange(n), -degs, -credit))
    return keys.astype(np.int64)


def validate_ordering(graph: CSRGraph, order: Sequence[int]) -> np.ndarray:
    """Check that *order* is a permutation of the graph's vertices.

    Returns:
        the ordering as an ``int64`` numpy array.

    Raises:
        OrderingError: if the ordering is not a valid permutation.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if len(order) != n:
        raise OrderingError(
            f"ordering has {len(order)} entries for a graph with {n} vertices"
        )
    if n and not np.array_equal(np.sort(order), np.arange(n)):
        raise OrderingError("ordering is not a permutation of 0..n-1")
    return order


def ordering_rank(order: Sequence[int]) -> np.ndarray:
    """Invert an ordering: ``rank[v]`` is the position of vertex *v*.

    Rank 0 is the most important vertex (indexed first).
    """
    order = np.asarray(order, dtype=np.int64)
    rank = np.empty_like(order)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank
