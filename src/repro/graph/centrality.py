"""Exact betweenness centrality (Brandes' algorithm), weighted.

The paper's pruning-efficiency measure ψ(v) is "the number of shortest
paths that pass through v" [Potamias et al.], i.e. (unnormalised)
betweenness.  :mod:`repro.graph.order` provides a sampled
approximation for ordering large graphs; this module implements the
exact O(nm + n² log n) Brandes algorithm, used by the ordering ablation
and by the Proposition-2 efficiency-loss analysis, where exact ψ values
are needed.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import INF

__all__ = ["betweenness_centrality", "by_exact_betweenness", "psi_values"]


def betweenness_centrality(graph: CSRGraph) -> np.ndarray:
    """Exact vertex betweenness on a weighted undirected graph.

    Uses Brandes' dependency accumulation: one Dijkstra per source with
    shortest-path counting, then a reverse sweep over the settle order.
    Endpoints are not counted (the standard convention); each
    undirected pair is counted once from each side, so values are
    exactly twice the per-pair betweenness — a constant factor that is
    irrelevant for ordering and for Proposition-2 ratios.

    Returns:
        ``float64`` array of length n.
    """
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    centrality = np.zeros(n, dtype=np.float64)

    for s in range(n):
        dist: List[float] = [INF] * n
        sigma: List[float] = [0.0] * n  # number of shortest paths
        preds: List[List[int]] = [[] for _ in range(n)]
        settled: List[int] = []
        seen = [False] * n
        dist[s] = 0.0
        sigma[s] = 1.0
        pq: List[tuple] = [(0.0, s)]
        while pq:
            d, u = heapq.heappop(pq)
            if seen[u] or d > dist[u]:
                continue
            seen[u] = True
            settled.append(u)
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    sigma[v] = sigma[u]
                    preds[v] = [u]
                    heapq.heappush(pq, (nd, v))
                # Exact equality is intentional: both sides were
                # produced by the same summation in this very run, and
                # Brandes' sigma counting needs ties, not tolerance.
                elif nd == dist[v] and not seen[v]:  # lint-ok: PC003
                    sigma[v] += sigma[u]
                    preds[v].append(u)
        # Dependency accumulation, farthest settled first.
        delta = [0.0] * n
        for u in reversed(settled):
            for p in preds[u]:
                delta[p] += sigma[p] / sigma[u] * (1.0 + delta[u])
            if u != s:
                centrality[u] += delta[u]
    return centrality


def psi_values(graph: CSRGraph) -> np.ndarray:
    """ψ(v): shortest paths through v, *including* v as an endpoint.

    This is the exact quantity of the paper's Proposition 2.  A path
    counts for its endpoints too (indexing v prunes every pair with v
    as an endpoint), so ψ(v) = betweenness(v) + (paths starting or
    ending at v) — the latter is the number of reachable vertices,
    counted once per direction.
    """
    n = graph.num_vertices
    bc = betweenness_centrality(graph)
    # Reachability counts per component.
    from repro.graph.ops import connected_components

    comp = connected_components(graph)
    sizes = np.bincount(comp) if n else np.zeros(0, dtype=np.int64)
    reach = sizes[comp] - 1  # vertices reachable from v
    return bc + 2.0 * reach


def by_exact_betweenness(graph: CSRGraph) -> np.ndarray:
    """Vertices ordered by descending exact ψ (degree, id tie-breaks)."""
    psi = psi_values(graph)
    degs = graph.degrees
    n = graph.num_vertices
    return np.lexsort((np.arange(n), -degs, -psi)).astype(np.int64)
