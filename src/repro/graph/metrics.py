"""Graph metrics: diameters, clustering, distance distributions.

Used to characterise the synthetic stand-ins against their real-world
counterparts (road networks: large diameter, near-zero clustering;
social graphs: tiny diameter, high clustering) and by EXPERIMENTS.md's
analysis of why partition-isolated pruning degrades at small scale
(short paths traverse few distinct low-rank vertices).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import INF

__all__ = [
    "estimate_diameter",
    "average_clustering",
    "distance_statistics",
]


def estimate_diameter(
    graph: CSRGraph, samples: int = 16, seed: int = 0
) -> float:
    """Lower bound on the weighted diameter by sampled double sweeps.

    Runs Dijkstra from random vertices plus, from each, a second sweep
    from its farthest reachable vertex — the classic double-sweep
    heuristic, exact on trees and a tight lower bound in practice.

    Returns:
        The largest finite distance observed (0.0 for empty graphs).
    """
    # Lazy: repro.graph sits below repro.baselines in the layer
    # stack (PC005); the heuristic is the one place it reaches up.
    from repro.baselines.dijkstra import dijkstra_sssp

    n = graph.num_vertices
    if n == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    best = 0.0
    for s in rng.choice(n, size=min(samples, n), replace=False):
        dist = dijkstra_sssp(graph, int(s))
        finite = [(d, v) for v, d in enumerate(dist) if d != INF]
        if not finite:
            continue
        d1, far = max(finite)
        best = max(best, d1)
        dist2 = dijkstra_sssp(graph, far)
        d2 = max((d for d in dist2 if d != INF), default=0.0)
        best = max(best, d2)
    return best


def average_clustering(graph: CSRGraph, max_degree: Optional[int] = None) -> float:
    """Mean local clustering coefficient.

    For each vertex with degree >= 2, the fraction of neighbour pairs
    that are themselves connected; vertices of degree < 2 contribute 0,
    matching the common convention.

    Args:
        max_degree: skip vertices above this degree (their O(d^2) pair
            enumeration dominates on power-law graphs); skipped vertices
            are excluded from the mean.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    neighbor_sets = [set(graph.neighbors(u).tolist()) for u in range(n)]
    total = 0.0
    counted = 0
    for u in range(n):
        nbrs = sorted(neighbor_sets[u])
        d = len(nbrs)
        if max_degree is not None and d > max_degree:
            continue
        counted += 1
        if d < 2:
            continue
        links = 0
        for i in range(d):
            si = neighbor_sets[nbrs[i]]
            for j in range(i + 1, d):
                if nbrs[j] in si:
                    links += 1
        total += 2.0 * links / (d * (d - 1))
    return total / counted if counted else 0.0


def distance_statistics(
    graph: CSRGraph, samples: int = 16, seed: int = 0
) -> Dict[str, float]:
    """Sampled statistics of the shortest-path distance distribution.

    Returns:
        dict with ``mean``, ``median``, ``p90`` and ``max`` over all
        finite source-target distances from the sampled sources, plus
        ``mean_hops`` — the average number of *edges* on those shortest
        paths (computed from a parallel hop count), the quantity that
        governs how many potential hubs a path offers.
    """
    n = graph.num_vertices
    if n == 0:
        return {"mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0,
                "mean_hops": 0.0}
    rng = np.random.default_rng(seed)
    adj = graph.adjacency_lists()
    dists: list = []
    hops: list = []
    import heapq

    for s in rng.choice(n, size=min(samples, n), replace=False):
        s = int(s)
        dist = [INF] * n
        hop = [0] * n
        dist[s] = 0.0
        pq = [(0.0, s)]
        while pq:
            d, u = heapq.heappop(pq)
            if d > dist[u]:
                continue
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    hop[v] = hop[u] + 1
                    heapq.heappush(pq, (nd, v))
        for t in range(n):
            if t != s and dist[t] != INF:
                dists.append(dist[t])
                hops.append(hop[t])
    if not dists:
        return {"mean": 0.0, "median": 0.0, "p90": 0.0, "max": 0.0,
                "mean_hops": 0.0}
    arr = np.asarray(dists)
    return {
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
        "mean_hops": float(np.mean(hops)),
    }
