"""Whole-graph operations: components, subgraphs, relabeling, histograms.

These are the housekeeping operations the benchmark pipeline needs:
the paper indexes connected real-world graphs, so generators extract the
largest connected component; vertex orderings are applied by relabeling.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = [
    "connected_components",
    "largest_connected_component",
    "induced_subgraph",
    "relabel",
    "degree_histogram",
]


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Label each vertex with its connected-component id.

    Component ids are dense, assigned in order of first discovery
    (vertex 0's component is id 0).

    Returns:
        ``int64`` array of length ``n`` with the component id per vertex.
    """
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    next_id = 0
    for s in range(n):
        if comp[s] != -1:
            continue
        comp[s] = next_id
        stack = [s]
        while stack:
            u = stack.pop()
            for k in range(indptr[u], indptr[u + 1]):
                v = int(indices[k])
                if comp[v] == -1:
                    comp[v] = next_id
                    stack.append(v)
        next_id += 1
    return comp


def largest_connected_component(graph: CSRGraph) -> Tuple[CSRGraph, np.ndarray]:
    """Extract the largest connected component as its own graph.

    Returns:
        ``(subgraph, vertex_map)`` where ``vertex_map[i]`` is the original
        id of the subgraph's vertex ``i``.  Ties between equally large
        components break toward the one discovered first.
    """
    comp = connected_components(graph)
    if len(comp) == 0:
        return graph, np.empty(0, dtype=np.int64)
    counts = np.bincount(comp)
    target = int(counts.argmax())
    keep = np.flatnonzero(comp == target)
    return induced_subgraph(graph, keep), keep


def induced_subgraph(graph: CSRGraph, vertices: Sequence[int]) -> CSRGraph:
    """The subgraph induced by *vertices*, relabeled to ``0..k-1``.

    Args:
        vertices: distinct original vertex ids; subgraph vertex ``i``
            corresponds to ``vertices[i]``.

    Raises:
        GraphError: on duplicate or out-of-range ids.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    if len(vertices) and (vertices.min() < 0 or vertices.max() >= n):
        raise GraphError("subgraph vertex id out of range")
    if len(np.unique(vertices)) != len(vertices):
        raise GraphError("duplicate vertex ids in subgraph selection")
    new_id = np.full(n, -1, dtype=np.int64)
    new_id[vertices] = np.arange(len(vertices))
    b = GraphBuilder(num_vertices=len(vertices))
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    for old_u in vertices:
        u = int(new_id[old_u])
        for k in range(indptr[old_u], indptr[old_u + 1]):
            old_v = int(indices[k])
            v = int(new_id[old_v])
            if v >= 0 and u < v:
                b.add_edge(u, v, float(weights[k]))
    return b.build(name=f"{graph.name}-sub{len(vertices)}")


def relabel(graph: CSRGraph, new_ids: Sequence[int]) -> CSRGraph:
    """Permute vertex ids: output vertex ``new_ids[u]`` is input vertex ``u``.

    Args:
        new_ids: a permutation of ``0..n-1``.

    Raises:
        GraphError: if *new_ids* is not a permutation.
    """
    new_ids = np.asarray(new_ids, dtype=np.int64)
    n = graph.num_vertices
    if len(new_ids) != n or not np.array_equal(np.sort(new_ids), np.arange(n)):
        raise GraphError("new_ids must be a permutation of 0..n-1")
    b = GraphBuilder(num_vertices=n)
    for u, v, w in graph.edges():
        b.add_edge(int(new_ids[u]), int(new_ids[v]), w)
    return b.build(name=graph.name)


def degree_histogram(graph: CSRGraph) -> Dict[int, int]:
    """Map ``degree -> number of vertices with that degree`` (Figure 5 data)."""
    degs = graph.degrees
    hist: Dict[int, int] = {}
    if len(degs):
        values, counts = np.unique(degs, return_counts=True)
        hist = {int(d): int(c) for d, c in zip(values, counts)}
    return hist
