"""Structural invariant checks for CSR graphs.

:func:`check_graph` performs the full battery of consistency checks.
The :class:`~repro.graph.csr.CSRGraph` constructor already validates the
cheap invariants; this module adds the O(m log m) symmetry check and is
used by tests and by loaders of untrusted input files.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph

__all__ = ["check_graph"]


def check_graph(graph: CSRGraph) -> None:
    """Verify all structural invariants of an undirected CSR graph.

    Checks performed:

    * neighbour slices sorted strictly ascending (also rules out
      duplicate edges),
    * no self loops,
    * adjacency symmetry: arc ``(u, v, w)`` implies arc ``(v, u, w)``.

    Raises:
        GraphError: describing the first violated invariant.
    """
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    n = graph.num_vertices

    for u in range(n):
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        sl = indices[lo:hi]
        if len(sl) > 1 and np.any(np.diff(sl) <= 0):
            raise GraphError(
                f"neighbour list of vertex {u} not strictly ascending"
            )
        if len(sl) and np.any(sl == u):
            raise GraphError(f"self loop on vertex {u}")

    # Symmetry: the multiset of (min, max, w) triples must appear exactly
    # twice as directed arcs.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    lo_v = np.minimum(src, indices)
    hi_v = np.maximum(src, indices)
    key = np.stack([lo_v, hi_v], axis=1)
    order = np.lexsort((hi_v, lo_v))
    key_sorted = key[order]
    w_sorted = weights[order]
    if len(key_sorted) % 2 != 0:
        raise GraphError("odd number of directed arcs")
    a = key_sorted[0::2]
    b = key_sorted[1::2]
    if not np.array_equal(a, b):
        raise GraphError("adjacency is not symmetric")
    if not np.array_equal(w_sorted[0::2], w_sorted[1::2]):
        raise GraphError("edge weights are not symmetric")
