"""Shared-memory plumbing for the multiprocess ParaPLL backend.

Two structures cross the process boundary in :mod:`repro.parallel.procs`:

* :class:`SharedGraph` — the immutable graph CSR triple (``indptr``,
  ``indices``, ``weights``) exported once by the parent into one
  ``multiprocessing.shared_memory`` segment.  Workers attach and wrap
  the buffer in a normal :class:`~repro.graph.csr.CSRGraph` without
  copying the arrays, so ``p`` workers share one physical copy of the
  graph regardless of the start method (``fork`` *or* ``spawn``).
* :class:`LabelLog` — the committed-label arena: an append-only log of
  ``(vertex, hub_rank, dist)`` triples written by exactly one process
  (the parent, ParaPLL's Algorithm-2 critical section collapsed into a
  single writer) and read by every worker.  Visibility follows the same
  commit-ordering discipline as the thread backend's dist-before-hub
  appends: the writer stores the entry arrays *first* and advances the
  ``committed`` header counter *last*, so a reader that snapshots
  ``committed`` sees fully written entries for everything below it.
  One int64 store is the linearisation point; there is no cross-process
  lock on the read path at all.

:class:`GrowableLabelLog` handles the one thing a fixed arena cannot:
unknown final label counts.  When an append outgrows the segment the
writer allocates a doubled segment, copies the committed prefix, and
keeps the old generations alive until the build ends — readers attached
to a stale generation still see a frozen-but-consistent prefix and
re-attach at their next task boundary (the dispatch message names the
current segment).  Entry indices are stable across generations, so a
reader's ``synced`` cursor survives re-attachment unchanged.

Attachment is deliberately *not* done through
``SharedMemory(name=...)``: on the Pythons this repo targets an attach
registers the name with the ``multiprocessing`` resource tracker a
second time, and under ``fork`` every worker shares the parent's
tracker process, so worker exits race each other unlinking/unregistering
the same name (KeyError spam from the tracker, or worse, a segment
yanked out from under a sibling).  Readers instead open the segment's
backing file (``/dev/shm/<name>`` on Linux) and map it read-only — no
tracker involvement, no ownership, and a quiet exit even while numpy
views into the map are still referenced.
"""

from __future__ import annotations

import mmap
import os
from multiprocessing import shared_memory
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import TaskError
from repro.graph.csr import CSRGraph

__all__ = ["SharedGraph", "LabelLog", "GrowableLabelLog"]

#: Where POSIX shared-memory segments surface as files (Linux).
_SHM_DIR = "/dev/shm"


def _align8(offset: int) -> int:
    """Round *offset* up to an 8-byte boundary (float64/int64 views)."""
    return (offset + 7) & ~7


class _AttachedSegment:
    """A read-only, tracker-free mapping of an existing shared segment.

    Duck-types the slice of the ``SharedMemory`` interface the log and
    graph wrappers use (``name``, ``buf``, ``close``).  ``close`` is
    best-effort: if numpy views still reference the buffer the mapping
    simply lives until process exit, silently (``mmap`` has no noisy
    ``__del__``, unlike ``SharedMemory``).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        path = os.path.join(_SHM_DIR, name.lstrip("/"))
        fd = os.open(path, os.O_RDONLY)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        self.buf: Any = memoryview(self._mmap)

    def close(self) -> None:
        try:
            self.buf.release()
            self._mmap.close()
        except (BufferError, ValueError):
            pass  # views still alive: unmapped at process exit instead

    def unlink(self) -> None:
        """Readers never own the segment; unlink is a no-op."""


def _attach_segment(name: str) -> Any:
    """Attach to an existing segment without adopting its lifetime."""
    try:
        return _AttachedSegment(name)
    except OSError:
        # No /dev/shm (non-Linux): fall back to a SharedMemory attach
        # and strip the extra tracker registration it creates.
        seg = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except (ImportError, AttributeError, KeyError):
            pass  # tracker API drift: worst case is a shutdown warning
        return seg


def _close_segment(seg: Any, unlink: bool) -> None:
    """Best-effort close (+ optional unlink) of one segment."""
    try:
        seg.close()
    except BufferError:
        # numpy views into the buffer are still alive somewhere; the
        # mapping goes away with the process instead.
        if not unlink:
            return
    except OSError:
        return
    if unlink:
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass


class SharedGraph:
    """One graph CSR triple in one shared-memory segment.

    Parent side::

        shared = SharedGraph.export(graph)
        meta = shared.meta          # picklable, hand to workers
        ...
        shared.close(unlink=True)   # after the build

    Worker side::

        shared = SharedGraph.attach(meta)
        graph = shared.graph        # zero-copy CSRGraph over the segment
    """

    def __init__(
        self, segment: Any, meta: Dict[str, Any], owner: bool
    ) -> None:
        self._segment = segment
        self.meta = meta
        self._owner = owner
        self.graph = self._wrap()

    # ------------------------------------------------------------------
    @staticmethod
    def _layout(n: int, arcs: int) -> Tuple[int, int, int, int]:
        """Byte offsets ``(indptr, indices, weights, total)``."""
        off_indptr = 0
        off_indices = _align8(off_indptr + 8 * (n + 1))
        off_weights = _align8(off_indices + 4 * arcs)
        total = off_weights + 8 * arcs
        return off_indptr, off_indices, off_weights, total

    @classmethod
    def export(cls, graph: CSRGraph) -> "SharedGraph":
        """Copy *graph*'s CSR arrays into a fresh shared segment."""
        n = graph.num_vertices
        arcs = graph.num_arcs
        off_p, off_i, off_w, total = cls._layout(n, arcs)
        segment = shared_memory.SharedMemory(create=True, size=max(total, 8))
        meta = {
            "segment": segment.name,
            "n": n,
            "arcs": arcs,
            "name": graph.name,
        }
        buf = segment.buf
        np.frombuffer(buf, np.int64, n + 1, off_p)[:] = graph.indptr
        np.frombuffer(buf, np.int32, arcs, off_i)[:] = graph.indices
        np.frombuffer(buf, np.float64, arcs, off_w)[:] = graph.weights
        return cls(segment, meta, owner=True)

    @classmethod
    def attach(cls, meta: Dict[str, Any]) -> "SharedGraph":
        """Attach to a segment exported by another process."""
        return cls(_attach_segment(meta["segment"]), dict(meta), owner=False)

    def _wrap(self) -> CSRGraph:
        n = int(self.meta["n"])
        arcs = int(self.meta["arcs"])
        off_p, off_i, off_w, _total = self._layout(n, arcs)
        buf = self._segment.buf
        return CSRGraph(
            np.frombuffer(buf, np.int64, n + 1, off_p),
            np.frombuffer(buf, np.int32, arcs, off_i),
            np.frombuffer(buf, np.float64, arcs, off_w),
            name=str(self.meta["name"]),
        )

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; the owner also unlinks the name."""
        # Drop the numpy views first or close() raises BufferError.
        self.graph = None  # type: ignore[assignment]
        _close_segment(self._segment, unlink=unlink and self._owner)


class LabelLog:
    """A single-writer append-only log of committed label entries.

    Layout: an 8-slot int64 header (``[0]`` = committed entry count,
    the rest reserved) followed by three parallel arrays of *capacity*
    entries: ``verts`` (int64), ``hub_ranks`` (int64), ``dists``
    (float64).

    The writer appends entry data, then advances ``committed`` — one
    int64 store, the cross-process linearisation point.  Readers
    snapshot ``committed`` and may consume any prefix up to it.
    """

    HEADER_SLOTS = 8

    def __init__(self, segment: Any, capacity: int, owner: bool) -> None:
        self._segment = segment
        self.capacity = capacity
        self._owner = owner
        buf = segment.buf
        head = 8 * self.HEADER_SLOTS
        self._header = np.frombuffer(buf, np.int64, self.HEADER_SLOTS, 0)
        self._verts = np.frombuffer(buf, np.int64, capacity, head)
        self._hubs = np.frombuffer(buf, np.int64, capacity, head + 8 * capacity)
        self._dists = np.frombuffer(
            buf, np.float64, capacity, head + 16 * capacity
        )

    # ------------------------------------------------------------------
    @property
    def meta(self) -> Dict[str, Any]:
        """Picklable attachment handle ``{"segment", "capacity"}``."""
        return {"segment": self._segment.name, "capacity": self.capacity}

    @classmethod
    def create(cls, capacity: int) -> "LabelLog":
        """Allocate a fresh zeroed log for *capacity* entries."""
        if capacity < 1:
            raise TaskError("label log capacity must be >= 1")
        size = 8 * cls.HEADER_SLOTS + 24 * capacity
        segment = shared_memory.SharedMemory(create=True, size=size)
        log = cls(segment, capacity, owner=True)
        log._header[0] = 0
        return log

    @classmethod
    def attach(cls, meta: Dict[str, Any]) -> "LabelLog":
        """Attach to a log created by another process."""
        return cls(
            _attach_segment(meta["segment"]),
            int(meta["capacity"]),
            owner=False,
        )

    # ------------------------------------------------------------------
    @property
    def committed(self) -> int:
        """Entries visible to readers (reader-side snapshot point)."""
        return int(self._header[0])

    def append(
        self,
        verts: np.ndarray,
        hub_ranks: np.ndarray,
        dists: np.ndarray,
    ) -> bool:
        """Writer only: append one batch; ``False`` when it won't fit.

        Data is stored before the ``committed`` counter advances, so a
        concurrent reader never observes a half-written entry.
        """
        k = len(verts)
        lo = int(self._header[0])
        if lo + k > self.capacity:
            return False
        self._verts[lo:lo + k] = verts
        self._hubs[lo:lo + k] = hub_ranks
        self._dists[lo:lo + k] = dists
        self._header[0] = lo + k
        return True

    def read(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Entries ``[lo, hi)`` as array views (copy before long-term use).

        *hi* must not exceed a previously observed :attr:`committed`.
        """
        return (
            self._verts[lo:hi],
            self._hubs[lo:hi],
            self._dists[lo:hi],
        )

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; the owner also unlinks the name."""
        self._header = self._verts = self._hubs = self._dists = None  # type: ignore[assignment]
        _close_segment(self._segment, unlink=unlink and self._owner)


class GrowableLabelLog:
    """Writer-side label log that reallocates when an append outgrows it.

    Old generations stay alive (readers may still be attached to them)
    until :meth:`close_all`; every generation holds the same committed
    prefix up to its freeze point, so reader cursors remain valid across
    re-attachment.
    """

    def __init__(self, capacity: int) -> None:
        self._current = LabelLog.create(max(int(capacity), 1))
        self._generations: List[LabelLog] = [self._current]

    @property
    def meta(self) -> Dict[str, Any]:
        """Attachment handle of the *current* generation."""
        return self._current.meta

    @property
    def committed(self) -> int:
        """Entries committed so far (stable across generations)."""
        return self._current.committed

    @property
    def generations(self) -> int:
        """How many segments this log has occupied (1 = never grown)."""
        return len(self._generations)

    def append(
        self,
        verts: np.ndarray,
        hub_ranks: np.ndarray,
        dists: np.ndarray,
    ) -> None:
        """Append one batch, growing into a doubled segment if needed."""
        if self._current.append(verts, hub_ranks, dists):
            return
        committed = self._current.committed
        needed = committed + len(verts)
        capacity = max(2 * self._current.capacity, 2 * needed)
        bigger = LabelLog.create(capacity)
        old_v, old_h, old_d = self._current.read(0, committed)
        bigger.append(old_v, old_h, old_d)
        bigger.append(verts, hub_ranks, dists)
        self._current = bigger
        self._generations.append(bigger)

    def close_all(self) -> None:
        """Close and unlink every generation (build teardown)."""
        for log in self._generations:
            log.close(unlink=True)
        self._generations = []
