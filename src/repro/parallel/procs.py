"""Process-based ParaPLL: true multi-core builds over shared memory.

:mod:`repro.parallel.threads` proves ParaPLL's concurrent correctness
but is GIL-bound; this module is the paper's actual speedup story.
Each worker is an OS process with its own Python interpreter running
pruned Dijkstra roots on a real core.  What crosses the process
boundary is kept to the minimum the algorithm needs:

* **The graph CSR** lives in one ``multiprocessing.shared_memory``
  segment (:class:`~repro.parallel.shm.SharedGraph`), attached
  zero-copy by every worker — ``p`` processes, one physical graph.
* **Committed labels** live in an append-only shared log
  (:class:`~repro.parallel.shm.LabelLog`).  The parent is the *single
  writer* — Algorithm 2's ``Lock(L)`` critical section collapses into
  one process — and workers sync a local mirror from the log at task
  boundaries, lock-free.
* **Label deltas** ship back over per-worker pipes as numpy arrays;
  the parent commits them with commit-on-completion visibility and
  only then dispatches the next root to that worker, so a worker
  always prunes against a label set that includes everything it has
  produced itself.

Visibility is *coarser* than the thread backend's (a worker sees peer
labels committed up to its own task grab, not mid-search), which by
Proposition 1 costs only redundant entries, never wrong distances —
exactly the delayed-synchronisation regime the paper's Proposition 1
covers, and the reason finalized labels stay query-exact vs. serial.

Task assignment reuses :mod:`repro.parallel.task_manager` unchanged:
the policies run in the parent, and the pipes form the process-safe
dispatch channel.  Failures keep the thread backend's shape — the
first failing worker's exception is re-raised ``from`` a
:class:`~repro.errors.TaskError` naming worker and root — and the
parent fail-fasts: after the first failure surviving workers are
stopped at their next task boundary.  A worker that dies without a
goodbye (SIGKILL, OOM) is detected through its process sentinel and
reported the same way instead of hanging the build.

Telemetry crosses the fork boundary via the PR-10 relay plane: pass
``relay=(host, port)`` of a running
:class:`~repro.obs.relay.Collector` and each worker opens a
:class:`~repro.obs.relay.RelayClient` with its worker id as rank, so
child-side search metrics, spans and flight-recorder events stitch
into the parent's registry.  The parent itself reports the commit
plane (buildmon progress, commit counters, bus events) directly.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import traceback
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.check import hooks as _check_hooks
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.errors import TaskError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import bus as _bus
from repro.obs import config as _obs_config
from repro.obs import flightrec as _flightrec
from repro.obs import instruments as _inst
from repro.obs import trace as _trace
from repro.parallel.shm import GrowableLabelLog, LabelLog, SharedGraph
from repro.parallel.task_manager import make_assignment
from repro.parallel.threads import WorkerFailure
from repro.types import IndexStats, SearchStats

__all__ = ["build_parallel_procs"]

#: Fields shipped for one root's SearchStats (order matters: the parent
#: reconstructs by position).
_STATS_FIELDS = (
    "root",
    "settled",
    "pruned",
    "labels_added",
    "relaxations",
    "heap_pushes",
    "heap_pops",
    "query_entries_scanned",
)


def _pack_stats(stats: Optional[SearchStats]) -> Optional[Tuple[int, ...]]:
    if stats is None:
        return None
    return tuple(int(getattr(stats, f)) for f in _STATS_FIELDS)


def _unpack_stats(packed: Optional[Sequence[int]]) -> Optional[SearchStats]:
    if packed is None:
        return None
    return SearchStats(**dict(zip(_STATS_FIELDS, packed)))


def _sync_mirror(
    store: LabelStore,
    log: Optional[LabelLog],
    meta: Dict[str, Any],
    synced: int,
) -> Tuple[LabelLog, int]:
    """Catch the worker's local mirror up with the shared label log.

    Re-attaches when the dispatch message names a newer log generation
    (entry indices are stable across generations, so *synced* carries
    over), then appends every entry in ``[synced, committed)``.
    """
    if log is None or log.meta["segment"] != meta["segment"]:
        if log is not None:
            log.close()
        log = LabelLog.attach(meta)
    committed = log.committed
    if committed > synced:
        verts, hubs, dists = log.read(synced, committed)
        store.extend_from_arrays(verts, hubs, dists)
        synced = committed
    return log, synced


def _worker_main(
    worker_id: int,
    graph_meta: Dict[str, Any],
    order: Sequence[int],
    engine: str,
    conn: Any,
    monitored: bool,
    relay: Optional[Tuple[str, int]],
) -> None:
    """One worker process: attach shared state, loop on dispatched roots.

    The mirror :class:`LabelStore` is process-local — pruning reads
    need no lock — and is fed exclusively from the shared log, never
    from this worker's own deltas directly: the parent commits a delta
    to the log *before* dispatching this worker's next root, so the
    sync at the next task boundary always includes our own labels.
    """
    from repro.core.engines import make_engine

    relay_client = None
    shared_graph = None
    log: Optional[LabelLog] = None
    try:
        if relay is not None:
            try:
                from repro.obs.relay import RelayClient

                relay_client = RelayClient(
                    relay[0], relay[1], rank=worker_id
                )
            except OSError as exc:
                # Telemetry is best-effort: a dead collector must not
                # take the build down.
                _flightrec.record(
                    "relay_connect_failed",
                    worker=worker_id,
                    error=repr(exc),
                )
        shared_graph = SharedGraph.attach(graph_meta)
        search = make_engine(engine, shared_graph.graph, order)
        store = LabelStore(shared_graph.graph.num_vertices)
        synced = 0
        root: Optional[int] = None
        while True:
            root = None
            msg = conn.recv()
            if msg[0] == "stop":
                return
            _tag, root, log_meta = msg
            _flightrec.record("task_grab", worker=worker_id, root=root)
            log, synced = _sync_mirror(store, log, log_meta, synced)
            with _trace.span(
                "root_search", worker=worker_id, root=root
            ) as sp:
                if monitored:
                    root_stats: Optional[SearchStats] = SearchStats()
                    delta = search.run(root, store, root_stats)
                else:
                    root_stats = None
                    delta = search.run(root, store)
                sp.set(labels=len(delta))
            verts = np.fromiter(
                (v for v, _d in delta), dtype=np.int64, count=len(delta)
            )
            dists = np.fromiter(
                (d for _v, d in delta), dtype=np.float64, count=len(delta)
            )
            conn.send(("done", root, verts, dists, _pack_stats(root_stats)))
    except EOFError:
        # The parent went away (its pipe end closed): nothing to report
        # to, just exit quietly.
        return
    except BaseException as exc:  # shipped to the parent below
        _flightrec.record(
            "worker_failure", worker=worker_id, root=root, error=repr(exc)
        )
        try:
            payload: Optional[bytes] = pickle.dumps(exc)
        except Exception as pickle_exc:
            payload = None  # unpicklable exception: parent wraps the repr
            _flightrec.record(
                "worker_exc_unpicklable",
                worker=worker_id,
                error=repr(pickle_exc),
            )
        try:
            conn.send(
                ("error", root, payload, repr(exc), traceback.format_exc())
            )
        except (OSError, BrokenPipeError):
            pass  # parent already gone; exception was flight-recorded
    finally:
        if relay_client is not None:
            relay_client.close()
        if log is not None:
            log.close()
        if shared_graph is not None:
            shared_graph.close()
        conn.close()


def _reraise_first(errors: List[WorkerFailure]) -> None:
    """Re-raise the first failure with the thread backend's shape."""
    failure = errors[0]
    where = (
        f"while indexing root {failure.root}"
        if failure.root is not None
        else "before taking a task"
    )
    _flightrec.auto_dump("worker_failure")
    raise failure.exc from TaskError(
        f"worker {failure.worker} failed {where} "
        f"({len(errors)} worker(s) failed in total)",
        worker=failure.worker,
        root=failure.root,
        failures=len(errors),
    )


def build_parallel_procs(
    graph: CSRGraph,
    num_procs: int,
    policy: str = "dynamic",
    order: Optional[Sequence[int]] = None,
    chunk: int = 1,
    engine: str = "dijkstra",
    start_method: Optional[str] = None,
    relay: Optional[Tuple[str, int]] = None,
    timeout: Optional[float] = None,
) -> PLLIndex:
    """Build a PLL index with *num_procs* worker processes on real cores.

    Args:
        graph: the graph to index.
        num_procs: worker count ``p`` (>= 1).
        policy: ``"static"`` or ``"dynamic"`` task assignment (the
            policies run in the parent; pipes are the dispatch channel).
        order: vertex ordering (defaults to descending degree).
        chunk: dynamic-policy grab size (ignored for static).
        engine: ``"dijkstra"`` (weighted) or ``"bfs"`` (hop counts).
        start_method: ``multiprocessing`` start method (``"fork"``,
            ``"spawn"``, ``"forkserver"``; default: the platform's,
            which is what lets tests monkeypatch the engine registry
            pre-fork on Linux).
        relay: optional ``(host, port)`` of a running
            :class:`~repro.obs.relay.Collector`; each worker relays its
            telemetry there with its worker id as rank.
        timeout: optional stall guard in seconds — if *no* worker makes
            progress for this long the build terminates the fleet and
            raises, instead of hanging on a wedged child.

    Returns:
        A finalized :class:`~repro.core.index.PLLIndex`; queries are
        exact vs. a serial build (Proposition 1), though the label set
        may contain redundant entries.

    Raises:
        TaskError: for invalid parameters, a stalled build, or (as the
            ``__cause__`` of the re-raised original) a worker failure;
            a worker killed outright surfaces as a plain ``TaskError``
            naming the worker and its exit code.
    """
    if num_procs < 1:
        raise TaskError("num_procs must be >= 1")
    if order is None:
        order = by_degree(graph)
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    assignment = make_assignment(policy, order, num_procs, chunk=chunk)

    ctx = mp.get_context(start_method)
    shared_graph = SharedGraph.export(graph)
    log = GrowableLabelLog(capacity=max(1024, 4 * n))
    store = _check_hooks.wrap_store(LabelStore(n))
    commit_lock = _check_hooks.make_lock("parapll.commit_lock")
    monitor = _buildmon.active()
    errors: List[WorkerFailure] = []

    # Worker states: "busy" (owes us a message), "stopping" (stop sent,
    # waiting for a clean exit), "done" (exited cleanly), "dead".
    state: Dict[int, str] = {}
    parent_conns: Dict[int, Any] = {}
    procs: Dict[int, Any] = {}
    roots_in_flight: Dict[int, Optional[int]] = {}
    stopping = False

    def send_next(worker_id: int) -> None:
        """Dispatch the next root to *worker_id*, or stop it."""
        nonlocal stopping
        root = None if stopping else assignment.next_task(worker_id)
        if root is None:
            parent_conns[worker_id].send(("stop",))
            state[worker_id] = "stopping"
            roots_in_flight[worker_id] = None
            return
        roots_in_flight[worker_id] = root
        parent_conns[worker_id].send(("task", int(root), log.meta))
        state[worker_id] = "busy"

    def commit(worker_id: int, msg: Tuple[Any, ...]) -> None:
        """Commit one worker's delta: store, shared log, telemetry."""
        _tag, root, verts, dists, packed = msg
        root_rank = int(rank[root])
        hubs = np.full(len(verts), root_rank, dtype=np.int64)
        with commit_lock:
            store.add_delta(
                zip(verts.tolist(), hubs.tolist(), dists.tolist())
            )
            log.append(verts, hubs, dists)
        _flightrec.record(
            "label_commit", worker=worker_id, root=root, labels=len(verts)
        )
        _bus.publish_event(
            "root_commit", worker=worker_id, root=root, labels=len(verts)
        )
        if monitor is not None:
            monitor.root_done(
                worker_id, root, stats=_unpack_stats(packed),
                labels=len(verts),
            )
        if _obs_config.METRICS:
            _inst.WORKER_ROOTS.labels(worker=str(worker_id)).inc()
            _inst.COMMITS.inc()

    t0 = time.perf_counter()
    try:
        with _trace.span(
            "build_parallel_procs",
            procs=num_procs,
            policy=policy,
            n=n,
        ):
            for k in range(num_procs):
                parent_end, child_end = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        k,
                        shared_graph.meta,
                        order,
                        engine,
                        child_end,
                        monitor is not None,
                        relay,
                    ),
                    name=f"parapll-proc-{k}",
                    daemon=True,
                )
                proc.start()
                child_end.close()  # the worker holds the only copy now
                parent_conns[k] = parent_end
                procs[k] = proc
                send_next(k)

            last_progress = time.monotonic()
            while any(s in ("busy", "stopping") for s in state.values()):
                waitable: List[Any] = []
                conn_of: Dict[Any, int] = {}
                sentinel_of: Dict[Any, int] = {}
                for k, s in state.items():
                    if s == "busy":
                        waitable.append(parent_conns[k])
                        conn_of[parent_conns[k]] = k
                    if s in ("busy", "stopping"):
                        waitable.append(procs[k].sentinel)
                        sentinel_of[procs[k].sentinel] = k
                ready = mp_connection.wait(waitable, timeout=1.0)
                if not ready:
                    if (
                        timeout is not None
                        and time.monotonic() - last_progress > timeout
                    ):
                        raise TaskError(
                            f"parallel build stalled: no worker progress "
                            f"for {timeout:.1f}s "
                            f"(roots in flight: {roots_in_flight})"
                        )
                    continue
                last_progress = time.monotonic()
                # Messages first: a worker that sent its goodbye and
                # exited has both its pipe and its sentinel ready, and
                # the pipe carries the truth.
                for obj in ready:
                    k = conn_of.get(obj)
                    if k is None or state[k] != "busy":
                        continue
                    try:
                        msg = parent_conns[k].recv()
                    except (EOFError, OSError):
                        continue  # resolved via the sentinel below
                    if msg[0] == "done":
                        commit(k, msg)
                        send_next(k)
                    elif msg[0] == "error":
                        _tag, root, payload, exc_repr, tb = msg
                        exc: BaseException
                        if payload is not None:
                            try:
                                exc = pickle.loads(payload)
                            except Exception as unpickle_exc:
                                payload = None
                                exc_repr = (
                                    f"{exc_repr} "
                                    f"(unpicklable: {unpickle_exc!r})"
                                )
                        if payload is None:
                            exc = TaskError(
                                f"worker {k} failed on root {root}: "
                                f"{exc_repr}\n{tb}",
                                worker=k,
                                root=root,
                            )
                        errors.append(
                            WorkerFailure(worker=k, root=root, exc=exc)
                        )
                        stopping = True
                        state[k] = "stopping"  # it exits after sending
                        roots_in_flight[k] = None
                for obj in ready:
                    k = sentinel_of.get(obj)
                    if k is None or state[k] not in ("busy", "stopping"):
                        continue
                    # Drain any goodbye that raced the exit.
                    while state[k] == "busy" and parent_conns[k].poll():
                        try:
                            msg = parent_conns[k].recv()
                        except (EOFError, OSError):
                            break
                        if msg[0] == "done":
                            commit(k, msg)
                            state[k] = "stopping"
                            roots_in_flight[k] = None
                        elif msg[0] == "error":
                            _tag, root, payload, exc_repr, tb = msg
                            if payload is not None:
                                try:
                                    exc = pickle.loads(payload)
                                except Exception as unpickle_exc:
                                    payload = None
                                    exc_repr = (
                                        f"{exc_repr} "
                                        f"(unpicklable: {unpickle_exc!r})"
                                    )
                            if payload is None:
                                exc = TaskError(
                                    f"worker {k} failed on root {root}: "
                                    f"{exc_repr}\n{tb}",
                                    worker=k,
                                    root=root,
                                )
                            errors.append(
                                WorkerFailure(worker=k, root=root, exc=exc)
                            )
                            stopping = True
                            state[k] = "stopping"
                            roots_in_flight[k] = None
                    procs[k].join()
                    if state[k] == "busy":
                        # Died without a goodbye: SIGKILL, OOM, hard
                        # crash.  Report it and fail-fast the rest.
                        root = roots_in_flight[k]
                        code = procs[k].exitcode
                        _flightrec.record(
                            "worker_failure",
                            worker=k,
                            root=root,
                            error=f"process died (exitcode {code})",
                        )
                        errors.append(
                            WorkerFailure(
                                worker=k,
                                root=root,
                                exc=TaskError(
                                    f"worker {k} died while indexing "
                                    f"root {root} (exitcode {code})",
                                    worker=k,
                                    root=root,
                                    exitcode=code,
                                ),
                            )
                        )
                        stopping = True
                    state[k] = "dead" if errors and state[k] == "busy" \
                        else "done"
    finally:
        for k, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        for conn in parent_conns.values():
            conn.close()
        shared_graph.close(unlink=True)
        log.close_all()
    elapsed = time.perf_counter() - t0
    if errors:
        _reraise_first(errors)

    store = _check_hooks.unwrap_store(store)
    store.finalize()
    stats = IndexStats.from_sizes(store.label_sizes(), elapsed)
    return PLLIndex(store, order, graph=graph, stats=stats)
