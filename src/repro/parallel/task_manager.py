"""The ParaPLL task manager: static and dynamic assignment policies.

The task manager hands degree-ordered root vertices to workers:

* **Static** (paper §4.3, Figure 2): vertices are dealt round-robin to
  the *p* workers before indexing starts; worker *k* processes
  ``order[k], order[k + p], order[k + 2p], ...`` in sequence.
* **Dynamic** (paper §4.4, Figure 3, Algorithm 2): a single shared
  queue; whichever worker becomes free takes the highest-ranked
  unindexed vertex.  A lock makes the take atomic.

Both policies are exposed through one tiny interface so the thread
pool, the discrete-event simulator, and the cluster substrate share the
assignment logic — the paper's point that only the *assignment policy*
differs between configurations.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from repro.check import hooks as _check_hooks
from repro.errors import TaskError
from repro.obs import config as _obs_config
from repro.obs.instruments import TASKS_DISPATCHED

__all__ = [
    "TaskAssignment",
    "StaticAssignment",
    "DynamicAssignment",
    "make_assignment",
]


class TaskAssignment(Protocol):
    """Hands out root vertices to workers."""

    num_workers: int

    def next_task(self, worker: int) -> Optional[int]:
        """The next root for *worker*, or ``None`` when it has no more work."""

    def remaining(self) -> int:
        """How many tasks have not yet been handed out."""


class StaticAssignment:
    """Round-robin pre-assignment (the paper's static policy).

    Args:
        order: vertex ordering, most important first.
        num_workers: number of workers ``p``.
    """

    def __init__(self, order: Sequence[int], num_workers: int) -> None:
        if num_workers < 1:
            raise TaskError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._queues: List[List[int]] = [[] for _ in range(num_workers)]
        for i, v in enumerate(order):
            self._queues[i % num_workers].append(int(v))
        # Position cursor per worker; a lock is unnecessary because each
        # worker only touches its own cursor, but we keep one for the
        # remaining() aggregate used by monitors.
        self._cursors = [0] * num_workers
        self._lock = _check_hooks.make_lock("StaticAssignment._lock")
        # Per-worker sanitizer locations: each cursor is thread-confined
        # by construction, which the lockset analysis verifies.
        self._san_locs = [
            f"StaticAssignment#{id(self)}._cursors[{k}]"
            for k in range(num_workers)
        ]
        self._dispatched = TASKS_DISPATCHED.labels(policy="static")

    def next_task(self, worker: int) -> Optional[int]:
        """Next pre-assigned root for *worker* (``None`` when exhausted)."""
        if not 0 <= worker < self.num_workers:
            raise TaskError(f"worker {worker} out of range")
        _check_hooks.access(self._san_locs[worker], write=True)
        cursor = self._cursors[worker]
        queue = self._queues[worker]
        if cursor >= len(queue):
            return None
        self._cursors[worker] = cursor + 1
        if _obs_config.METRICS:
            self._dispatched.inc()
        return queue[cursor]

    def remaining(self) -> int:
        """Tasks not yet handed out, across all workers."""
        with self._lock:
            return sum(
                len(q) - c for q, c in zip(self._queues, self._cursors)
            )

    def assigned_to(self, worker: int) -> List[int]:
        """The full static task list of *worker* (for tests/inspection)."""
        if not 0 <= worker < self.num_workers:
            raise TaskError(f"worker {worker} out of range")
        return list(self._queues[worker])


class DynamicAssignment:
    """Shared work queue (the paper's dynamic policy, Algorithm 2).

    Any free worker takes the next vertex; the lock reproduces
    Algorithm 2's ``Lock(Q) / Dequeue / Unlock(Q)`` critical section.

    Args:
        order: vertex ordering, most important first.
        num_workers: number of workers ``p`` (recorded for symmetry with
            the static policy; any worker id is accepted).
        chunk: how many vertices a worker takes per grab.  The paper
            uses 1; larger chunks trade queue contention against
            assignment quality (an ablation knob).
    """

    def __init__(
        self, order: Sequence[int], num_workers: int, chunk: int = 1
    ) -> None:
        if num_workers < 1:
            raise TaskError("num_workers must be >= 1")
        if chunk < 1:
            raise TaskError("chunk must be >= 1")
        self.num_workers = num_workers
        self.chunk = chunk
        self._order = [int(v) for v in order]
        self._next = 0
        self._lock = _check_hooks.make_lock("DynamicAssignment._lock")
        self._san_loc = f"DynamicAssignment#{id(self)}._next"
        # Per-worker chunk buffers as (tasks, cursor) pairs: an index
        # cursor makes draining a chunk O(chunk) total instead of the
        # O(chunk^2) of repeated ``list.pop(0)`` front-shifts.
        self._buffers: dict[int, List] = {}
        self._dispatched = TASKS_DISPATCHED.labels(policy="dynamic")

    def next_task(self, worker: int) -> Optional[int]:
        """Take the highest-ranked unindexed vertex (``None`` when done)."""
        buffer = self._buffers.get(worker)
        if buffer is not None and buffer[1] < len(buffer[0]):
            task = buffer[0][buffer[1]]
            with self._lock:
                buffer[1] += 1
            if _obs_config.METRICS:
                self._dispatched.inc()
            return task
        with self._lock:
            _check_hooks.access(self._san_loc, write=True)
            if self._next >= len(self._order):
                return None
            lo = self._next
            hi = min(lo + self.chunk, len(self._order))
            self._next = hi
            taken = self._order[lo:hi]
            # Cursor 1: the first task of the chunk is handed out now.
            self._buffers[worker] = [taken, 1]
        if _obs_config.METRICS:
            self._dispatched.inc()
        return taken[0]

    def remaining(self) -> int:
        """Tasks not yet *processed*: shared queue plus worker buffers.

        Buffered-but-unprocessed chunk tasks count as remaining, so
        monitors' ETAs no longer jump by up to ``chunk * workers``
        roots the moment chunks are grabbed.
        """
        with self._lock:
            _check_hooks.access(self._san_loc, write=False)
            buffered = sum(
                len(tasks) - cursor
                for tasks, cursor in self._buffers.values()
            )
            return len(self._order) - self._next + buffered


def make_assignment(
    policy: str, order: Sequence[int], num_workers: int, chunk: int = 1
) -> TaskAssignment:
    """Factory: ``"static"`` or ``"dynamic"`` assignment over *order*.

    Raises:
        TaskError: for unknown policy names.
    """
    if policy == "static":
        return StaticAssignment(order, num_workers)
    if policy == "dynamic":
        return DynamicAssignment(order, num_workers, chunk=chunk)
    raise TaskError(f"unknown assignment policy {policy!r} (static|dynamic)")
