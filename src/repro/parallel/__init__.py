"""Intra-node ParaPLL: task assignment policies and the thread pool.

* :mod:`repro.parallel.task_manager` — the paper's task manager with
  **static** (round-robin pre-assignment, §4.3) and **dynamic** (shared
  work queue, §4.4 / Algorithm 2) policies.
* :mod:`repro.parallel.threads` — a real ``threading``-based ParaPLL.
  Because of CPython's GIL this demonstrates *correctness* of the
  concurrent design, not wall-clock speedup; the speedup experiments run
  on the deterministic simulator in :mod:`repro.sim`, which shares the
  same task-manager code.
"""

from repro.parallel.task_manager import (
    DynamicAssignment,
    StaticAssignment,
    TaskAssignment,
    make_assignment,
)
from repro.parallel.threads import build_parallel_threads

__all__ = [
    "TaskAssignment",
    "StaticAssignment",
    "DynamicAssignment",
    "make_assignment",
    "build_parallel_threads",
]
