"""Intra-node ParaPLL: task assignment policies and the worker pools.

* :mod:`repro.parallel.task_manager` — the paper's task manager with
  **static** (round-robin pre-assignment, §4.3) and **dynamic** (shared
  work queue, §4.4 / Algorithm 2) policies.
* :mod:`repro.parallel.threads` — a real ``threading``-based ParaPLL.
  Because of CPython's GIL this demonstrates *correctness* of the
  concurrent design, not wall-clock speedup.
* :mod:`repro.parallel.procs` — process workers over
  ``multiprocessing.shared_memory`` (:mod:`repro.parallel.shm`): the
  GIL-free backend that turns the paper's speedup claims into
  wall-clock numbers on real cores.
* :mod:`repro.sim` (elsewhere) shares the same task-manager code for
  deterministic speedup experiments.
"""

from repro.parallel.procs import build_parallel_procs
from repro.parallel.task_manager import (
    DynamicAssignment,
    StaticAssignment,
    TaskAssignment,
    make_assignment,
)
from repro.parallel.threads import build_parallel_threads

__all__ = [
    "TaskAssignment",
    "StaticAssignment",
    "DynamicAssignment",
    "make_assignment",
    "build_parallel_threads",
    "build_parallel_procs",
]
