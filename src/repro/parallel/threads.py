"""Thread-based intra-node ParaPLL (the paper's shared-memory model).

Each worker thread owns its own :class:`~repro.core.pruned_dijkstra.
PrunedDijkstra` engine (private scratch arrays) and pulls roots from a
shared :class:`~repro.parallel.task_manager.TaskAssignment`.  Labels
live in one shared :class:`~repro.core.labels.LabelStore`: reads
(pruning) are lock-free; commits happen under a single lock, exactly
Algorithm 2's semaphore.  The commit ordering inside
:meth:`LabelStore.add` (distance before hub) makes the lock-free reads
safe under CPython's GIL.

Because of the GIL, this implementation demonstrates ParaPLL's
*correctness under concurrency* (Proposition 1) rather than wall-clock
speedup; speedup numbers come from :mod:`repro.sim`, which executes the
same policies deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.check import hooks as _check_hooks
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.errors import TaskError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import bus as _bus
from repro.obs import config as _obs_config
from repro.obs import flightrec as _flightrec
from repro.obs import instruments as _inst
from repro.obs import trace as _trace
from repro.parallel.task_manager import make_assignment
from repro.types import IndexStats

__all__ = ["build_parallel_threads", "WorkerFailure"]


@dataclass
class WorkerFailure:
    """One worker thread's failure: which worker, on which root, why.

    The builder re-raises the first failure's original exception with a
    :class:`~repro.errors.TaskError` naming worker and root attached as
    its ``__cause__``, so callers keep their ``except <OriginalError>``
    handling while tracebacks show exactly where the build died.
    """

    worker: int
    root: Optional[int]
    exc: BaseException


def build_parallel_threads(
    graph: CSRGraph,
    num_threads: int,
    policy: str = "dynamic",
    order: Optional[Sequence[int]] = None,
    chunk: int = 1,
    engine: str = "dijkstra",
) -> PLLIndex:
    """Build a PLL index with *num_threads* concurrent worker threads.

    Args:
        graph: the graph to index.
        num_threads: worker count ``p`` (>= 1).
        policy: ``"static"`` or ``"dynamic"`` task assignment.
        order: vertex ordering (defaults to descending degree).
        chunk: dynamic-policy grab size (ignored for static).
        engine: ``"dijkstra"`` (weighted, the paper's Algorithm 1) or
            ``"bfs"`` (unweighted hop counts).

    Returns:
        A finalized :class:`~repro.core.index.PLLIndex`.  Queries are
        exact (Proposition 1) even though the label set may contain
        redundant entries relative to a serial build.

    Raises:
        TaskError: for invalid thread counts or policies.
    """
    if num_threads < 1:
        raise TaskError("num_threads must be >= 1")
    if order is None:
        order = by_degree(graph)
    assignment = make_assignment(policy, order, num_threads, chunk=chunk)
    # Under the race sanitizer (repro.check), the store is wrapped for
    # commit tracking and the lock participates in lockset analysis;
    # both calls are identity/plain-Lock when the sanitizer is off.
    store = _check_hooks.wrap_store(LabelStore(graph.num_vertices))
    commit_lock = _check_hooks.make_lock("parapll.commit_lock")
    errors: List[WorkerFailure] = []
    # Fail-fast cancellation: the first failing worker sets this flag
    # and every surviving worker stops at its next task grab instead of
    # indexing the entire remaining root set before the error surfaces.
    stop = threading.Event()

    def worker(worker_id: int) -> None:
        from repro.core.engines import make_engine
        from repro.types import SearchStats

        search = make_engine(engine, graph, order)
        monitor = _buildmon.active()
        # Per-worker metric series, resolved once outside the loop.
        roots_done = _inst.WORKER_ROOTS.labels(worker=str(worker_id))
        queue_wait = _inst.WORKER_QUEUE_WAIT.labels(worker=str(worker_id))
        perf = time.perf_counter
        root: Optional[int] = None
        try:
            while not stop.is_set():
                root = None
                t_ask = perf()
                root = assignment.next_task(worker_id)
                wait = perf() - t_ask
                if root is None:
                    return
                _flightrec.record(
                    "task_grab", worker=worker_id, root=root
                )
                with _trace.span(
                    "root_search", worker=worker_id, root=root
                ) as sp:
                    if monitor is not None:
                        root_stats = SearchStats()
                        delta = search.run(root, store, root_stats)
                    else:
                        root_stats = None
                        delta = search.run(root, store)
                    root_rank = search.rank_of(root)
                    t_req = perf()
                    with commit_lock:
                        t_acq = perf()
                        store.add_delta(
                            (v, root_rank, d) for v, d in delta
                        )
                    t_rel = perf()
                    sp.set(
                        labels=len(delta),
                        lock_wait=t_acq - t_req,
                        commit=t_rel - t_acq,
                    )
                _flightrec.record(
                    "label_commit",
                    worker=worker_id,
                    root=root,
                    labels=len(delta),
                )
                # Cross-process telemetry: one bus event per committed
                # root (a no-op global load unless a relay installed a
                # bus; the telemetry_overhead workload gates the cost).
                _bus.publish_event(
                    "root_commit",
                    worker=worker_id,
                    root=root,
                    labels=len(delta),
                )
                if monitor is not None:
                    monitor.root_done(
                        worker_id, root, stats=root_stats, labels=len(delta)
                    )
                if _obs_config.METRICS:
                    roots_done.inc()
                    queue_wait.inc(wait)
                    _inst.COMMITS.inc()
                    _inst.COMMIT_LOCK_WAIT.inc(t_acq - t_req)
                    _inst.COMMIT_LOCK_HOLD.inc(t_rel - t_acq)
        except BaseException as exc:  # surfaced to the caller below
            stop.set()
            _flightrec.record(
                "worker_failure",
                worker=worker_id,
                root=root,
                error=repr(exc),
            )
            errors.append(WorkerFailure(worker=worker_id, root=root, exc=exc))

    t0 = time.perf_counter()
    with _trace.span(
        "build_parallel_threads",
        threads=num_threads,
        policy=policy,
        n=graph.num_vertices,
    ):
        threads = [
            threading.Thread(target=worker, args=(k,), name=f"parapll-{k}")
            for k in range(num_threads)
        ]
        for t in threads:
            # Fork/join edges let the happens-before sanitizer prove
            # the commit-on-completion pattern race-free (the lockset
            # engine can only whitelist it via unwrap_store below).
            _check_hooks.fork(t.name)
            t.start()
        for t in threads:
            t.join()
            _check_hooks.join(t.name)
    elapsed = time.perf_counter() - t0
    if errors:
        failure = errors[0]
        where = (
            f"while indexing root {failure.root}"
            if failure.root is not None
            else "while pulling the next task"
        )
        _flightrec.auto_dump("worker_failure")
        raise failure.exc from TaskError(
            f"worker {failure.worker} failed {where} "
            f"({len(errors)} worker(s) failed in total)",
            worker=failure.worker,
            root=failure.root,
            failures=len(errors),
        )

    # The concurrent phase is over: drop the sanitizer wrapper (if any)
    # before the single-threaded finalize, which needs no lock.
    store = _check_hooks.unwrap_store(store)
    store.finalize()
    stats = IndexStats.from_sizes(store.label_sizes(), elapsed)
    return PLLIndex(store, order, graph=graph, stats=stats)
