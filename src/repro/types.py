"""Shared type aliases and small value objects used across the library.

The hot paths of the library work on plain Python ints/floats and numpy
arrays; the dataclasses defined here are *reporting* types that carry
results out of an algorithm (never into its inner loop).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Sentinel distance for "unreachable".  We use ``math.inf`` (not a magic
#: integer) so that arithmetic such as ``d + w`` stays correct.
INF: float = math.inf

#: A vertex identifier.  Vertices are always dense integers ``0..n-1``.
Vertex = int

#: An edge weight.  Weights are non-negative finite floats.
Weight = float

#: One label entry: (hub vertex, distance from the hub).
LabelEntry = Tuple[int, float]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of a single distance query.

    Attributes:
        distance: the shortest-path distance, ``math.inf`` if disconnected.
        hub: the meeting vertex ``u`` that realised the minimum of
            ``d(u, s) + d(u, t)`` in the 2-hop cover, or ``None`` when the
            vertices are disconnected.
        entries_scanned: how many label entries the query touched; a direct
            measure of query cost (the paper's "query stage" cost).
    """

    distance: float
    hub: Optional[int]
    entries_scanned: int

    @property
    def reachable(self) -> bool:
        """Whether a path between the two query vertices exists."""
        return self.distance != INF


@dataclass
class SearchStats:
    """Operation counters collected by one pruned-Dijkstra root search.

    These counters feed the discrete-event cost model: simulated execution
    time is a linear function of them (see :mod:`repro.sim.costmodel`).

    Attributes:
        root: the root vertex of the search.
        settled: vertices dequeued with a final distance (including pruned).
        pruned: dequeued vertices discarded by the 2-hop-cover prune test.
        labels_added: label entries this root contributed.
        relaxations: edge relaxation attempts.
        heap_pushes: priority-queue insert operations.
        heap_pops: priority-queue delete-min operations.
        query_entries_scanned: label entries read by prune-test queries.
    """

    root: int = -1
    settled: int = 0
    pruned: int = 0
    labels_added: int = 0
    relaxations: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    query_entries_scanned: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate counters of *other* into this instance (in place)."""
        self.settled += other.settled
        self.pruned += other.pruned
        self.labels_added += other.labels_added
        self.relaxations += other.relaxations
        self.heap_pushes += other.heap_pushes
        self.heap_pops += other.heap_pops
        self.query_entries_scanned += other.query_entries_scanned

    @property
    def prune_ratio(self) -> float:
        """Fraction of settled vertices discarded by the prune test.

        The live pruning-effectiveness measure: high values mean the
        2-hop-cover test is doing its job (most searches terminate
        without adding labels); 0.0 when nothing was settled yet.
        """
        return self.pruned / self.settled if self.settled else 0.0

    def to_dict(self) -> Dict[str, float]:
        """Counters as a JSON-safe dict (buildmon / audit payloads)."""
        return {
            "root": self.root,
            "settled": self.settled,
            "pruned": self.pruned,
            "labels_added": self.labels_added,
            "relaxations": self.relaxations,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "query_entries_scanned": self.query_entries_scanned,
            "prune_ratio": self.prune_ratio,
        }


@dataclass
class IndexStats:
    """Summary statistics for a completed labeling build.

    Attributes:
        n: number of vertices indexed.
        total_entries: total label entries across all vertices.
        avg_label_size: the paper's "LN" column -- mean entries per vertex.
        max_label_size: largest per-vertex label.
        build_seconds: wall-clock (or simulated) build time.
        per_root: optional per-root search statistics, in indexing order.
    """

    n: int
    total_entries: int
    avg_label_size: float
    max_label_size: int
    build_seconds: float
    per_root: List[SearchStats] = field(default_factory=list)

    @staticmethod
    def from_sizes(sizes: List[int], build_seconds: float) -> "IndexStats":
        """Build stats from a list of per-vertex label sizes."""
        n = len(sizes)
        total = sum(sizes)
        return IndexStats(
            n=n,
            total_entries=total,
            avg_label_size=(total / n) if n else 0.0,
            max_label_size=max(sizes) if sizes else 0,
            build_seconds=build_seconds,
        )


@dataclass
class ParallelRunResult:
    """Result of one (real or simulated) parallel indexing run.

    Attributes:
        index_stats: the label statistics of the produced index.
        makespan: total (simulated or wall) time of the run, seconds.
        computation_time: portion of ``makespan`` spent computing.
        communication_time: portion spent in synchronisation / messaging.
        per_worker_busy: busy seconds for each worker, for load-balance
            analysis (static vs. dynamic assignment).
        schedule: (worker, root, start, finish) tuples when recorded.
    """

    index_stats: IndexStats
    makespan: float
    computation_time: float = 0.0
    communication_time: float = 0.0
    per_worker_busy: List[float] = field(default_factory=list)
    schedule: List[Tuple[int, int, float, float]] = field(default_factory=list)

    @property
    def load_imbalance(self) -> float:
        """Max/mean busy-time ratio across workers (1.0 = perfectly even)."""
        if not self.per_worker_busy:
            return 1.0
        mean = sum(self.per_worker_busy) / len(self.per_worker_busy)
        if mean == 0:
            return 1.0
        return max(self.per_worker_busy) / mean


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor of one benchmark dataset (a Table-2 row).

    Attributes:
        name: dataset name as in the paper (e.g. ``"Wiki-Vote"``).
        paper_n: vertex count reported in the paper.
        paper_m: edge count reported in the paper.
        graph_type: the paper's "Graph Type" column.
        family: generator family key (``"powerlaw"``, ``"road"``, ...).
    """

    name: str
    paper_n: int
    paper_m: int
    graph_type: str
    family: str


# Mapping from experiment id (e.g. "table3") to a human description.
ExperimentCatalog = Dict[str, str]
