"""End-to-end validators for 2-hop-cover indexes.

Three levels of checking, from cheap to exhaustive:

1. :func:`check_label_soundness` — every stored entry ``(h, d)`` in
   ``L(v)`` satisfies ``d == dist(h, v)`` exactly.  Parallel builds may
   add *redundant* entries but never *wrong* ones (Proposition 1); this
   is the invariant that makes that true.
2. :func:`check_cover` — for every (sampled) pair, QUERY over the
   labels equals the true distance, i.e. the label set is a complete
   2-hop cover.
3. :func:`check_canonical` — for a *serial* build only: the label set
   is canonical (no entry can be removed), i.e. for every entry
   ``(h, v)`` no earlier hub already covers the pair.  Parallel builds
   legitimately fail this check; the amount by which they fail is
   exactly the paper's redundancy.

All functions raise :class:`~repro.errors.ReproError` subclasses with a
precise description of the first violation, and return counters for
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.dijkstra import dijkstra_sssp
from repro.core.labels import LabelStore
from repro.core.paths import isclose_distance
from repro.core.query import query_distance
from repro.errors import IndexError_
from repro.graph.csr import CSRGraph
from repro.types import INF

__all__ = [
    "ValidationReport",
    "check_label_soundness",
    "check_cover",
    "check_canonical",
    "validate_index",
]


@dataclass
class ValidationReport:
    """Counters from one validation pass.

    Attributes:
        entries_checked: label entries whose distance was verified.
        pairs_checked: (s, t) pairs whose query was verified.
        redundant_entries: entries a serial build would not contain
            (only counted by :func:`check_canonical` with
            ``strict=False``).
    """

    entries_checked: int = 0
    pairs_checked: int = 0
    redundant_entries: int = 0


def check_label_soundness(
    graph: CSRGraph,
    store: LabelStore,
    order: Sequence[int],
    vertices: Optional[Sequence[int]] = None,
) -> ValidationReport:
    """Verify every label entry stores the exact hub-to-vertex distance.

    Args:
        graph: the indexed graph.
        store: the label store (finalized or not).
        order: the vertex ordering (hub ranks refer to it).
        vertices: which hubs to verify (default: every vertex that
            appears as a hub).  One Dijkstra per verified hub.

    Raises:
        IndexError_: on the first entry whose distance is wrong.
    """
    report = ValidationReport()
    hubs_used = set()
    for v in range(store.n):
        hubs_used.update(store.hubs_of(v))
    targets = (
        set(int(order[h]) for h in hubs_used)
        if vertices is None
        else set(int(v) for v in vertices)
    )
    rank_of_vertex = {int(u): r for r, u in enumerate(order)}
    for hub_vertex in sorted(targets):
        truth = dijkstra_sssp(graph, hub_vertex)
        hub_rank = rank_of_vertex[hub_vertex]
        for v in range(store.n):
            hubs = store.hubs_of(v)
            dists = store.dists_of(v)
            for i in range(len(hubs)):
                if hubs[i] != hub_rank:
                    continue
                report.entries_checked += 1
                if not isclose_distance(dists[i], truth[v]):
                    raise IndexError_(
                        f"label entry L({v}) hub {hub_vertex} stores "
                        f"{dists[i]}, true distance is {truth[v]}"
                    )
    return report


def check_cover(
    graph: CSRGraph,
    store: LabelStore,
    sources: Optional[Sequence[int]] = None,
) -> ValidationReport:
    """Verify QUERY equals Dijkstra for all pairs from given sources.

    Args:
        sources: source vertices to check exhaustively against every
            target (default: every vertex — O(n) Dijkstras).

    Raises:
        IndexError_: on the first mismatching pair.
    """
    store.finalize()
    report = ValidationReport()
    srcs = range(graph.num_vertices) if sources is None else sources
    for s in srcs:
        s = int(s)
        truth = dijkstra_sssp(graph, s)
        for t in range(graph.num_vertices):
            got = query_distance(store, s, t)
            report.pairs_checked += 1
            if not isclose_distance(got, truth[t]):
                raise IndexError_(
                    f"QUERY({s}, {t}) = {got}, Dijkstra says {truth[t]}"
                )
    return report


def check_canonical(
    graph: CSRGraph,
    store: LabelStore,
    order: Sequence[int],
    strict: bool = True,
) -> ValidationReport:
    """Check label minimality: no entry is covered by earlier hubs.

    An entry ``(h, v)`` is *redundant* when QUERY over hubs with rank
    strictly below ``rank(h)`` already yields ``dist(h, v)`` — the
    pruned search from ``h`` would have pruned ``v`` had it seen those
    labels, which is exactly what serial PLL guarantees.

    Args:
        strict: raise on the first redundant entry (default); with
            ``False``, count them instead (useful for measuring a
            parallel build's redundancy).

    Raises:
        IndexError_: in strict mode, on the first redundant entry.
    """
    store.finalize()
    report = ValidationReport()
    n = store.n
    # tmp[hub_rank] = distance from the entry's hub to candidate mid-hubs.
    for v in range(n):
        hubs_v = store.finalized_hubs(v)
        dists_v = store.finalized_dists(v)
        for i in range(len(hubs_v)):
            h_rank = int(hubs_v[i])
            d = float(dists_v[i])
            report.entries_checked += 1
            hub_vertex = int(order[h_rank])
            if hub_vertex == v:
                continue  # the self entry is always canonical
            # QUERY(hub_vertex, v) restricted to ranks < h_rank.
            hubs_h = store.finalized_hubs(hub_vertex)
            dists_h = store.finalized_dists(hub_vertex)
            best = INF
            j = k = 0
            while j < len(hubs_h) and k < len(hubs_v):
                a, b = hubs_h[j], hubs_v[k]
                if a >= h_rank or b >= h_rank:
                    break
                if a == b:
                    total = dists_h[j] + dists_v[k]
                    if total < best:
                        best = total
                    j += 1
                    k += 1
                elif a < b:
                    j += 1
                else:
                    k += 1
            if best <= d:
                if strict:
                    raise IndexError_(
                        f"redundant label: L({v}) entry (hub {hub_vertex}, "
                        f"{d}) is covered at distance {best}"
                    )
                report.redundant_entries += 1
    return report


def validate_index(index, sources: Optional[Sequence[int]] = None) -> ValidationReport:
    """Convenience: soundness + cover for a PLLIndex with attached graph.

    Raises:
        IndexError_: if the index has no graph or any check fails.
    """
    if index.graph is None:
        raise IndexError_("index has no attached graph to validate against")
    report = check_cover(index.graph, index.store, sources=sources)
    sound = check_label_soundness(
        index.graph,
        index.store,
        index.order,
        vertices=[int(index.order[0])],
    )
    report.entries_checked = sound.entries_checked
    return report
