"""The ``parapll-check/1`` machine-readable report envelope.

Every ``parapll check`` subcommand (``races`` / ``deadlocks`` /
``dataflow``) can emit its findings in one common JSON shape, consumed
by the CI annotation step and stable across analyzers::

    {
      "schema": "parapll-check/1",
      "tool": "races",              # which analyzer produced it
      "ok": true,                   # no findings
      "counts": {"VC-RACE": 0},     # findings per rule id
      "findings": [                 # one entry per finding
        {"kind": "race", "rule": "VC-RACE", "path": "...",
         "line": 12, "message": "...", "detail": "..."}
      ],
      "stats": {...}                # analyzer-specific context
    }

``kind`` is the finding family (``race`` / ``deadlock-cycle`` /
``lock-order-inversion`` / ``lint``), ``rule`` the precise rule id
(``VC-RACE``, ``DL-CYCLE``, ``DL-ORDER``, ``PC007``…).  ``path`` and
``line`` are nullable — runtime findings (races, cycles) may have no
single source anchor.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import CheckError

__all__ = [
    "SCHEMA",
    "make_report",
    "finding",
    "from_violations",
    "validate_report",
    "render_text",
    "write_report",
]

SCHEMA = "parapll-check/1"

_FINDING_KEYS = {"kind", "rule", "path", "line", "message", "detail"}


def finding(
    kind: str,
    rule: str,
    message: str,
    path: Optional[str] = None,
    line: Optional[int] = None,
    detail: str = "",
) -> Dict[str, Any]:
    """One normalised finding entry."""
    return {
        "kind": kind,
        "rule": rule,
        "path": path,
        "line": line,
        "message": message,
        "detail": detail,
    }


def from_violations(violations: Sequence[Any]) -> List[Dict[str, Any]]:
    """Lint :class:`~repro.check.lint.Violation` rows as findings."""
    return [
        finding(
            kind="lint",
            rule=v.rule,
            message=v.message,
            path=v.path,
            line=v.line,
            detail=v.hint,
        )
        for v in violations
    ]


def make_report(
    tool: str,
    findings: Sequence[Dict[str, Any]],
    stats: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the full envelope for *tool* around *findings*."""
    counts: Dict[str, int] = {}
    normalised: List[Dict[str, Any]] = []
    for f in findings:
        row = finding(
            kind=str(f.get("kind", "finding")),
            rule=str(f.get("rule", "?")),
            message=str(f.get("message", "")),
            path=f.get("path"),
            line=f.get("line"),
            detail=str(f.get("detail", "")),
        )
        counts[row["rule"]] = counts.get(row["rule"], 0) + 1
        normalised.append(row)
    return {
        "schema": SCHEMA,
        "tool": tool,
        "ok": not normalised,
        "counts": counts,
        "findings": normalised,
        "stats": dict(stats or {}),
    }


def validate_report(doc: Any) -> Dict[str, Any]:
    """Check *doc* against the schema; return it.

    Raises:
        CheckError: when the document is not a valid
            ``parapll-check/1`` report.
    """
    if not isinstance(doc, dict):
        raise CheckError("parapll-check report must be a JSON object")
    if doc.get("schema") != SCHEMA:
        raise CheckError(
            f"unsupported schema {doc.get('schema')!r} (want {SCHEMA!r})"
        )
    for key in ("tool", "ok", "counts", "findings", "stats"):
        if key not in doc:
            raise CheckError(f"parapll-check report is missing {key!r}")
    if not isinstance(doc["findings"], list):
        raise CheckError("'findings' must be a list")
    for i, row in enumerate(doc["findings"]):
        if not isinstance(row, dict) or not _FINDING_KEYS <= set(row):
            raise CheckError(
                f"finding #{i} needs keys {sorted(_FINDING_KEYS)}"
            )
    if bool(doc["ok"]) != (not doc["findings"]):
        raise CheckError("'ok' must mean 'no findings'")
    return doc


def render_text(doc: Dict[str, Any]) -> str:
    """Human-readable rendering of a report document."""
    lines: List[str] = []
    for row in doc["findings"]:
        where = (
            f"{row['path']}:{row['line']}: "
            if row.get("path") else ""
        )
        lines.append(f"{where}{row['rule']} {row['message']}")
        if row.get("detail"):
            for detail_line in str(row["detail"]).splitlines():
                lines.append(f"    {detail_line}")
    status = "clean" if doc["ok"] else f"{len(doc['findings'])} finding(s)"
    stats = doc.get("stats") or {}
    suffix = (
        " (" + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())) + ")"
        if stats else ""
    )
    lines.append(f"parapll check {doc['tool']}: {status}{suffix}")
    return "\n".join(lines)


def write_report(doc: Dict[str, Any], path: str) -> None:
    """Write *doc* as indented JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
