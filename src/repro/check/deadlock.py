"""Lock-order deadlock analysis: runtime acquisition graph + static AST.

Two cooperating passes over the same invariant — *locks must be
acquired in one global order*:

* **Runtime** — :class:`LockOrderRecorder` attaches to either race
  sanitizer (both accept a ``lock_order=`` argument) and is fed every
  acquisition made through :func:`repro.check.hooks.make_lock` locks,
  together with the set of locks the acquiring thread already holds.
  Each (held, acquiring) pair is an edge in the lock-order graph;
  a cycle in that graph is a potential deadlock even if this run's
  interleaving never actually hung.  Edges are keyed on the
  *per-instance* lock names from :class:`~repro.check.naming.LockNameRegistry`
  — merging two same-named locks would fabricate impossible cycles
  (instance A's ``a→b`` closing against instance B's ``b→a``).
* **Static** — :func:`collect_static_edges` walks the AST for nested
  ``with <lock>:`` blocks (the same "looks lockish" heuristic PC002
  uses) and records the nesting order.  A static site whose order
  inverts another static site, or inverts an edge the runtime recorder
  actually observed, is flagged even though no run has tripped it yet.

:func:`analyze` combines both into ``parapll-check/1`` findings
(rules ``DL-CYCLE`` for runtime cycles, ``DL-ORDER`` for order
inversions), consumed by ``parapll check deadlocks``.
"""

from __future__ import annotations

import ast
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.lint import iter_python_files
from repro.check.naming import base_name

__all__ = [
    "LockEdge",
    "StaticWithEdge",
    "LockOrderRecorder",
    "collect_static_edges",
    "analyze",
    "RULE_CYCLE",
    "RULE_ORDER",
]

RULE_CYCLE = "DL-CYCLE"
RULE_ORDER = "DL-ORDER"


@dataclass
class LockEdge:
    """One observed runtime ordering: *src* was held while *dst* was
    acquired.  Names are per-instance unique names."""

    src: str
    dst: str
    count: int = 0
    threads: Set[str] = field(default_factory=set)

    def render(self) -> str:
        who = ", ".join(sorted(self.threads))
        return f"{self.src} -> {self.dst} (x{self.count}, threads: {who})"


@dataclass(frozen=True)
class StaticWithEdge:
    """A nested ``with`` pair in source: *outer* held while *inner* is
    entered.  Names are normalised lock base names; the raw source
    texts ride along for the report."""

    outer: str
    inner: str
    outer_text: str
    inner_text: str
    path: str
    line: int


class LockOrderRecorder:
    """Accumulates the runtime lock-acquisition graph.

    Thread-safe; the sanitizers call :meth:`note_acquire` under their
    own state lock, but the recorder locks anyway so it can also be
    driven directly from tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: Dict[Tuple[str, str], LockEdge] = {}
        self.acquisitions = 0

    def note_acquire(self, held: Tuple[str, ...], acquiring: str) -> None:
        """The current thread, holding *held* (in order), acquires
        *acquiring*."""
        thread = threading.current_thread().name
        with self._lock:
            self.acquisitions += 1
            for src in held:
                key = (src, acquiring)
                edge = self._edges.get(key)
                if edge is None:
                    edge = self._edges[key] = LockEdge(src, acquiring)
                edge.count += 1
                edge.threads.add(thread)

    @property
    def edges(self) -> List[LockEdge]:
        with self._lock:
            return sorted(
                self._edges.values(), key=lambda e: (e.src, e.dst)
            )

    def cycles(self) -> List[List[str]]:
        """Simple cycles in the acquisition graph (Tarjan SCCs with
        more than one node, plus self-loops from re-acquisition)."""
        with self._lock:
            graph: Dict[str, List[str]] = {}
            for src, dst in self._edges:
                graph.setdefault(src, []).append(dst)
                graph.setdefault(dst, [])
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        out: List[List[str]] = []

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: (node, iterator-position) work stack.
            work = [(v, 0)]
            while work:
                node, pi = work.pop()
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = graph[node]
                for i in range(pi, len(succs)):
                    succ = succs[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                if low[node] == index[node]:
                    scc: List[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    if len(scc) > 1 or node in graph.get(node, ()):
                        out.append(sorted(scc))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for v in sorted(graph):
            if v not in index:
                strongconnect(v)
        return out


# ----------------------------------------------------------------------
# Static pass: nested `with <lock>` blocks
# ----------------------------------------------------------------------
def _is_lockish(text: str) -> bool:
    return "lock" in text.lower()


def _with_lock_names(stmt: ast.stmt) -> List[Tuple[str, str]]:
    """``(base_name, source_text)`` for each lockish item of a With."""
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return []
    out: List[Tuple[str, str]] = []
    for item in stmt.items:
        try:
            text = ast.unparse(item.context_expr)
        except (ValueError, AttributeError):  # pragma: no cover
            continue
        if _is_lockish(text):
            out.append((base_name(text), text))
    return out


def _collect_file_edges(path: str, tree: ast.Module) -> List[StaticWithEdge]:
    edges: List[StaticWithEdge] = []

    def walk(stmts: Sequence[ast.stmt], held: List[Tuple[str, str]]) -> None:
        for stmt in stmts:
            names = _with_lock_names(stmt)
            if names:
                # `with a, b:` orders a before b within one statement.
                for i in range(1, len(names)):
                    prev = names[i - 1]
                    edges.append(
                        StaticWithEdge(
                            outer=prev[0], inner=names[i][0],
                            outer_text=prev[1], inner_text=names[i][1],
                            path=path, line=stmt.lineno,
                        )
                    )
                for outer in held:
                    edges.append(
                        StaticWithEdge(
                            outer=outer[0], inner=names[0][0],
                            outer_text=outer[1], inner_text=names[0][1],
                            path=path, line=stmt.lineno,
                        )
                    )
            inner_held = held + names
            for child_body in _stmt_bodies(stmt):
                # Function bodies start with an empty held set: the
                # nesting that matters is dynamic, and a def inside a
                # with does not run under that with.
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    walk(child_body, [])
                else:
                    walk(child_body, inner_held)

    walk(tree.body, [])
    return edges


def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    out: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        body = getattr(stmt, attr, None)
        if body:
            out.append(body)
    for handler in getattr(stmt, "handlers", ()):
        out.append(handler.body)
    return out


def collect_static_edges(paths: Sequence[str]) -> List[StaticWithEdge]:
    """All nested-``with`` lock edges under *paths* (files or dirs)."""
    edges: List[StaticWithEdge] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # the lint engine reports unparsable files
        edges.extend(
            _collect_file_edges(path.replace(os.sep, "/"), tree)
        )
    return edges


# ----------------------------------------------------------------------
# Combined analysis -> parapll-check findings
# ----------------------------------------------------------------------
def analyze(
    paths: Sequence[str] = (),
    recorder: Optional[LockOrderRecorder] = None,
) -> List[Dict[str, Any]]:
    """Deadlock findings from the static pass over *paths* plus (when
    given) the runtime *recorder*'s acquisition graph."""
    findings: List[Dict[str, Any]] = []

    runtime_base_edges: Dict[Tuple[str, str], LockEdge] = {}
    if recorder is not None:
        for cycle in recorder.cycles():
            involved = [
                e for e in recorder.edges
                if e.src in cycle and e.dst in cycle
            ]
            findings.append(
                {
                    "kind": "deadlock-cycle",
                    "rule": RULE_CYCLE,
                    "path": None,
                    "line": None,
                    "message": (
                        "lock-acquisition cycle: "
                        + " <-> ".join(cycle)
                    ),
                    "detail": "\n".join(e.render() for e in involved),
                }
            )
        for edge in recorder.edges:
            key = (base_name(edge.src), base_name(edge.dst))
            if key[0] != key[1]:
                runtime_base_edges.setdefault(key, edge)

    static_edges = collect_static_edges(paths) if paths else []
    seen_static: Dict[Tuple[str, str], StaticWithEdge] = {}
    reported_pairs: Set[Tuple[str, str]] = set()
    for edge in static_edges:
        if edge.outer == edge.inner:
            continue
        pair = (edge.outer, edge.inner)
        inverse = (edge.inner, edge.outer)
        unordered = tuple(sorted(pair))
        prior = seen_static.get(inverse)
        if prior is not None and unordered not in reported_pairs:
            reported_pairs.add(unordered)
            findings.append(
                {
                    "kind": "lock-order-inversion",
                    "rule": RULE_ORDER,
                    "path": edge.path,
                    "line": edge.line,
                    "message": (
                        f"nested `with {edge.outer_text}` then "
                        f"`with {edge.inner_text}` inverts the order at "
                        f"{prior.path}:{prior.line}"
                    ),
                    "detail": (
                        f"{prior.path}:{prior.line} holds "
                        f"{prior.outer_text} while taking "
                        f"{prior.inner_text}; this site does the "
                        "opposite — two threads running both paths can "
                        "deadlock"
                    ),
                }
            )
        rt = runtime_base_edges.get(inverse)
        if rt is not None and ("rt",) + unordered not in reported_pairs:
            reported_pairs.add(("rt",) + unordered)  # type: ignore[arg-type]
            findings.append(
                {
                    "kind": "lock-order-inversion",
                    "rule": RULE_ORDER,
                    "path": edge.path,
                    "line": edge.line,
                    "message": (
                        f"static nesting {edge.outer} -> {edge.inner} "
                        "inverts the runtime acquisition order "
                        f"{rt.src} -> {rt.dst}"
                    ),
                    "detail": rt.render(),
                }
            )
        seen_static.setdefault(pair, edge)
    return findings
