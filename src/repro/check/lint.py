"""The project lint engine: AST rules that guard ParaPLL's invariants.

The correctness argument of the paper (Proposition 1) and of this
reproduction rests on a handful of properties that ordinary tests do
not exercise — commits happen under the single lock, simulated paths
stay deterministic, float distances are never compared with raw ``==``.
Each property is encoded here as a :class:`Rule` over the parsed AST;
the engine runs every registered rule over every file, applies inline
pragmas and the checked-in suppression file, and renders the surviving
violations as human text, JSON, or GitHub workflow annotations.

Rule catalogue (see DESIGN.md §9 for the rationale of each):

* **PC001 determinism** — no wall-clock or unseeded randomness inside
  ``repro.sim`` / ``repro.core``: ``time.time()``, ``datetime.now()``,
  module-level ``random.*``, legacy ``np.random.*`` and *unseeded*
  ``np.random.default_rng()`` / ``random.Random()`` are all banned.
* **PC002 lock discipline** — inside ``repro.parallel`` /
  ``repro.cluster``, mutations of shared label/task state
  (``add_delta`` / ``merge_from`` / ``receive_labels``, ``store.add``,
  writes to ``self._next``) must happen while a lock is held.  Lock
  possession is tracked by a lightweight intra-function dataflow over
  ``with <lock>:`` blocks and ``.acquire()`` / ``.release()`` pairs.
* **PC003 float-distance equality** — no ``==`` / ``!=`` between
  distance-valued expressions outside the sanctioned helpers in
  :mod:`repro.core.paths`; comparisons against the ``INF`` sentinel and
  the ``x != x`` NaN idiom are exempt.
* **PC004 exception hygiene** — no bare ``except:`` anywhere; a broad
  ``except Exception`` / ``except BaseException`` handler must either
  re-raise or actually use the caught exception (record it), so worker
  loops can never silently swallow failures.
* **PC005 import layering** — module-level imports must respect the
  layer diagram: ``repro.core`` / ``repro.graph`` / ``repro.pq`` may
  reach :mod:`repro.obs` only via the sanctioned facades
  (``buildmon`` / ``bus`` / ``config`` / ``flightrec`` /
  ``instruments`` / ``trace`` / ``timers``), low layers
  never import high layers, and runtime code may import from
  ``repro.check`` only the dependency-free :mod:`repro.check.hooks`.
* **PC006 label internals** — the flat CSR finalized representation
  (``_finalized_indptr`` / ``_finalized_hubs`` / ``_finalized_dists``)
  is private to :mod:`repro.core.labels`; every other module reads
  labels through ``finalized_hubs()`` / ``finalized_dists()`` /
  ``finalized_arrays()``.
* **PC012 deprecated shim** — no new imports of the
  :mod:`repro.analysis` shim (renamed to :mod:`repro.efficiency`);
  the shim itself warns at import time and exists only for external
  callers.

(PC007–PC011, the interprocedural thread-role rules, live in
:mod:`repro.check.dataflow` — they need the cross-file call graph.)

Suppression happens at two levels: an inline ``# lint-ok: PC002``
pragma on the flagged line, and the checked-in suppression file
(default ``.parapll-lint.json``) whose entries carry a written reason.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import CheckError

__all__ = [
    "Violation",
    "LintReport",
    "Suppression",
    "Rule",
    "all_rules",
    "lint_paths",
    "load_suppressions",
    "iter_python_files",
    "format_text",
    "format_json",
    "format_github",
    "DEFAULT_SUPPRESSION_FILE",
    "RULES_VERSION",
]

#: Bumped whenever rule behaviour changes, to invalidate result caches.
RULES_VERSION = "parapll-lint/2"

#: Default checked-in suppression file, relative to the repo root.
DEFAULT_SUPPRESSION_FILE = ".parapll-lint.json"

#: Inline pragma marker: ``# lint-ok`` or ``# lint-ok: PC001, PC004``.
_PRAGMA = "lint-ok"


@dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a source location.

    Attributes:
        path: file path as given to the engine (posix separators).
        line: 1-based line of the offending node.
        col: 0-based column.
        rule: rule id (``PC001`` ...).
        message: what is wrong, concretely.
        hint: how to fix it.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Violation":
        return cls(
            path=str(d["path"]),
            line=int(d["line"]),  # type: ignore[arg-type]
            col=int(d["col"]),  # type: ignore[arg-type]
            rule=str(d["rule"]),
            message=str(d["message"]),
            hint=str(d["hint"]),
        )


@dataclass(frozen=True)
class Suppression:
    """One accepted-exception entry of the suppression file."""

    rule: str
    path: str
    reason: str
    line: Optional[int] = None

    def matches(self, v: Violation) -> bool:
        if self.rule != v.rule:
            return False
        if self.line is not None and self.line != v.line:
            return False
        vp = v.path.replace(os.sep, "/")
        sp = self.path.replace(os.sep, "/")
        return vp == sp or vp.endswith("/" + sp)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    files_from_cache: int = 0
    unused_suppressions: List[Suppression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no unsuppressed violations remain."""
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


# ----------------------------------------------------------------------
# File context and rule base
# ----------------------------------------------------------------------
class FileContext:
    """One parsed file handed to every rule: path, module, AST, lines."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.module = _module_name(self.path)

    def text(self, node: ast.AST) -> str:
        """Source text of *node* (best effort)."""
        try:
            return ast.unparse(node)
        except (ValueError, AttributeError):  # pragma: no cover
            return "<expr>"


def _module_name(path: str) -> str:
    """Dotted module name for *path*, anchored at the ``repro`` package.

    Files outside a ``repro`` package tree (synthetic test snippets) get
    module name ``""`` and are only covered by unscoped rules.
    """
    parts = path.replace(os.sep, "/").split("/")
    if "repro" not in parts:
        return ""
    parts = parts[parts.index("repro"):]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Rule:
    """Base class: subclasses define ``id``/``title``/``hint`` and
    yield :class:`Violation` objects from :meth:`check`."""

    id: str = "PC000"
    title: str = ""
    hint: str = ""
    #: Module prefixes this rule applies to; empty = every file.
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if not self.scope:
            return True
        return any(
            module == p or module.startswith(p + ".") for p in self.scope
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str,
        hint: Optional[str] = None,
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            hint=hint if hint is not None else self.hint,
        )


# ----------------------------------------------------------------------
# PC001 — determinism in simulated/core paths
# ----------------------------------------------------------------------
#: ``module attr`` call patterns that read the wall clock.
_WALLCLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: Module-level ``random.*`` functions (all draw from the global RNG).
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "seed", "betavariate",
    "expovariate", "random_sample",
}


class DeterminismRule(Rule):
    """PC001: no wall clock / unseeded randomness in sim & core paths."""

    id = "PC001"
    title = "determinism"
    hint = (
        "simulated and core paths must be replayable: take timestamps "
        "from the event loop and randomness from a seeded "
        "np.random.default_rng(seed) / random.Random(seed)"
    )
    scope = ("repro.sim", "repro.core")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = func.value
                # time.time(), datetime.now(), datetime.datetime.now()...
                base_name = (
                    base.id if isinstance(base, ast.Name)
                    else base.attr if isinstance(base, ast.Attribute)
                    else None
                )
                if (base_name, func.attr) in _WALLCLOCK:
                    yield self.violation(
                        ctx, node,
                        f"wall-clock call {ctx.text(node.func)}() in a "
                        "deterministic path",
                    )
                    continue
                # np.random.<legacy fn>() pulls from the global RNG.
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("np", "numpy")
                    and func.attr not in ("default_rng", "Generator")
                ):
                    yield self.violation(
                        ctx, node,
                        f"global numpy RNG call {ctx.text(node.func)}()",
                    )
                    continue
                # random.random() and friends on the module-global RNG.
                if (
                    isinstance(base, ast.Name)
                    and base.id == "random"
                    and func.attr in _GLOBAL_RANDOM
                ):
                    yield self.violation(
                        ctx, node,
                        f"global random module call random.{func.attr}()",
                    )
                    continue
                # Unseeded np.random.default_rng() / random.Random().
                if func.attr in ("default_rng", "Random") and not (
                    node.args or node.keywords
                ):
                    yield self.violation(
                        ctx, node,
                        f"unseeded RNG constructor "
                        f"{ctx.text(node.func)}()",
                    )
            elif isinstance(func, ast.Name):
                if func.id in ("default_rng", "Random") and not (
                    node.args or node.keywords
                ):
                    yield self.violation(
                        ctx, node,
                        f"unseeded RNG constructor {func.id}()",
                    )


# ----------------------------------------------------------------------
# PC002 — lock discipline around shared mutable state
# ----------------------------------------------------------------------
#: Methods that mutate a shared label/task structure, on any receiver.
_STRONG_MUTATORS = {"add_delta", "merge_from", "receive_labels"}
#: Methods that mutate only when called on a store-like receiver.
_WEAK_MUTATORS = {"add"}
#: Attribute writes on ``self`` that touch shared queue state.
_SHARED_ATTRS = {"_next"}


def _is_lockish(text: str) -> bool:
    return "lock" in text.lower()


class LockDisciplineRule(Rule):
    """PC002: shared-state mutation must happen while a lock is held.

    The dataflow is intra-function and linear: a ``with <lock>:`` block
    adds its lock for the duration of the block, ``x.acquire()`` adds
    ``x`` for the following statements and ``x.release()`` removes it
    (a release inside ``finally`` is seen after the ``try`` body, which
    matches the runtime order for the non-raising path the rule
    models).  Anything whose source text contains ``lock`` counts as a
    lock object — the point is discipline around the *named* locks of
    this codebase, not alias analysis.
    """

    id = "PC002"
    title = "lock-discipline"
    hint = (
        "wrap the mutation in `with <lock>:` (Algorithm 2's critical "
        "section) or move it off the shared object; rank-private "
        "stores belong in the suppression file with a reason"
    )
    scope = ("repro.parallel", "repro.cluster")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Walk every function body (and the module body) separately so
        # the held-lock set never leaks across scopes.  Nested defs are
        # collected and walked on their own.
        bodies: List[List[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in ("__init__", "__new__"):
                    # Constructors run before the object is published to
                    # other threads; their writes cannot race.
                    continue
                bodies.append(node.body)
        for body in bodies:
            yield from self._walk(ctx, body, set())

    # -- dataflow ------------------------------------------------------
    def _walk(
        self, ctx: FileContext, stmts: Sequence[ast.stmt], held: Set[str]
    ) -> Iterator[Violation]:
        held = set(held)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # walked as its own scope
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk(ctx, stmt.body, held)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = set(held)
                for item in stmt.items:
                    text = ctx.text(item.context_expr)
                    if _is_lockish(text):
                        inner.add(_lock_key(text))
                yield from self._walk(ctx, stmt.body, inner)
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Call
            ):
                call = stmt.value
                if isinstance(call.func, ast.Attribute):
                    recv = ctx.text(call.func.value)
                    if call.func.attr == "acquire" and _is_lockish(recv):
                        held.add(_lock_key(recv))
                        continue
                    if call.func.attr == "release" and _is_lockish(recv):
                        held.discard(_lock_key(recv))
                        continue
            if isinstance(
                stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)
            ):
                yield from self._scan_exprs(ctx, _header_exprs(stmt), held)
                yield from self._walk(ctx, stmt.body, held)
                yield from self._walk(ctx, stmt.orelse, held)
                continue
            if isinstance(stmt, ast.Try):
                yield from self._walk(ctx, stmt.body, held)
                for handler in stmt.handlers:
                    yield from self._walk(ctx, handler.body, held)
                yield from self._walk(ctx, stmt.orelse, held)
                yield from self._walk(ctx, stmt.finalbody, held)
                continue
            yield from self._scan_stmt(ctx, stmt, held)

    def _scan_stmt(
        self, ctx: FileContext, stmt: ast.stmt, held: Set[str]
    ) -> Iterator[Violation]:
        if held:
            return
        for node in ast.walk(stmt):
            yield from self._check_node(ctx, node)

    def _scan_exprs(
        self, ctx: FileContext, exprs: Iterable[ast.expr], held: Set[str]
    ) -> Iterator[Violation]:
        if held:
            return
        for expr in exprs:
            for node in ast.walk(expr):
                yield from self._check_node(ctx, node)

    def _check_node(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
            recv = ctx.text(node.func.value)
            if attr in _STRONG_MUTATORS or (
                attr in _WEAK_MUTATORS and "store" in recv.lower()
            ):
                yield self.violation(
                    ctx, node,
                    f"shared-state mutation {recv}.{attr}(...) with no "
                    "lock held",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _SHARED_ATTRS
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield self.violation(
                        ctx, node,
                        f"write to shared attribute self.{target.attr} "
                        "with no lock held",
                    )


def _lock_key(text: str) -> str:
    """Normalise a lock expression to a comparable key."""
    return text.replace(" ", "")


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    return []


# ----------------------------------------------------------------------
# PC003 — float-distance equality
# ----------------------------------------------------------------------
#: Names that (in this codebase) always hold a float distance.
_DIST_NAMES = {
    "got", "want", "rem", "remaining", "best_rem", "dist", "distance",
    "nd", "new_dist", "total_dist", "d_uv", "d_sv", "d_vt",
}
#: ``x.distance`` attribute reads and ``obj.distance(...)`` calls.
_DIST_CALLS = {"distance", "query_distance", "dijkstra_sssp"}


def _is_inf_like(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id in ("INF", "inf", "INFINITY"):
        return True
    if isinstance(node, ast.Attribute) and node.attr in ("inf", "infinity"):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and str(node.args[0].value).lstrip("+-") in ("inf", "Infinity")
    ):
        return True
    return False


def _is_distance_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _DIST_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _DIST_NAMES
    if isinstance(node, ast.Subscript):
        value = node.value
        name = (
            value.id if isinstance(value, ast.Name)
            else value.attr if isinstance(value, ast.Attribute)
            else ""
        )
        return name in ("dist", "dists", "distances", "truth")
    return False


def _is_distance_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.attr if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name)
        else ""
    )
    return name in _DIST_CALLS


class FloatEqualityRule(Rule):
    """PC003: raw ``==``/``!=`` between float distances is banned.

    The sanctioned comparison lives in :mod:`repro.core.paths`
    (``math.isclose`` with an absolute tolerance); everything else must
    call it.  Exempt: comparisons against the exact ``INF`` sentinel
    (unreachable marker, bitwise-exact by construction) and the
    ``x != x`` NaN idiom.
    """

    id = "PC003"
    title = "float-distance-equality"
    hint = (
        "use repro.core.paths.isclose_distance(a, b) (or compare "
        "against the INF sentinel explicitly)"
    )

    def applies_to(self, module: str) -> bool:
        # The sanctioned helper itself is the one place raw comparison
        # tolerance logic may live.
        return module != "repro.core.paths"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if len(node.ops) != 1 or not isinstance(
                node.ops[0], (ast.Eq, ast.NotEq)
            ):
                continue
            left, right = node.left, node.comparators[0]
            if _is_inf_like(left) or _is_inf_like(right):
                continue
            if ast.dump(left) == ast.dump(right):
                continue  # x != x — the sanctioned NaN check
            dist_like = _is_distance_expr(left) + _is_distance_expr(right)
            call_like = _is_distance_call(left) or _is_distance_call(right)
            if call_like or dist_like == 2:
                op = "==" if isinstance(node.ops[0], ast.Eq) else "!="
                yield self.violation(
                    ctx, node,
                    f"raw float comparison "
                    f"`{ctx.text(left)} {op} {ctx.text(right)}` "
                    "on distance values",
                )


# ----------------------------------------------------------------------
# PC004 — exception hygiene
# ----------------------------------------------------------------------
class ExceptionHygieneRule(Rule):
    """PC004: no bare ``except:``; broad handlers must record or re-raise.

    A handler for ``Exception`` / ``BaseException`` that neither
    re-raises nor references the caught exception object silently
    swallows worker failures — exactly the bug class that turns a
    crashed builder thread into a half-built index.
    """

    id = "PC004"
    title = "exception-hygiene"
    hint = (
        "catch a specific exception, or bind it (`except Exception as "
        "exc`) and record/propagate it (append to an errors list, "
        "wrap, or re-raise)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx, node, "bare `except:` swallows everything "
                    "(including KeyboardInterrupt)",
                )
                continue
            names = self._type_names(node.type)
            if not names & {"Exception", "BaseException"}:
                continue
            if node.name is None:
                if not self._reraises(node):
                    yield self.violation(
                        ctx, node,
                        f"broad `except {' | '.join(sorted(names))}:` "
                        "discards the exception without recording it",
                    )
                continue
            if not self._reraises(node) and not self._uses_name(
                node, node.name
            ):
                yield self.violation(
                    ctx, node,
                    f"broad handler binds `{node.name}` but never uses "
                    "or re-raises it",
                )

    @staticmethod
    def _type_names(node: ast.expr) -> Set[str]:
        names: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
        return names

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(sub, ast.Raise) for sub in ast.walk(handler)
        )

    @staticmethod
    def _uses_name(handler: ast.ExceptHandler, name: str) -> bool:
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Name) and sub.id == name and isinstance(
                sub.ctx, ast.Load
            ):
                return True
        return False


# ----------------------------------------------------------------------
# PC005 — import layering
# ----------------------------------------------------------------------
#: Sanctioned low-overhead observability facades importable from below.
_OBS_FACADES = {
    "repro.obs.buildmon",
    "repro.obs.bus",
    "repro.obs.config",
    "repro.obs.flightrec",
    "repro.obs.instruments",
    "repro.obs.trace",
    "repro.obs.timers",
}

#: The one check module runtime code may import (no-op hook points).
_CHECK_FACADE = "repro.check.hooks"

#: Layer groups, low to high.  A module in a group may import its own
#: group, anything lower, plus the sanctioned facades.
_LAYER_GROUPS: List[Tuple[str, ...]] = [
    ("repro.errors", "repro.types"),
    ("repro.pq",),
    ("repro.graph",),
    ("repro.generators", "repro.io"),
    ("repro.core", "repro.digraph", "repro.baselines"),
    ("repro.parallel", "repro.sim"),
    ("repro.cluster", "repro.service", "repro.obs",
     "repro.efficiency", "repro.analysis", "repro.validate"),
    ("repro.check",),
    ("repro.bench", "repro.cli"),
]


def _layer_of(module: str) -> Optional[int]:
    for i, group in enumerate(_LAYER_GROUPS):
        for prefix in group:
            if module == prefix or module.startswith(prefix + "."):
                return i
    return None


class ImportLayeringRule(Rule):
    """PC005: module-level imports must not reach up the layer stack.

    ``repro.obs`` is special-cased: any layer may import the cheap
    facades (metrics counters, span tracing, phase timers, the build
    monitor's report hooks, the config flags) — that is the whole point
    of the facade split — but the
    heavy analysis modules (``perf``, ``regression``, ``timeline``,
    ``export``, ``env``) are importable only from the top layers, and
    only :mod:`repro.check.hooks` is importable from runtime code.
    Function-level (lazy) imports are exempt: they express an optional,
    runtime-chosen dependency, which is the sanctioned escape hatch.
    """

    id = "PC005"
    title = "import-layering"
    hint = (
        "move the import into the function that needs it (lazy), or "
        "route through the sanctioned facade modules"
    )
    scope = ("repro",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        src_layer = _layer_of(ctx.module)
        if src_layer is None:
            return
        for node in ctx.tree.body:
            yield from self._check_import(ctx, node, src_layer)

    def _check_import(
        self, ctx: FileContext, node: ast.stmt, src_layer: int
    ) -> Iterator[Violation]:
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module:
                # ``from repro.obs import config`` names the submodule
                # ``repro.obs.config``; resolve each alias so sanctioned
                # facades are recognised in either spelling.
                for alias in node.names:
                    candidate = f"{node.module}.{alias.name}"
                    if candidate in _OBS_FACADES or candidate == _CHECK_FACADE:
                        continue
                    targets.append(node.module)
        for target in targets:
            if not target.startswith("repro"):
                continue
            if target in _OBS_FACADES or target == _CHECK_FACADE:
                continue
            tgt_layer = _layer_of(target)
            if tgt_layer is None:
                continue
            if tgt_layer > src_layer:
                yield self.violation(
                    ctx, node,
                    f"{ctx.module} (layer {src_layer}) imports "
                    f"{target} (layer {tgt_layer}) at module level",
                )


# ----------------------------------------------------------------------
# PC006 — flat CSR label internals are private to labels.py
# ----------------------------------------------------------------------
#: The finalized-representation slots of LabelStore.  Everything else
#: must go through the public accessors, so the layout can keep
#: evolving (and so frozen/mmap stores keep working) without a
#: repo-wide audit.
_LABEL_INTERNALS = {
    "_finalized_indptr",
    "_finalized_hubs",
    "_finalized_dists",
}

#: The one module that owns the finalized representation.
_LABELS_MODULE = "repro.core.labels"


class LabelInternalsRule(Rule):
    """PC006: no direct access to LabelStore's finalized internals.

    The flat CSR triple behind ``_finalized_indptr`` /
    ``_finalized_hubs`` / ``_finalized_dists`` is an implementation
    detail of :mod:`repro.core.labels`.  Readers use
    ``finalized_hubs(v)`` / ``finalized_dists(v)`` (zero-copy slices)
    or ``finalized_arrays()`` (the whole triple); reaching into the
    slots from outside couples callers to the layout and breaks on
    frozen/memory-mapped stores.
    """

    id = "PC006"
    title = "label-internals"
    hint = (
        "use LabelStore.finalized_hubs()/finalized_dists() for "
        "per-vertex slices or finalized_arrays() for the flat CSR "
        "triple; the _finalized_* slots belong to repro.core.labels"
    )
    scope = ("repro",)

    def applies_to(self, module: str) -> bool:
        if module == _LABELS_MODULE:
            return False
        return super().applies_to(module)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _LABEL_INTERNALS
            ):
                yield self.violation(
                    ctx, node,
                    f"direct access to LabelStore.{node.attr} outside "
                    f"{_LABELS_MODULE}",
                )


# ----------------------------------------------------------------------
# PC012 — the repro.analysis shim is deprecated
# ----------------------------------------------------------------------
#: The deprecated module (renamed to ``repro.efficiency`` in PR 3).
_SHIM_MODULE = "repro.analysis"


class ShimImportRule(Rule):
    """PC012: no new imports of the deprecated ``repro.analysis`` shim.

    The module was renamed to :mod:`repro.efficiency`; the shim stays
    for external callers (and warns at import time), but nothing inside
    the tree may grow a dependency on it.
    """

    id = "PC012"
    title = "deprecated-shim-import"
    hint = (
        "import from repro.efficiency instead; repro.analysis is a "
        "deprecated alias kept only for external callers"
    )

    def applies_to(self, module: str) -> bool:
        # The shim itself may name itself; everything else is in scope.
        return module != _SHIM_MODULE

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            hit = False
            if isinstance(node, ast.Import):
                hit = any(
                    alias.name == _SHIM_MODULE
                    or alias.name.startswith(_SHIM_MODULE + ".")
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == _SHIM_MODULE or (
                    node.module or ""
                ).startswith(_SHIM_MODULE + "."):
                    hit = True
                elif node.module == "repro" and any(
                    alias.name == "analysis" for alias in node.names
                ):
                    hit = True
            if hit:
                yield self.violation(
                    ctx, node,
                    "import of the deprecated repro.analysis shim",
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_RULES: List[Rule] = [
    DeterminismRule(),
    LockDisciplineRule(),
    FloatEqualityRule(),
    ExceptionHygieneRule(),
    ImportLayeringRule(),
    LabelInternalsRule(),
    ShimImportRule(),
]


def all_rules() -> List[Rule]:
    """The registered rule instances, in id order."""
    return sorted(_RULES, key=lambda r: r.id)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id.

    Raises:
        CheckError: for unknown rule ids.
    """
    for rule in _RULES:
        if rule.id == rule_id:
            return rule
    raise CheckError(
        f"unknown lint rule {rule_id!r} "
        f"(known: {', '.join(r.id for r in all_rules())})"
    )


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git", ".venv")
                ]
                for name in filenames:
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        elif path.endswith(".py"):
            out.append(path)
    return sorted(set(out))


def _inline_pragmas(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line -> suppressed rule ids (``None`` = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(lines, start=1):
        if _PRAGMA not in line or "#" not in line:
            continue
        comment = line[line.index("#"):]
        if _PRAGMA not in comment:
            continue
        after = comment.split(_PRAGMA, 1)[1]
        ids: Set[str] = set()
        for token in after.lstrip(": ").split(","):
            # Only the leading word is the rule id; anything after it
            # (``# lint-ok: PC004 — why``) is free-form justification.
            word = token.strip().split()[0] if token.strip() else ""
            if word.startswith("PC"):
                ids.add(word)
        out[i] = ids or None
    return out


def _lint_file(
    path: str, rules: Sequence[Rule]
) -> Tuple[List[Violation], List[Violation]]:
    """One file's ``(violations, pragma_suppressed)`` rule hits."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Violation(
                path=path.replace(os.sep, "/"),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="PC000",
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error",
            )
        ], []
    pragmas = _inline_pragmas(ctx.lines)
    found: List[Violation] = []
    pragma_hits: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx.module):
            continue
        for violation in rule.check(ctx):
            ids = pragmas.get(violation.line, ())
            if ids is None or (ids and violation.rule in ids):
                pragma_hits.append(violation)
                continue
            found.append(violation)
    return found, pragma_hits


def load_suppressions(path: str) -> List[Suppression]:
    """Read the checked-in suppression file.

    Raises:
        CheckError: for unreadable or malformed files.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise CheckError(f"cannot read suppression file {path!r}: {exc}")
    except ValueError as exc:
        raise CheckError(f"suppression file {path!r} is not JSON: {exc}")
    entries = doc.get("suppressions") if isinstance(doc, dict) else None
    if not isinstance(entries, list):
        raise CheckError(
            f"suppression file {path!r} needs a top-level "
            "'suppressions' list"
        )
    out: List[Suppression] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or not {
            "rule", "path", "reason"
        } <= set(entry):
            raise CheckError(
                f"suppression #{i} in {path!r} needs rule/path/reason keys"
            )
        if not str(entry["reason"]).strip():
            raise CheckError(
                f"suppression #{i} in {path!r} has an empty reason — "
                "accepted exceptions must say why"
            )
        out.append(
            Suppression(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                reason=str(entry["reason"]),
                line=(
                    int(entry["line"])
                    if entry.get("line") is not None else None
                ),
            )
        )
    return out


# -- result cache ------------------------------------------------------
def _file_sha(source: bytes) -> str:
    return hashlib.sha256(source).hexdigest()


def _load_cache(path: Optional[str]) -> Dict[str, Dict[str, object]]:
    if not path or not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return {}
    if doc.get("version") != RULES_VERSION:
        return {}
    files = doc.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(
    path: Optional[str], files: Dict[str, Dict[str, object]]
) -> None:
    if not path:
        return
    doc = {"version": RULES_VERSION, "files": files}
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
    except OSError:  # pragma: no cover - cache is best-effort
        pass


def lint_paths(
    paths: Sequence[str],
    suppressions: Optional[Sequence[Suppression]] = None,
    rules: Optional[Sequence[Rule]] = None,
    cache_path: Optional[str] = None,
) -> LintReport:
    """Run the lint engine over *paths* and return the report.

    Args:
        paths: files and/or directories to lint.
        suppressions: checked-in accepted exceptions (see
            :func:`load_suppressions`).
        rules: rule subset (defaults to the full registry).
        cache_path: optional JSON result cache; files whose content
            hash matches are not re-parsed (the CI job persists this
            across runs via ``actions/cache``).
    """
    rules = list(rules) if rules is not None else all_rules()
    suppressions = list(suppressions or ())
    cache = _load_cache(cache_path)
    new_cache: Dict[str, Dict[str, object]] = {}
    report = LintReport()
    used: Set[int] = set()

    for path in iter_python_files(paths):
        key = path.replace(os.sep, "/")
        with open(path, "rb") as fh:
            sha = _file_sha(fh.read())
        entry = cache.get(key)
        if entry and entry.get("sha256") == sha:
            found = [
                Violation.from_dict(d)  # type: ignore[arg-type]
                for d in entry.get("violations", ())
            ]
            pragma_hits = [
                Violation.from_dict(d)  # type: ignore[arg-type]
                for d in entry.get("pragma_suppressed", ())
            ]
            report.files_from_cache += 1
        else:
            found, pragma_hits = _lint_file(path, rules)
        new_cache[key] = {
            "sha256": sha,
            "violations": [v.to_dict() for v in found],
            "pragma_suppressed": [v.to_dict() for v in pragma_hits],
        }
        report.files_checked += 1
        report.suppressed.extend(pragma_hits)
        for violation in found:
            for i, supp in enumerate(suppressions):
                if supp.matches(violation):
                    used.add(i)
                    report.suppressed.append(violation)
                    break
            else:
                report.violations.append(violation)

    report.unused_suppressions = [
        s for i, s in enumerate(suppressions) if i not in used
    ]
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    _save_cache(cache_path, new_cache)
    return report


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
def format_text(report: LintReport) -> str:
    """Human-readable report (the default CLI output)."""
    lines: List[str] = []
    for v in report.violations:
        lines.append(f"{v.path}:{v.line}:{v.col}: {v.rule} {v.message}")
        lines.append(f"    hint: {v.hint}")
    cached = (
        f" ({report.files_from_cache} from cache)"
        if report.files_from_cache else ""
    )
    lines.append(
        f"checked {report.files_checked} files{cached}: "
        f"{len(report.violations)} violation(s), "
        f"{len(report.suppressed)} suppressed"
    )
    for supp in report.unused_suppressions:
        lines.append(
            f"note: unused suppression {supp.rule} {supp.path}"
            + (f":{supp.line}" if supp.line else "")
        )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report."""
    return json.dumps(
        {
            "version": RULES_VERSION,
            "files_checked": report.files_checked,
            "files_from_cache": report.files_from_cache,
            "violations": [v.to_dict() for v in report.violations],
            "suppressed": [v.to_dict() for v in report.suppressed],
            "ok": report.ok,
        },
        indent=1,
        sort_keys=True,
    )


def format_github(report: LintReport) -> str:
    """GitHub workflow-command annotations (``::error file=...``)."""
    lines = [
        f"::error file={v.path},line={v.line},col={v.col},"
        f"title={v.rule}::{v.message} — {v.hint}"
        for v in report.violations
    ]
    lines.append(
        f"checked {report.files_checked} files: "
        f"{len(report.violations)} violation(s)"
    )
    return "\n".join(lines)
