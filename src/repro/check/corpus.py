"""Seeded-defect corpus runner for the concurrency analyzers.

``tests/corpus/`` holds intentionally defective (and intentionally
clean) snippets that pin each analyzer's detection power — every
seeded defect must be flagged, every clean pattern must stay clean.
One subdirectory per analyzer, one protocol each:

* ``races/`` — each file defines ``EXPECT = <int>`` and ``run()``.
  The runner imports the file, installs a fresh
  :class:`~repro.check.vectorclock.VectorClockSanitizer`, calls
  ``run()``, and compares the number of reported races: ``EXPECT == 0``
  demands exactly zero, ``EXPECT > 0`` demands at least that many.
* ``deadlocks/`` — ``EXPECT = <int>`` plus an optional ``run()``
  (executed under a sanitizer with a
  :class:`~repro.check.deadlock.LockOrderRecorder` attached) and/or
  nested-``with`` source for the static pass; the combined
  :func:`repro.check.deadlock.analyze` finding count is compared the
  same way.
* ``dataflow/`` — each file defines ``EXPECT_RULES = [...]`` (rule id
  strings, possibly empty); the exact *set* of rules
  :func:`repro.check.dataflow.analyze_paths` fires on the file must
  equal it.

A corpus *failure* (defect missed, or a clean file flagged) becomes a
``corpus`` finding in the ``parapll-check/1`` report, so CI fails on
detection regressions through the same artifact path as real-tree
findings.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.check import hooks as _hooks
from repro.check import report as _report
from repro.errors import CheckError

__all__ = [
    "CorpusCase",
    "run_race_corpus",
    "run_deadlock_corpus",
    "run_dataflow_corpus",
    "DEFAULT_CORPUS_DIR",
]

#: Default corpus root, relative to the repo root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


@dataclass
class CorpusCase:
    """Outcome of one corpus file."""

    path: str
    expect: Any
    got: Any
    ok: bool
    detail: str = ""

    def to_finding(self) -> Dict[str, Any]:
        return _report.finding(
            kind="corpus",
            rule="CORPUS",
            message=(
                f"corpus expectation failed: expected {self.expect!r}, "
                f"analyzer produced {self.got!r}"
            ),
            path=self.path,
            line=1,
            detail=self.detail,
        )


def _corpus_files(directory: str) -> List[str]:
    if not os.path.isdir(directory):
        raise CheckError(f"corpus directory {directory!r} does not exist")
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".py") and not name.startswith("_")
    )


def _load_module(path: str) -> Any:
    stem = os.path.splitext(os.path.basename(path))[0]
    name = f"parapll_corpus_{stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover
        raise CheckError(f"cannot import corpus file {path!r}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(name, None)
    return module


def _with_fresh_sanitizer(fn: Callable[[Any], None], sanitizer: Any) -> None:
    """Run *fn(sanitizer)* with *sanitizer* active, preserving any
    ambient sanitizer (the test suite may have one installed)."""
    ambient = _hooks.get_active()
    _hooks.set_active(None)
    try:
        with sanitizer:
            fn(sanitizer)
    finally:
        _hooks.set_active(ambient)


def run_race_corpus(directory: str) -> List[CorpusCase]:
    """Execute every race corpus file under a fresh VC detector."""
    from repro.check.vectorclock import VectorClockSanitizer

    cases: List[CorpusCase] = []
    for path in _corpus_files(directory):
        module = _load_module(path)
        expect = int(getattr(module, "EXPECT", 0))
        run = getattr(module, "run", None)
        if run is None:
            raise CheckError(f"race corpus file {path!r} defines no run()")
        sanitizer = VectorClockSanitizer()
        _with_fresh_sanitizer(lambda _s: run(), sanitizer)
        got = len(sanitizer.reports)
        ok = (got == 0) if expect == 0 else (got >= expect)
        cases.append(
            CorpusCase(
                path=path.replace(os.sep, "/"),
                expect=expect,
                got=got,
                ok=ok,
                detail=sanitizer.render(),
            )
        )
    return cases


def run_deadlock_corpus(directory: str) -> List[CorpusCase]:
    """Run every deadlock corpus file: dynamic run() + static pass."""
    from repro.check.deadlock import LockOrderRecorder, analyze
    from repro.check.vectorclock import VectorClockSanitizer

    cases: List[CorpusCase] = []
    for path in _corpus_files(directory):
        module = _load_module(path)
        expect = int(getattr(module, "EXPECT", 0))
        recorder = LockOrderRecorder()
        run = getattr(module, "run", None)
        if run is not None:
            sanitizer = VectorClockSanitizer(lock_order=recorder)
            _with_fresh_sanitizer(lambda _s: run(), sanitizer)
        findings = analyze([path], recorder)
        got = len(findings)
        ok = (got == 0) if expect == 0 else (got >= expect)
        cases.append(
            CorpusCase(
                path=path.replace(os.sep, "/"),
                expect=expect,
                got=got,
                ok=ok,
                detail="\n".join(f["message"] for f in findings),
            )
        )
    return cases


def _expected_rules(path: str) -> List[str]:
    """The ``EXPECT_RULES`` literal of *path*, read via the AST."""
    import ast

    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and (
                    target.id == "EXPECT_RULES"
                ):
                    value = ast.literal_eval(node.value)
                    return [str(r) for r in value]
    raise CheckError(
        f"dataflow corpus file {path!r} defines no EXPECT_RULES literal"
    )


def run_dataflow_corpus(directory: str) -> List[CorpusCase]:
    """Static dataflow lints over each corpus file, rule-set compared."""
    from repro.check.dataflow import analyze_paths

    cases: List[CorpusCase] = []
    for path in _corpus_files(directory):
        # Static corpus: read EXPECT_RULES without executing the file
        # (the snippets are intentionally defective).
        expect_rules = sorted(set(_expected_rules(path)))
        result = analyze_paths([path])
        got_rules = sorted({v.rule for v in result.violations})
        ok = got_rules == expect_rules
        cases.append(
            CorpusCase(
                path=path.replace(os.sep, "/"),
                expect=expect_rules,
                got=got_rules,
                ok=ok,
                detail="\n".join(
                    f"{v.path}:{v.line}: {v.rule} {v.message}"
                    for v in result.violations
                ),
            )
        )
    return cases
