"""FastTrack-style happens-before race detection for the shared builds.

The lockset sanitizer (:mod:`repro.check.sanitizer`) over-approximates:
it can only express "always protected by the same lock", so every
synchronization idiom that is *not* a lock — thread fork/join, comm
envelopes, barriers — has to be whitelisted (the ``unwrap_store``
escape hatch before ``finalize()``, the barrier-ordered allgather slot
reads).  This module is the precise complement: a vector-clock
happens-before detector in the FastTrack (Flanagan & Freund, PLDI '09)
family that consumes the full synchronization-event surface of
:mod:`repro.check.hooks` —

* lock acquire/release (release merges the holder's clock into the
  lock, acquire joins it back out),
* thread ``fork``/``join`` edges from the builders,
* comm envelope ``send``/``recv`` edges from ``SimComm``/``ThreadComm``
  (per-message when the transport carries the token, per-channel
  otherwise),
* ``barrier`` arrive/depart pairs (arrive merges into the barrier
  clock, depart joins it out — sound across reuse because barrier
  rounds are globally ordered)

— and reports an access pair as a race exactly when neither access
happens-before the other.  The commit-on-completion pattern of
:mod:`repro.parallel.threads` (workers commit under the lock, the main
thread finalizes lock-free *after joining them*) is therefore proven
race-free by the join edges instead of whitelisted, which is the
Proposition 1 discipline stated as a happens-before fact.

Like the lockset engine it is strictly opt-in (install via
:meth:`VectorClockSanitizer.install` or ``PARAPLL_SANITIZE=vc``), and
it reports at most one race per location with both stacks captured.
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.check import hooks as _hooks
from repro.check.naming import LockNameRegistry
from repro.check.sanitizer import SanitizedLabelStore
from repro.errors import CheckError

__all__ = [
    "VCAccess",
    "VCRaceReport",
    "VCTrackedLock",
    "VectorClockSanitizer",
    "get_vc_sanitizer",
]

#: Frames of context captured per access (cost paid only when on).
_STACK_LIMIT = 8

#: A vector clock: thread ident -> logical time.  Plain dicts keep the
#: merge loop allocation-free on the common small sizes.
Clock = Dict[int, int]


def _merge(into: Clock, other: Clock) -> None:
    for ident, tick in other.items():
        if tick > into.get(ident, 0):
            into[ident] = tick


#: One captured frame: (filename, lineno, function name).  Raw tuples
#: from a ``sys._getframe`` walk — formatting (and any source-line
#: lookup) is deferred to :meth:`VCAccess.render`, so the per-access
#: cost stays a few microseconds instead of a linecache hit.
Frame = Tuple[str, int, str]


def _capture_stack(skip: int) -> List[Frame]:
    frames: List[Frame] = []
    try:
        f = sys._getframe(skip)
    except ValueError:  # pragma: no cover - shallow stacks
        return frames
    while f is not None and len(frames) < _STACK_LIMIT:
        code = f.f_code
        frames.append((code.co_filename, f.f_lineno, code.co_name))
        f = f.f_back
    frames.reverse()  # oldest first, matching traceback order
    return frames


@dataclass
class VCAccess:
    """One recorded access: who, when (its epoch), from where."""

    thread: str
    ident: int
    tick: int
    write: bool
    stack: List[Frame]

    def render(self) -> str:
        kind = "write" if self.write else "read"
        head = f"{kind} by thread {self.thread!r} at epoch {self.tick}"
        return head + "\n" + "".join(
            f'    File "{filename}", line {lineno}, in {func}\n'
            for filename, lineno, func in self.stack
        )

    def location_hint(self) -> Tuple[Optional[str], Optional[int]]:
        """(file, line) of the innermost non-check frame, for reports."""
        for filename, lineno, _func in reversed(self.stack):
            if "repro/check/" not in filename.replace("\\", "/"):
                return filename, lineno
        return (None, None)


@dataclass
class VCRaceReport:
    """Two accesses to one location with no happens-before order."""

    location: str
    first: VCAccess
    second: VCAccess

    def render(self) -> str:
        return (
            f"RACE on {self.location}: accesses are concurrent "
            "(no happens-before edge orders them)\n"
            f"  earlier access: {self.first.render()}"
            f"  racing access:  {self.second.render()}"
        )

    def to_finding(self) -> Dict[str, Any]:
        path, line = self.second.location_hint()
        return {
            "kind": "race",
            "rule": "VC-RACE",
            "path": path,
            "line": line,
            "message": (
                f"concurrent {'write' if self.second.write else 'read'} on "
                f"{self.location} by {self.second.thread!r} races with "
                f"{'write' if self.first.write else 'read'} by "
                f"{self.first.thread!r}"
            ),
            "detail": self.render(),
        }


class VCTrackedLock:
    """A lock whose release/acquire carries a vector clock."""

    _ids = itertools.count(1)

    def __init__(self, sanitizer: "VectorClockSanitizer", name: str) -> None:
        self._inner = threading.Lock()
        self._sanitizer = sanitizer
        self.name = name
        self.lock_id = next(self._ids)
        self.clock: Clock = {}

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._sanitizer._on_acquire(self)
        return got

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VCTrackedLock({self.name!r})"


class _ThreadState:
    __slots__ = ("clock", "name", "held")

    def __init__(self, ident: int, name: str) -> None:
        self.clock: Clock = {ident: 1}
        self.name = name
        self.held: List[str] = []


class _Epoch:
    __slots__ = ("ident", "tick", "info")

    def __init__(self, ident: int, tick: int, info: VCAccess) -> None:
        self.ident = ident
        self.tick = tick
        self.info = info


class _LocationState:
    __slots__ = ("write", "reads", "reported")

    def __init__(self) -> None:
        self.write: Optional[_Epoch] = None
        self.reads: Dict[int, _Epoch] = {}
        self.reported = False


class VectorClockSanitizer:
    """The happens-before engine: per-thread clocks, per-location epochs.

    Args:
        raise_on_race: raise :class:`~repro.errors.CheckError` at the
            racing access instead of accumulating into :attr:`reports`.
        lock_order: optional
            :class:`~repro.check.deadlock.LockOrderRecorder` fed with
            every acquisition edge (for deadlock-cycle analysis of the
            same run).
    """

    def __init__(
        self, raise_on_race: bool = False, lock_order: Optional[Any] = None
    ) -> None:
        self.raise_on_race = raise_on_race
        self.lock_order = lock_order
        self.reports: List[VCRaceReport] = []
        self.accesses_tracked = 0
        self.fastpath_hits = 0
        self.locks_created = 0
        self.sync_events = 0
        self._state_lock = threading.Lock()
        self._threads: Dict[int, _ThreadState] = {}
        self._ident_by_name: Dict[str, int] = {}
        self._pending_forks: Dict[str, Clock] = {}
        self._channels: Dict[str, Clock] = {}
        self._barriers: Dict[str, Clock] = {}
        self._locations: Dict[str, _LocationState] = {}
        self._names = LockNameRegistry()

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "VectorClockSanitizer":
        """Make this the active sanitizer (see :mod:`repro.check.hooks`).

        Raises:
            CheckError: when a different sanitizer is already active.
        """
        active = _hooks.get_active()
        if active is not None and active is not self:
            raise CheckError("another sanitizer is already installed")
        _hooks.set_active(self)
        return self

    def uninstall(self) -> None:
        """Deactivate (hooks become no-ops again)."""
        if _hooks.get_active() is self:
            _hooks.set_active(None)

    def __enter__(self) -> "VectorClockSanitizer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    @property
    def ok(self) -> bool:
        """True when no races have been reported."""
        return not self.reports

    @property
    def access_count(self) -> int:
        """Total shared-location accesses recorded so far."""
        return self.accesses_tracked

    def render(self) -> str:
        """Terminal summary of the run."""
        lines = [
            f"vector-clock sanitizer: {self.accesses_tracked} accesses "
            f"across {len(self._locations)} locations, "
            f"{self.locks_created} tracked locks, {self.sync_events} sync "
            f"events, {len(self.reports)} race(s)"
        ]
        for report in self.reports:
            lines.append(report.render())
        return "\n".join(lines)

    # -- thread bookkeeping ---------------------------------------------
    # Safe with or without the state lock: a thread only ever creates
    # and mutates its own entry, and the individual dict operations are
    # GIL-atomic.
    def _me(self) -> _ThreadState:
        ident = threading.get_ident()
        state = self._threads.get(ident)
        if state is None:
            name = threading.current_thread().name
            state = self._threads[ident] = _ThreadState(ident, name)
            pending = self._pending_forks.pop(name, None)
            if pending is not None:
                _merge(state.clock, pending)
            self._ident_by_name[name] = ident
        return state

    def _tick(self, state: _ThreadState) -> None:
        ident = threading.get_ident()
        state.clock[ident] = state.clock.get(ident, 0) + 1

    # -- hook surface (called via repro.check.hooks) -------------------
    def make_lock(self, name: str) -> VCTrackedLock:
        with self._state_lock:
            unique = self._names.unique(name)
            self.locks_created += 1
        return VCTrackedLock(self, unique)

    def wrap_store(self, store: Any) -> SanitizedLabelStore:
        # The write-tracking proxy is engine-agnostic: it only calls
        # back into record_access, which both detectors implement.
        return SanitizedLabelStore(store, self)

    # Lock acquire/release run WITHOUT the state lock: they are the
    # per-commit hot path, and everything they touch has a natural
    # owner — ``state`` belongs to the current thread, ``lock.clock``
    # is only read/written while *holding* that lock, and the dict
    # lookups in ``_me`` are GIL-atomic.  Taking the global state lock
    # here triply serialized every commit across workers.
    def _on_acquire(self, lock: VCTrackedLock) -> None:
        state = self._me()
        _merge(state.clock, lock.clock)
        if self.lock_order is not None:
            self.lock_order.note_acquire(tuple(state.held), lock.name)
        state.held.append(lock.name)

    def _on_release(self, lock: VCTrackedLock) -> None:
        state = self._me()
        _merge(lock.clock, state.clock)
        self._tick(state)
        held = state.held
        for i in range(len(held) - 1, -1, -1):
            if held[i] == lock.name:
                del held[i]
                break

    def thread_fork(self, child_name: str) -> None:
        with self._state_lock:
            state = self._me()
            self._pending_forks[child_name] = dict(state.clock)
            self._tick(state)
            self.sync_events += 1

    def thread_join(self, child_name: str) -> None:
        # The hook is called after the real Thread.join returns, so the
        # child's clock is quiescent and safe to read here.
        with self._state_lock:
            state = self._me()
            ident = self._ident_by_name.get(child_name)
            child = self._threads.get(ident) if ident is not None else None
            if child is not None:
                _merge(state.clock, child.clock)
            self.sync_events += 1

    def send_event(self, channel: str) -> Clock:
        with self._state_lock:
            state = self._me()
            token = dict(state.clock)
            chan = self._channels.setdefault(channel, {})
            _merge(chan, token)
            self._tick(state)
            self.sync_events += 1
            return token

    def recv_event(self, channel: str, token: Optional[Clock] = None) -> None:
        with self._state_lock:
            state = self._me()
            source = token if token is not None else self._channels.get(channel)
            if source:
                _merge(state.clock, source)
            self.sync_events += 1

    def barrier_event(self, name: str, phase: str) -> None:
        with self._state_lock:
            state = self._me()
            clock = self._barriers.setdefault(name, {})
            if phase == "arrive":
                _merge(clock, state.clock)
                self._tick(state)
            else:
                _merge(state.clock, clock)
            self.sync_events += 1

    # -- the race check ------------------------------------------------
    def record_access(self, location: str, write: bool = True) -> None:
        ident = threading.get_ident()
        report: Optional[VCRaceReport] = None
        with self._state_lock:
            self.accesses_tracked += 1
            state = self._me()
            tick = state.clock.get(ident, 0)
            loc = self._locations.get(location)
            if loc is None:
                loc = self._locations[location] = _LocationState()
            prev = loc.write
            if (
                write
                and prev is not None
                and prev.ident == ident
                and not loc.reads
            ):
                # Same-owner re-write (the FastTrack "same epoch" hot
                # path): ordered after our own previous write by
                # program order, and with no reads since there is
                # nothing new to check.  Refresh the epoch in place and
                # keep the streak-opening stack as the diagnostic.
                prev.tick = tick
                prev.info.tick = tick
                self.fastpath_hits += 1
                return
            # Skip this frame and the hook/proxy frame that called it.
            info = VCAccess(
                thread=state.name,
                ident=ident,
                tick=tick,
                write=write,
                stack=_capture_stack(2),
            )
            racing = self._conflict(loc, state.clock, ident, write)
            if racing is not None and not loc.reported:
                report = VCRaceReport(
                    location=location, first=racing.info, second=info
                )
                self.reports.append(report)
                loc.reported = True
            epoch = _Epoch(ident, tick, info)
            if write:
                loc.write = epoch
                loc.reads = {}
            else:
                loc.reads[ident] = epoch
        if report is not None and self.raise_on_race:
            raise CheckError(report.render())

    def _conflict(
        self, loc: _LocationState, clock: Clock, ident: int, write: bool
    ) -> Optional[_Epoch]:
        """The first prior epoch not ordered before this access, if any."""
        prev = loc.write
        if prev is not None and prev.ident != ident:
            if clock.get(prev.ident, 0) < prev.tick:
                return prev
        if write:
            for read in loc.reads.values():
                if read.ident != ident and (
                    clock.get(read.ident, 0) < read.tick
                ):
                    return read
        return None


def get_vc_sanitizer() -> Optional[VectorClockSanitizer]:
    """The currently installed vector-clock sanitizer, or ``None``."""
    active = _hooks.get_active()
    return active if isinstance(active, VectorClockSanitizer) else None
