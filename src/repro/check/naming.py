"""Lock-identity naming shared by the dynamic analysis engines.

``repro.check.hooks.make_lock`` names locks by *call site* ("the
ThreadComm gather lock"), not by *instance* — two communicators both
register ``"ThreadComm._gather_lock"``.  Analyses keyed on the name
(the deadlock lock-order graph, rendered locksets, vector-clock lock
clocks) would silently merge the acquisition histories of distinct
locks, which both hides real inversions (an edge recorded on instance
A pairs with an edge from instance B) and fabricates impossible ones.
:class:`LockNameRegistry` keeps the human name as the *base* and
appends a per-instance ``#k`` suffix from the second registration on,
so every lock object owns a unique identity while reports stay
readable.

:func:`base_name` strips the suffix (and any dotted/``self.`` prefix)
back off for the heuristic matching the deadlock analyzer does between
runtime lock names and static ``with <expr>`` source text.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["LockNameRegistry", "base_name"]


class LockNameRegistry:
    """Allocates unique display names for possibly-duplicate lock names.

    Not thread-safe by itself: engines call :meth:`unique` from
    ``make_lock``, which happens under their own state lock (or before
    threads exist).
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def unique(self, name: str) -> str:
        """*name* on first registration, ``name#2``/``name#3``... after."""
        count = self._counts.get(name, 0) + 1
        self._counts[name] = count
        return name if count == 1 else f"{name}#{count}"


def base_name(name: str) -> str:
    """The comparable base of a lock identity.

    Strips the per-instance ``#k`` suffix and every dotted qualifier:
    ``"ThreadComm._gather_lock#2"`` and the static source text
    ``"self._gather_lock"`` both normalise to ``"_gather_lock"``, which
    is what lets runtime acquisition edges pair with static nested
    ``with`` blocks.
    """
    head, _, _ = name.partition("#")
    return head.rsplit(".", 1)[-1].strip()
