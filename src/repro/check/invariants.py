"""Label-invariant verification for built :class:`PLLIndex` objects.

A 2-hop-cover index can be *silently* wrong: a commit-ordering bug or a
bad merge produces an index that still answers most queries correctly
and only disagrees with Dijkstra on the pairs whose shortest paths run
through the corrupted labels.  This verifier checks the structural
invariants every correct ParaPLL index must satisfy — the properties
Proposition 1's proof actually uses:

* ``hubs_sorted`` — finalized labels are strictly increasing in hub
  rank (the merge-join query requires it), with ranks in range.
* ``distances_valid`` — every stored distance is finite, non-NaN and
  non-negative (positive weights ⇒ no negative distances).
* ``self_label`` — every vertex carries its own hub at distance 0;
  the pruning test can never prune the root's own label because all
  other hubs sit at strictly positive distance.
* ``minimality`` — no label is dominated by an earlier hub: for
  ``(h, d)`` in ``L(v)``, no common hub ``h' < h`` of ``v`` and the
  hub vertex gives a path ``<= d``.  A *serial* build produces the
  canonical (minimal) labeling, so any dominated label there is a bug;
  parallel builds legitimately carry redundant labels (the paper's
  Table 5), so domination is reported as a count and only fails the
  check in ``strict_minimality`` mode.
* ``two_hop_exact`` — on a seeded sample of pairs, index distances
  match a fresh Dijkstra run exactly (absolute tolerance for float
  summation order).

Results come back as an :class:`InvariantReport`; ``parapll check
index`` renders it, and the perf suite records the pass/fail flag and
violation counts into every ``BENCH_<tag>.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import CheckError
from repro.types import INF

__all__ = ["InvariantViolation", "CheckResult", "InvariantReport", "verify_index"]


@dataclass(frozen=True)
class InvariantViolation:
    """One concrete invariant breach."""

    check: str
    detail: str
    vertex: Optional[int] = None


@dataclass
class CheckResult:
    """Outcome of one named check."""

    name: str
    status: str  # "passed" | "failed" | "skipped"
    detail: str = ""


@dataclass
class InvariantReport:
    """Everything one verification run established."""

    checks: List[CheckResult] = field(default_factory=list)
    violations: List[InvariantViolation] = field(default_factory=list)
    #: Labels dominated by an earlier hub (redundant, not incorrect).
    redundant_labels: int = 0
    #: (source, target) pairs compared against Dijkstra.
    sampled_pairs: int = 0

    @property
    def ok(self) -> bool:
        """True when no check failed (skipped checks don't fail)."""
        return all(c.status != "failed" for c in self.checks)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def check(self, name: str) -> CheckResult:
        """Look up one check's result by name."""
        for c in self.checks:
            if c.name == name:
                return c
        raise CheckError(f"no invariant check named {name!r}")

    def render(self) -> str:
        """Terminal summary."""
        mark = {"passed": "ok", "failed": "FAIL", "skipped": "skip"}
        lines = ["index invariants:"]
        for c in self.checks:
            detail = f"  ({c.detail})" if c.detail else ""
            lines.append(f"  {c.name:<16} {mark[c.status]}{detail}")
        for v in self.violations[:20]:
            where = f" at vertex {v.vertex}" if v.vertex is not None else ""
            lines.append(f"  violation [{v.check}]{where}: {v.detail}")
        if len(self.violations) > 20:
            lines.append(f"  ... {len(self.violations) - 20} more")
        lines.append(
            f"  verdict: {'PASS' if self.ok else 'FAIL'} "
            f"({len(self.violations)} violation(s), "
            f"{self.redundant_labels} redundant label(s), "
            f"{self.sampled_pairs} sampled pair(s))"
        )
        return "\n".join(lines)


#: Cap on recorded violations per check, so a systematically broken
#: index produces a readable report instead of millions of entries.
_MAX_RECORD = 100


def verify_index(
    index,
    graph=None,
    samples: int = 64,
    seed: int = 0,
    atol: float = 1e-9,
    strict_minimality: bool = False,
    check_minimality: bool = True,
) -> InvariantReport:
    """Verify the structural invariants of a built index.

    Args:
        index: a :class:`~repro.core.index.PLLIndex`.
        graph: graph for the sampled exactness check (defaults to
            ``index.graph``; without one the check is skipped).
        samples: number of sampled (source, target) pairs.
        seed: RNG seed for the pair sample (deterministic reports).
        atol: absolute tolerance for float distance comparison.
        strict_minimality: fail (not just count) on dominated labels —
            correct for serial builds, which are canonical.
        check_minimality: set False to skip the O(entries × avg-label)
            domination scan on very large indexes.

    Returns:
        The :class:`InvariantReport`; inspect ``report.ok``.
    """
    report = InvariantReport()
    store = index.store
    store.finalize()
    n = store.n
    rank = index.rank

    # -- hubs_sorted ---------------------------------------------------
    bad = 0
    for v in range(n):
        hubs = store.finalized_hubs(v)
        if len(hubs) and (
            int(hubs.min()) < 0 or int(hubs.max()) >= n
        ):
            bad += 1
            _record(report, "hubs_sorted", v, "hub rank out of range")
            continue
        if np.any(hubs[1:] <= hubs[:-1]):
            bad += 1
            _record(
                report, "hubs_sorted", v,
                "hub ranks not strictly increasing after finalize",
            )
    _result(report, "hubs_sorted", bad, f"{n} vertices")

    # -- distances_valid ----------------------------------------------
    bad = 0
    for v in range(n):
        dists = store.finalized_dists(v)
        if len(dists) == 0:
            continue
        if np.any(~np.isfinite(dists)) or np.any(dists < 0):
            bad += 1
            _record(
                report, "distances_valid", v,
                "non-finite or negative label distance",
            )
    _result(report, "distances_valid", bad, f"{store.total_entries} entries")

    # -- self_label ----------------------------------------------------
    bad = 0
    for v in range(n):
        r = int(rank[v])
        hubs = store.finalized_hubs(v)
        pos = int(np.searchsorted(hubs, r))
        if pos >= len(hubs) or int(hubs[pos]) != r:
            bad += 1
            _record(report, "self_label", v, "missing own hub at distance 0")
            continue
        if abs(float(store.finalized_dists(v)[pos])) > atol:
            bad += 1
            _record(
                report, "self_label", v,
                f"own-hub distance {store.finalized_dists(v)[pos]} != 0",
            )
    _result(report, "self_label", bad)

    # -- minimality (domination by an earlier hub) ---------------------
    if check_minimality:
        order = np.asarray(index.order, dtype=np.int64)
        dominated = 0
        bad = 0
        for v in range(n):
            hubs_v = store.finalized_hubs(v)
            dists_v = store.finalized_dists(v)
            for i in range(len(hubs_v)):
                h = int(hubs_v[i])
                if h == int(rank[v]):
                    continue  # the self label is never dominated
                u = int(order[h])  # the hub vertex
                if _dominated(
                    store, u, v, h, float(dists_v[i]), atol
                ):
                    dominated += 1
                    if strict_minimality:
                        bad += 1
                        _record(
                            report, "minimality", v,
                            f"label (hub rank {h}, d={float(dists_v[i])}) "
                            "dominated by an earlier common hub",
                        )
        report.redundant_labels = dominated
        if strict_minimality:
            _result(report, "minimality", bad, f"{dominated} dominated")
        else:
            _result(
                report, "minimality", 0,
                f"{dominated} redundant (allowed for parallel builds)",
            )
    else:
        report.checks.append(
            CheckResult("minimality", "skipped", "disabled")
        )

    # -- two_hop_exact (sampled, vs. Dijkstra) -------------------------
    graph = graph if graph is not None else index.graph
    if graph is None:
        report.checks.append(
            CheckResult("two_hop_exact", "skipped", "no graph attached")
        )
    elif samples > 0:
        from repro.baselines.dijkstra import dijkstra_sssp

        rng = np.random.default_rng(seed)
        sources = rng.integers(0, n, size=max(1, samples // 8))
        bad = 0
        for s in np.unique(sources):
            truth = dijkstra_sssp(graph, int(s))
            targets = rng.integers(0, n, size=8)
            for t in targets:
                got = index.distance(int(s), int(t))
                want = float(truth[int(t)])
                report.sampled_pairs += 1
                if got == INF and want == INF:
                    continue
                if not math.isclose(got, want, rel_tol=0.0, abs_tol=atol):
                    bad += 1
                    _record(
                        report, "two_hop_exact", int(s),
                        f"distance({int(s)}, {int(t)}) = {got}, "
                        f"Dijkstra says {want}",
                    )
        _result(
            report, "two_hop_exact", bad, f"{report.sampled_pairs} pairs"
        )
    else:
        report.checks.append(
            CheckResult("two_hop_exact", "skipped", "samples=0")
        )

    return report


def _dominated(
    store, u: int, v: int, h: int, d: float, atol: float
) -> bool:
    """True when a common hub with rank < *h* covers (u, v) within *d*."""
    hu, du = store.finalized_hubs(u), store.finalized_dists(u)
    hv, dv = store.finalized_hubs(v), store.finalized_dists(v)
    i = j = 0
    while i < len(hu) and j < len(hv):
        a, b = int(hu[i]), int(hv[j])
        if a >= h or b >= h:
            break  # only hubs ranked earlier than h can dominate
        if a == b:
            if float(du[i]) + float(dv[j]) <= d + atol:
                return True
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return False


def _record(
    report: InvariantReport, check: str, vertex: Optional[int], detail: str
) -> None:
    if len(report.violations) < _MAX_RECORD:
        report.violations.append(
            InvariantViolation(check=check, detail=detail, vertex=vertex)
        )


def _result(
    report: InvariantReport, name: str, bad: int, detail: str = ""
) -> None:
    status = "failed" if bad else "passed"
    suffix = f"{bad} bad; {detail}" if bad and detail else detail
    report.checks.append(CheckResult(name, status, suffix))
