"""``repro.check``: correctness tooling for the ParaPLL codebase.

A concurrency-correctness analysis suite, all reachable through
``parapll check``:

* :mod:`repro.check.lint` — an AST-based static analyzer with
  project-specific rules (PC001–PC006, PC012): determinism in
  simulated paths, lock discipline around shared stores,
  float-distance comparison hygiene, worker exception hygiene, import
  layering, label-internal privacy, and the deprecated-shim ban.
* :mod:`repro.check.sanitizer` — an opt-in Eraser-style lockset race
  sanitizer that wraps the shared-memory build's hot objects
  (``LabelStore``, ``DynamicAssignment``, ``ThreadComm``) and reports
  any shared write whose candidate lockset becomes empty.
* :mod:`repro.check.vectorclock` — a FastTrack-style happens-before
  race detector over the same hook surface plus the synchronization
  events (thread fork/join, comm envelope send/recv, barriers);
  precise where the lockset engine over-approximates.
* :mod:`repro.check.deadlock` — lock-order analysis: the runtime
  acquisition graph (cycles) plus a static nested-``with`` pass
  (order inversions).
* :mod:`repro.check.dataflow` — a call graph with thread-role
  inference powering the interprocedural rules PC007–PC011.
* :mod:`repro.check.invariants` — a label-invariant verifier for built
  :class:`~repro.core.index.PLLIndex` objects (sorted hubs, finite
  non-negative distances, minimality, sampled 2-hop exactness against
  Dijkstra).
* :mod:`repro.check.corpus` — the seeded-defect corpus runner pinning
  each analyzer's detection power (``tests/corpus/``).
* :mod:`repro.check.report` — the common ``parapll-check/1`` JSON
  envelope every analyzer emits for CI.

The package sits *above* every runtime layer: ``repro.check`` may
import anything, but runtime modules may only import the dependency-free
:mod:`repro.check.hooks` facade (enforced by the linter's own layering
rule, PC005).
"""

from __future__ import annotations

from typing import Any

#: Lazy exports (PEP 562): runtime modules import the dependency-free
#: ``repro.check.hooks`` facade, and that import must not drag the
#: lint engine, the sanitizer, or the verifier (and their transitive
#: numpy/baselines dependencies) into every build.
_EXPORTS = {
    "InvariantReport": "repro.check.invariants",
    "verify_index": "repro.check.invariants",
    "LintReport": "repro.check.lint",
    "Violation": "repro.check.lint",
    "all_rules": "repro.check.lint",
    "lint_paths": "repro.check.lint",
    "load_suppressions": "repro.check.lint",
    "LocksetSanitizer": "repro.check.sanitizer",
    "RaceReport": "repro.check.sanitizer",
    "get_sanitizer": "repro.check.sanitizer",
    "VectorClockSanitizer": "repro.check.vectorclock",
    "VCRaceReport": "repro.check.vectorclock",
    "get_vc_sanitizer": "repro.check.vectorclock",
    "LockOrderRecorder": "repro.check.deadlock",
    "CallGraph": "repro.check.dataflow",
    "DataflowReport": "repro.check.dataflow",
    "analyze_paths": "repro.check.dataflow",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "InvariantReport",
    "verify_index",
    "LintReport",
    "Violation",
    "all_rules",
    "lint_paths",
    "load_suppressions",
    "LocksetSanitizer",
    "RaceReport",
    "get_sanitizer",
    "VectorClockSanitizer",
    "VCRaceReport",
    "get_vc_sanitizer",
    "LockOrderRecorder",
    "CallGraph",
    "DataflowReport",
    "analyze_paths",
]
