"""``repro.check``: correctness tooling for the ParaPLL codebase.

Three coordinated layers, all reachable through ``parapll check``:

* :mod:`repro.check.lint` — an AST-based static analyzer with
  project-specific rules: determinism in simulated paths, lock
  discipline around shared stores, float-distance comparison hygiene,
  worker exception hygiene, and import layering.
* :mod:`repro.check.sanitizer` — an opt-in Eraser-style lockset race
  sanitizer that wraps the shared-memory build's hot objects
  (``LabelStore``, ``DynamicAssignment``, ``ThreadComm``) and reports
  any shared write whose candidate lockset becomes empty.
* :mod:`repro.check.invariants` — a label-invariant verifier for built
  :class:`~repro.core.index.PLLIndex` objects (sorted hubs, finite
  non-negative distances, minimality, sampled 2-hop exactness against
  Dijkstra).

The package sits *above* every runtime layer: ``repro.check`` may
import anything, but runtime modules may only import the dependency-free
:mod:`repro.check.hooks` facade (enforced by the linter's own layering
rule, PC005).
"""

from __future__ import annotations

from typing import Any

#: Lazy exports (PEP 562): runtime modules import the dependency-free
#: ``repro.check.hooks`` facade, and that import must not drag the
#: lint engine, the sanitizer, or the verifier (and their transitive
#: numpy/baselines dependencies) into every build.
_EXPORTS = {
    "InvariantReport": "repro.check.invariants",
    "verify_index": "repro.check.invariants",
    "LintReport": "repro.check.lint",
    "Violation": "repro.check.lint",
    "all_rules": "repro.check.lint",
    "lint_paths": "repro.check.lint",
    "load_suppressions": "repro.check.lint",
    "LocksetSanitizer": "repro.check.sanitizer",
    "RaceReport": "repro.check.sanitizer",
    "get_sanitizer": "repro.check.sanitizer",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.check' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "InvariantReport",
    "verify_index",
    "LintReport",
    "Violation",
    "all_rules",
    "lint_paths",
    "load_suppressions",
    "LocksetSanitizer",
    "RaceReport",
    "get_sanitizer",
]
