"""Thread-role dataflow lints: a call graph with role inference.

The per-file rules in :mod:`repro.check.lint` cannot answer "is this
function *reachable from worker code*?" — which is exactly the
question behind the remaining concurrency bug classes.  This module
builds a lightweight whole-tree call graph (functions matched by
simple name, the same precision budget the rest of the lint engine
runs on), seeds **thread roles** at the known entry points, propagates
them caller→callee, and then runs interprocedural rules over every
function with each role:

* ``worker`` — builder worker bodies: the nested ``worker`` in
  :func:`repro.parallel.threads.build_parallel_threads`, anything
  passed as ``Thread(target=...)``, and worker-named functions.
* ``rank`` — per-rank cluster programs (``cluster_rank_program`` and
  ``rank_*`` / ``*_rank_program`` shaped names).
* ``sim`` — deterministically replayed code: everything in
  ``repro.sim`` plus ``simulate*`` / ``sim_*`` named functions.
* ``serve`` — request-path code: handler/dispatch/serve-named
  functions (seeded in ``repro.service`` and matching names anywhere).

Rule catalog (DESIGN.md §14; all support ``# lint-ok`` pragmas and the
checked-in suppression file exactly like PC001–PC006):

* **PC007** — worker/rank code mutating a shared store
  (``add`` / ``add_delta`` / ``merge_from`` / ``receive_labels``)
  without a hooks-managed lock held.  Stores constructed locally in
  the same function are rank-private and exempt.
* **PC008** — writes into the finalized (frozen / mmap-backed) CSR
  label arrays: subscript stores, augmented assigns or mutating
  method calls on the results of ``finalized_hubs()`` /
  ``finalized_dists()`` / ``finalized_arrays()``.
* **PC009** — blocking calls reachable from serve-role code without a
  timeout: ``create_connection`` / ``urlopen`` without ``timeout=``,
  untimed queue ``get`` / ``join``, argument-less ``wait()`` on
  event-ish objects, ``input()``.
* **PC010** — iteration over set-typed expressions in sim-role code
  (set displays, ``set()`` / ``frozenset()`` constructors, set
  comprehensions, or locals bound to them): Python set order varies
  per process, which breaks replay determinism.  Wrap in
  ``sorted(...)``.
* **PC011** — ``threading.Lock()`` / ``RLock()`` / ``Condition()``
  created directly in the concurrency layers (``repro.parallel`` /
  ``repro.cluster`` / ``repro.service``): locks there must come from
  ``repro.check.hooks.make_lock`` so the sanitizers and the deadlock
  recorder can see them.

PC012 (the ``repro.analysis`` shim import ban) lives with the other
import rules in :mod:`repro.check.lint`, but ``parapll check
dataflow`` runs it too so the PC007–PC012 catalog is one command.
"""

from __future__ import annotations

import ast
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.check.lint import (
    FileContext,
    ShimImportRule,
    Suppression,
    Violation,
    _inline_pragmas,
    iter_python_files,
)

__all__ = [
    "FunctionInfo",
    "CallGraph",
    "DataflowReport",
    "analyze_paths",
    "ROLES",
]

ROLES = ("worker", "rank", "sim", "serve")

#: Store-mutating calls (mirrors PC002's view of the commit surface).
_STORE_MUTATORS = {"add_delta", "merge_from", "receive_labels"}
_WEAK_MUTATORS = {"add"}

#: LabelStore finalized-view accessors whose results are frozen.
_FINALIZED_ACCESSORS = {
    "finalized_hubs", "finalized_dists", "finalized_arrays",
}

#: In-place methods that mutate an array/sequence result.
_MUTATING_METHODS = {
    "fill", "sort", "itemset", "resize", "put", "partition", "append",
    "extend", "clear",
}

#: Receiver names that look like blocking queues/mailboxes (PC009).
_QUEUEISH = ("queue", "box", "inbox", "mailbox")
_WAITISH = ("event", "cond", "barrier", "done", "ready", "stop")


def _is_lockish(text: str) -> bool:
    return "lock" in text.lower()


@dataclass
class FunctionInfo:
    """One function (or method) in the call graph."""

    qualname: str
    simple: str
    module: str
    path: str
    node: Any  # ast.FunctionDef | ast.AsyncFunctionDef
    calls: Set[str] = field(default_factory=set)
    roles: Set[str] = field(default_factory=set)


class CallGraph:
    """Simple-name-matched call graph over a set of files, with roles."""

    def __init__(self) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_simple: Dict[str, List[FunctionInfo]] = {}
        self.contexts: List[FileContext] = []
        #: Function simple names seen as ``Thread(target=...)``.
        self.thread_targets: Set[str] = set()

    # -- construction --------------------------------------------------
    def add_file(self, ctx: FileContext) -> None:
        self.contexts.append(ctx)
        self._collect(ctx, ctx.tree, prefix=ctx.module or ctx.path)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _call_simple_name(node)
                if name == "Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            target = _name_of(kw.value)
                            if target:
                                self.thread_targets.add(target)

    def _collect(self, ctx: FileContext, tree: ast.AST, prefix: str) -> None:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{prefix}.{node.name}",
                    simple=node.name,
                    module=ctx.module,
                    path=ctx.path,
                    node=node,
                )
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        name = _call_simple_name(sub)
                        if name:
                            info.calls.add(name)
                        for arg in list(sub.args) + [
                            kw.value for kw in sub.keywords
                        ]:
                            passed = _name_of(arg)
                            if passed:
                                info.calls.add(passed)
                self.functions.append(info)
                self.by_simple.setdefault(node.name, []).append(info)
                self._collect(ctx, node, prefix=f"{prefix}.{node.name}")
            elif isinstance(node, ast.ClassDef):
                self._collect(ctx, node, prefix=f"{prefix}.{node.name}")

    # -- role inference ------------------------------------------------
    def infer_roles(self) -> None:
        """Seed roles at known entry points, then propagate to callees."""
        for fn in self.functions:
            for role in self._seed_roles(fn):
                fn.roles.add(role)
        queue = deque(fn for fn in self.functions if fn.roles)
        while queue:
            fn = queue.popleft()
            for callee_name in fn.calls:
                for callee in self.by_simple.get(callee_name, ()):
                    missing = fn.roles - callee.roles
                    if missing:
                        callee.roles |= missing
                        queue.append(callee)

    def _seed_roles(self, fn: FunctionInfo) -> Set[str]:
        roles: Set[str] = set()
        name = fn.simple.lower()
        if "worker" in name or fn.simple in self.thread_targets:
            roles.add("worker")
        if (
            fn.simple == "cluster_rank_program"
            or name.startswith("rank_")
            or name.endswith("_rank_program")
        ):
            roles.add("rank")
        if (
            fn.module.startswith("repro.sim")
            or name.startswith("simulate")
            or name.startswith("sim_")
            or fn.simple == "run_roots"
        ):
            roles.add("sim")
        if (
            name == "handle"
            or name.startswith("_dispatch")
            or name.startswith("dispatch")
            or name.startswith("handle_")
            or name.startswith("serve")
        ):
            roles.add("serve")
        return roles


def _call_simple_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _name_of(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ----------------------------------------------------------------------
# Per-function rule checks
# ----------------------------------------------------------------------
def _local_store_names(fn_node: ast.AST) -> Set[str]:
    """Locals bound to a freshly constructed (rank-private) store."""
    out: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            callee = _call_simple_name(node.value)
            if callee in ("LabelStore", "wrap_store"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _under_lock(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """Whether *node* sits inside any lockish ``with`` block."""
    cur: Optional[ast.AST] = node
    while cur is not None:
        if isinstance(cur, (ast.With, ast.AsyncWith)):
            for item in cur.items:
                try:
                    text = ast.unparse(item.context_expr)
                except (ValueError, AttributeError):  # pragma: no cover
                    continue
                if _is_lockish(text):
                    return True
        cur = parents.get(cur)
    return False


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _violation(
    ctx: FileContext, node: ast.AST, rule: str, message: str, hint: str
) -> Violation:
    return Violation(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=message,
        hint=hint,
    )


def _check_pc007(ctx: FileContext, fn: FunctionInfo) -> Iterator[Violation]:
    """Worker/rank shared-store mutation without a hooks-managed lock."""
    if not ({"worker", "rank"} & fn.roles) or "sim" in fn.roles:
        return
    local_stores = _local_store_names(fn.node)
    parents = _parent_map(fn.node)
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
        ):
            continue
        attr = node.func.attr
        recv = ctx.text(node.func.value)
        recv_root = recv.split(".", 1)[0].split("[", 1)[0]
        storeish = "store" in recv.lower()
        if not (
            attr in _STORE_MUTATORS
            or (attr in _WEAK_MUTATORS and storeish)
        ):
            continue
        if recv_root in local_stores:
            continue
        if _under_lock(node, parents):
            continue
        role = "worker" if "worker" in fn.roles else "rank"
        yield _violation(
            ctx, node, "PC007",
            f"{role}-role function {fn.simple}() mutates shared store "
            f"via {recv}.{attr}(...) with no hooks-managed lock held",
            "wrap the commit in `with <hooks.make_lock(...)>:` or make "
            "the store function-local (rank-private stores are exempt)",
        )


def _check_pc008(ctx: FileContext, fn: FunctionInfo) -> Iterator[Violation]:
    """Writes into finalized (frozen/mmap) CSR label arrays."""
    frozen: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            value = node.value
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if isinstance(value, ast.Call) and _call_simple_name(
                value
            ) in _FINALIZED_ACCESSORS:
                frozen.update(names)
                # indptr, hubs, dists = store.finalized_arrays()
                for target in node.targets:
                    if isinstance(target, (ast.Tuple, ast.List)):
                        frozen.update(
                            e.id for e in target.elts
                            if isinstance(e, ast.Name)
                        )

    def is_frozen_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in frozen
        if isinstance(expr, ast.Call):
            return _call_simple_name(expr) in _FINALIZED_ACCESSORS
        if isinstance(expr, ast.Subscript):
            return is_frozen_expr(expr.value)
        return False

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and is_frozen_expr(
                    target.value
                ):
                    yield _violation(
                        ctx, node, "PC008",
                        f"write into frozen label array "
                        f"`{ctx.text(target)}` — finalized CSR views "
                        "are read-only (and mmap-backed stores would "
                        "fault or corrupt the file)",
                        "copy first (`arr = arr.copy()`) or go through "
                        "LabelStore mutation APIs before finalize()",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and is_frozen_expr(node.func.value)
        ):
            yield _violation(
                ctx, node, "PC008",
                f"in-place `{node.func.attr}()` on frozen label array "
                f"`{ctx.text(node.func.value)}`",
                "copy the array before mutating it",
            )


def _check_pc009(ctx: FileContext, fn: FunctionInfo) -> Iterator[Violation]:
    """Blocking calls reachable from serve-role code without timeouts."""
    if "serve" not in fn.roles:
        return
    settimeout_recvs: Set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "settimeout"
        ):
            settimeout_recvs.add(ctx.text(node.func.value))
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        kwargs = {kw.arg for kw in node.keywords}
        func = node.func
        simple = _call_simple_name(node)
        if simple in ("create_connection", "urlopen"):
            timed = "timeout" in kwargs or len(node.args) >= 2
            if not timed:
                yield _violation(
                    ctx, node, "PC009",
                    f"serve-path call {ctx.text(func)}(...) has no "
                    "timeout — one stuck peer wedges the request thread",
                    "pass timeout= (the serve path must always bound "
                    "its blocking calls)",
                )
            continue
        if simple == "input":
            yield _violation(
                ctx, node, "PC009",
                "serve-path input() blocks on a terminal forever",
                "serve-role code must not read stdin",
            )
            continue
        if not isinstance(func, ast.Attribute):
            continue
        recv = ctx.text(func.value)
        recv_l = recv.lower()
        if func.attr in ("get", "join") and any(
            q in recv_l for q in _QUEUEISH
        ):
            if "timeout" not in kwargs and not node.args:
                yield _violation(
                    ctx, node, "PC009",
                    f"untimed {recv}.{func.attr}() on the serve path "
                    "blocks indefinitely when the producer dies",
                    "pass a timeout and convert Empty into a 503-style "
                    "error response",
                )
        elif func.attr == "wait" and not node.args and (
            "timeout" not in kwargs
        ) and any(w in recv_l for w in _WAITISH):
            yield _violation(
                ctx, node, "PC009",
                f"untimed {recv}.wait() on the serve path",
                "pass wait(timeout=...) and handle the False return",
            )
        elif func.attr in ("accept", "connect") and "sock" in recv_l:
            if recv not in settimeout_recvs:
                yield _violation(
                    ctx, node, "PC009",
                    f"{recv}.{func.attr}() without a prior "
                    f"{recv}.settimeout(...) in {fn.simple}()",
                    "call settimeout() on the socket before blocking "
                    "operations on the serve path",
                )


#: Set-producing call names (PC010).
_SET_CALLS = {"set", "frozenset"}


def _is_set_expr(node: ast.expr, set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_simple_name(node) in _SET_CALLS
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_locals) or _is_set_expr(
            node.right, set_locals
        )
    return False


def _check_pc010(ctx: FileContext, fn: FunctionInfo) -> Iterator[Violation]:
    """Nondeterministic set iteration in sim-replayed code."""
    if "sim" not in fn.roles:
        return
    set_locals: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and _is_set_expr(
            node.value, set()
        ):
            set_locals.update(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
    for node in ast.walk(fn.node):
        iters: List[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, set_locals):
                yield _violation(
                    ctx, node, "PC010",
                    f"sim-role function {fn.simple}() iterates over a "
                    f"set (`{ctx.text(it)}`): set order varies per "
                    "process, so replayed runs diverge",
                    "iterate `sorted(<set>)` (or switch to a list/"
                    "dict, which preserve insertion order)",
                )


#: Modules whose locks must come from hooks.make_lock (PC011).
_PC011_PREFIXES = ("repro.parallel", "repro.cluster", "repro.service")
_LOCK_CTORS = {"Lock", "RLock", "Condition"}


def _check_pc011(ctx: FileContext) -> Iterator[Violation]:
    """Untracked lock construction in the concurrency layers.

    File-scoped rather than function-scoped: module-level locks are the
    most common offenders.  Applies to the concurrency-layer modules
    and to unanchored files (corpus snippets).
    """
    module = ctx.module
    if module and not any(
        module == p or module.startswith(p + ".") for p in _PC011_PREFIXES
    ):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ) and func.value.id == "threading":
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name in _LOCK_CTORS:
            yield _violation(
                ctx, node, "PC011",
                f"direct threading.{name}() in a concurrency layer — "
                "the sanitizers and the deadlock recorder cannot see "
                "this lock",
                "create it via repro.check.hooks.make_lock(\"<name>\") "
                "(a plain Lock when no sanitizer is installed)",
            )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class DataflowReport:
    """Everything one dataflow-lint run produced."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    functions: int = 0
    roles: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


def analyze_paths(
    paths: Sequence[str],
    suppressions: Optional[Sequence[Suppression]] = None,
) -> DataflowReport:
    """Run the role-inference dataflow lints (PC007–PC011 + PC012).

    Builds the call graph over every file first (roles propagate across
    files), then checks each function with its inferred roles.  Inline
    ``# lint-ok`` pragmas and suppression entries apply as in
    :func:`repro.check.lint.lint_paths`.
    """
    suppressions = list(suppressions or ())
    graph = CallGraph()
    report = DataflowReport()
    shim_rule = ShimImportRule()
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            ctx = FileContext(path, source)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    path=path.replace(os.sep, "/"),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="PC000",
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error",
                )
            )
            continue
        graph.add_file(ctx)
        report.files_checked += 1
    graph.infer_roles()
    report.functions = len(graph.functions)
    for role in ROLES:
        report.roles[role] = sum(
            1 for fn in graph.functions if role in fn.roles
        )

    found: List[Violation] = []
    by_path: Dict[str, List[FunctionInfo]] = {}
    for fn in graph.functions:
        by_path.setdefault(fn.path, []).append(fn)
    for ctx in graph.contexts:
        file_hits: List[Violation] = []
        for fn in by_path.get(ctx.path, ()):
            file_hits.extend(_check_pc007(ctx, fn))
            file_hits.extend(_check_pc008(ctx, fn))
            file_hits.extend(_check_pc009(ctx, fn))
            file_hits.extend(_check_pc010(ctx, fn))
        file_hits.extend(_check_pc011(ctx))
        if shim_rule.applies_to(ctx.module):
            file_hits.extend(shim_rule.check(ctx))
        pragmas = _inline_pragmas(ctx.lines)
        for violation in file_hits:
            ids = pragmas.get(violation.line, ())
            if ids is None or (ids and violation.rule in ids):
                report.suppressed.append(violation)
                continue
            found.append(violation)

    for violation in found:
        for supp in suppressions:
            if supp.matches(violation):
                report.suppressed.append(violation)
                break
        else:
            report.violations.append(violation)
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report
