"""No-op hook points the runtime calls into the race sanitizer through.

This module is the *only* part of :mod:`repro.check` that runtime code
(``repro.parallel``, ``repro.cluster``) may import — a rule the linter
itself enforces (PC005).  It therefore imports nothing from the rest of
the package: when the sanitizer is inactive every hook is a single
global read plus a ``None`` check, cheap enough to leave in hot-ish
paths (locks are created once, accesses are recorded per task, never
per label probe).

The active sanitizer registers itself via :func:`set_active`; see
:mod:`repro.check.sanitizer` for the actual lockset machinery.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

__all__ = [
    "set_active",
    "get_active",
    "is_active",
    "make_lock",
    "access",
    "wrap_store",
    "unwrap_store",
]

#: The active sanitizer object, or ``None``.  Typed loosely on purpose:
#: this module must not import :mod:`repro.check.sanitizer`.
_active: Optional[Any] = None


def set_active(sanitizer: Optional[Any]) -> None:
    """Install (or, with ``None``, remove) the active sanitizer."""
    global _active
    _active = sanitizer


def get_active() -> Optional[Any]:
    """The active sanitizer, or ``None``."""
    return _active


def is_active() -> bool:
    """True when a sanitizer is currently installed."""
    return _active is not None


def make_lock(name: str) -> Any:
    """A lock for *name*: plain ``threading.Lock`` normally, a tracked
    lock (recorded in the per-thread lockset) under the sanitizer."""
    s = _active
    if s is None:
        return threading.Lock()
    return s.make_lock(name)


def access(location: str, write: bool = True) -> None:
    """Record one shared-state access at *location* (no-op normally)."""
    s = _active
    if s is not None:
        s.record_access(location, write=write)


def wrap_store(store: Any) -> Any:
    """Wrap a :class:`~repro.core.labels.LabelStore` for access
    tracking; the identity function when the sanitizer is inactive."""
    s = _active
    if s is None:
        return store
    return s.wrap_store(store)


def unwrap_store(store: Any) -> Any:
    """Undo :func:`wrap_store` (after the concurrent phase ends, e.g.
    before the single-threaded ``finalize()``)."""
    inner = getattr(store, "_san_inner", None)
    return store if inner is None else inner
