"""No-op hook points the runtime calls into the race sanitizers through.

This module is the *only* part of :mod:`repro.check` that runtime code
(``repro.parallel``, ``repro.cluster``, ``repro.sim``,
``repro.service``) may import — a rule the linter itself enforces
(PC005).  It therefore imports nothing from the rest of the package:
when no sanitizer is active every hook is a single global read plus a
``None`` check, cheap enough to leave in hot-ish paths (locks are
created once, accesses are recorded per task, never per label probe).

Two hook families:

* **lockset surface** (``make_lock`` / ``access`` / ``wrap_store``) —
  consumed by both the Eraser-style lockset sanitizer
  (:mod:`repro.check.sanitizer`) and the happens-before vector-clock
  detector (:mod:`repro.check.vectorclock`).
* **synchronization events** (``fork`` / ``join`` / ``send`` /
  ``recv`` / ``barrier``) — happens-before edges only the vector-clock
  detector consumes: thread creation/join in the builders, comm
  envelope send/receive in ``SimComm``/``ThreadComm``, and barrier
  arrive/depart pairs.  Engines that do not understand an event (the
  lockset sanitizer) simply lack the method and the hook stays a no-op,
  so the two detectors share one instrumentation surface.

The active sanitizer registers itself via :func:`set_active`.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

__all__ = [
    "set_active",
    "get_active",
    "is_active",
    "make_lock",
    "access",
    "wrap_store",
    "unwrap_store",
    "fork",
    "join",
    "send",
    "recv",
    "barrier",
]

#: The active sanitizer object, or ``None``.  Typed loosely on purpose:
#: this module must not import :mod:`repro.check.sanitizer`.
_active: Optional[Any] = None


def set_active(sanitizer: Optional[Any]) -> None:
    """Install (or, with ``None``, remove) the active sanitizer."""
    global _active
    _active = sanitizer


def get_active() -> Optional[Any]:
    """The active sanitizer, or ``None``."""
    return _active


def is_active() -> bool:
    """True when a sanitizer is currently installed."""
    return _active is not None


def make_lock(name: str) -> Any:
    """A lock for *name*: plain ``threading.Lock`` normally, a tracked
    lock (recorded in the per-thread lockset) under the sanitizer."""
    s = _active
    if s is None:
        return threading.Lock()
    return s.make_lock(name)


def access(location: str, write: bool = True) -> None:
    """Record one shared-state access at *location* (no-op normally)."""
    s = _active
    if s is not None:
        s.record_access(location, write=write)


def wrap_store(store: Any) -> Any:
    """Wrap a :class:`~repro.core.labels.LabelStore` for access
    tracking; the identity function when the sanitizer is inactive."""
    s = _active
    if s is None:
        return store
    return s.wrap_store(store)


def unwrap_store(store: Any) -> Any:
    """Undo :func:`wrap_store` (after the concurrent phase ends, e.g.
    before the single-threaded ``finalize()``)."""
    inner = getattr(store, "_san_inner", None)
    return store if inner is None else inner


# ----------------------------------------------------------------------
# Synchronization events (vector-clock happens-before edges)
# ----------------------------------------------------------------------
def fork(child_name: str) -> None:
    """The calling thread is about to start a thread named *child_name*.

    Establishes the fork happens-before edge: everything the parent did
    so far happens-before everything the child will do.
    """
    s = _active
    if s is not None:
        fn = getattr(s, "thread_fork", None)
        if fn is not None:
            fn(child_name)


def join(child_name: str) -> None:
    """The calling thread has joined the thread named *child_name*.

    Establishes the join edge: everything the child did happens-before
    everything the caller does from here on.
    """
    s = _active
    if s is not None:
        fn = getattr(s, "thread_join", None)
        if fn is not None:
            fn(child_name)


def send(channel: str) -> Optional[Any]:
    """Record one message departure on *channel*.

    Returns an opaque token to pass to :func:`recv` alongside the
    message (``None`` when no happens-before engine is active).  The
    token pins the edge to this exact message; a token-less ``recv``
    falls back to the channel's accumulated clock, which is sound for
    FIFO channels but coarser.
    """
    s = _active
    if s is None:
        return None
    fn = getattr(s, "send_event", None)
    return fn(channel) if fn is not None else None


def recv(channel: str, token: Optional[Any] = None) -> None:
    """Record one message arrival on *channel* (see :func:`send`)."""
    s = _active
    if s is not None:
        fn = getattr(s, "recv_event", None)
        if fn is not None:
            fn(channel, token)


def barrier(name: str, phase: str) -> None:
    """Record a barrier crossing: ``phase`` is ``"arrive"`` (before the
    wait — merge my history into the barrier) or ``"depart"`` (after
    the wait — inherit everyone's pre-barrier history)."""
    s = _active
    if s is not None:
        fn = getattr(s, "barrier_event", None)
        if fn is not None:
            fn(name, phase)
