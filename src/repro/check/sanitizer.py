"""Eraser-style lockset race sanitizer for the shared-memory build.

The threaded builder's correctness argument (Proposition 1 +
``LabelStore.add``'s distance-before-hub commit ordering) depends on
one discipline: **every write to shared state happens under a lock**.
This module checks that discipline dynamically, the way Eraser
(Savage et al., SOSP '97) does:

* every lock handed out by :func:`repro.check.hooks.make_lock` is a
  :class:`TrackedLock` whose acquire/release maintains a per-thread
  lockset;
* every tracked shared location keeps a *candidate lockset* — the
  intersection of the locksets held at each access since the location
  became shared;
* a write whose candidate lockset becomes empty is a (potential) race,
  reported with the stacks, threads and locks of both conflicting
  accesses — whether or not the interleaving actually corrupted
  anything on this run.

Two deliberate deviations from textbook Eraser, documented in
DESIGN.md §9:

* ``LabelStore`` *reads* are exempt: the pruning loop reads lock-free
  by design, made safe by the store's publication protocol (distance
  appended before hub, atomic under the GIL).  Only the commit side is
  lockset-checked.
* ``ThreadComm``'s allgather slot reads are exempt: they are ordered
  by barriers, which a lockset cannot model.  Slot writes (under the
  gather lock) are tracked.

The sanitizer is strictly opt-in: install one with
:meth:`LocksetSanitizer.install` (or the :func:`enable_from_env`
helper keyed on ``PARAPLL_SANITIZE=1``) and the runtime hooks in
:mod:`repro.check.hooks` start routing locks and accesses here; the
rest of the time every hook is a no-op.
"""

from __future__ import annotations

import itertools
import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.check import hooks as _hooks
from repro.check.naming import LockNameRegistry
from repro.errors import CheckError

__all__ = [
    "AccessInfo",
    "RaceReport",
    "TrackedLock",
    "LocksetSanitizer",
    "get_sanitizer",
    "enable_from_env",
    "ENV_FLAG",
]

#: Environment variable that opts the process into sanitizing.
ENV_FLAG = "PARAPLL_SANITIZE"

#: Frames of context captured per access (cost is paid only when on).
_STACK_LIMIT = 16

# Location lifecycle (Eraser's state machine).
_VIRGIN = "virgin"
_EXCLUSIVE = "exclusive"
_SHARED = "shared"
_SHARED_MOD = "shared-modified"
_REPORTED = "reported"


@dataclass
class AccessInfo:
    """One recorded access: who, with which locks, from where."""

    thread: str
    write: bool
    locks: Tuple[str, ...]
    stack: List[str]

    def render(self) -> str:
        kind = "write" if self.write else "read"
        locks = ", ".join(self.locks) if self.locks else "<none>"
        head = f"{kind} by thread {self.thread!r} holding [{locks}]"
        return head + "\n" + "".join(f"    {s}" for s in self.stack)


@dataclass
class RaceReport:
    """A shared location whose candidate lockset became empty."""

    location: str
    first: AccessInfo
    second: AccessInfo

    def render(self) -> str:
        return (
            f"RACE on {self.location}: no lock consistently protects it\n"
            f"  earlier access: {self.first.render()}\n"
            f"  racing access:  {self.second.render()}"
        )


class _LocationState:
    __slots__ = ("state", "owner", "lockset", "last")

    def __init__(self) -> None:
        self.state = _VIRGIN
        self.owner: Optional[int] = None
        #: Candidate lockset; ``None`` means "all locks" (not yet shared).
        self.lockset: Optional[FrozenSet[int]] = None
        self.last: Optional[AccessInfo] = None


class TrackedLock:
    """A ``threading.Lock`` that maintains the per-thread lockset.

    Drop-in for the subset of the Lock API this codebase uses
    (``acquire`` / ``release`` / context manager / ``locked``).
    """

    _ids = itertools.count(1)

    def __init__(self, sanitizer: "LocksetSanitizer", name: str) -> None:
        self._inner = threading.Lock()
        self._sanitizer = sanitizer
        self.name = name
        self.lock_id = next(self._ids)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._sanitizer._held(add=self)
        return got

    def release(self) -> None:
        self._sanitizer._held(remove=self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedLock({self.name!r})"


class SanitizedLabelStore:
    """Write-tracking proxy around a :class:`~repro.core.labels.LabelStore`.

    Mutations (``add`` / ``add_delta`` / ``merge_from``) record a
    tracked write; reads delegate straight to the inner store (bound as
    instance attributes so the hot pruning path pays no ``__getattr__``
    dispatch).  Use :func:`repro.check.hooks.unwrap_store` before the
    single-threaded finalize phase.
    """

    _ids = itertools.count(1)

    def __init__(self, inner: Any, sanitizer: "LocksetSanitizer") -> None:
        self._san_inner = inner
        self._sanitizer = sanitizer
        self._location = f"LabelStore#{next(self._ids)}.labels"
        # Hot read paths, bound once.
        self.hubs_of = inner.hubs_of
        self.dists_of = inner.dists_of
        self.entries_of = inner.entries_of
        self.label_size = inner.label_size

    @property
    def n(self) -> int:
        return self._san_inner.n

    def add(self, v: int, hub_rank: int, dist: float) -> None:
        self._sanitizer.record_access(self._location, write=True)
        self._san_inner.add(v, hub_rank, dist)

    def add_delta(self, delta: Any) -> int:
        self._sanitizer.record_access(self._location, write=True)
        return self._san_inner.add_delta(delta)

    def merge_from(self, other: Any) -> int:
        self._sanitizer.record_access(self._location, write=True)
        return self._san_inner.merge_from(other)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._san_inner, name)


class LocksetSanitizer:
    """The lockset engine: tracks locks held and shared accesses.

    Args:
        raise_on_race: raise :class:`~repro.errors.CheckError` at the
            racing access (default: record into :attr:`reports` and
            keep going, so one run surfaces every racy location).
        lock_order: optional
            :class:`~repro.check.deadlock.LockOrderRecorder` fed with
            every (held, acquiring) pair, so one sanitized run also
            yields the lock-acquisition graph for deadlock analysis.
    """

    def __init__(
        self, raise_on_race: bool = False,
        lock_order: Optional[Any] = None,
    ) -> None:
        self.raise_on_race = raise_on_race
        self.lock_order = lock_order
        self.reports: List[RaceReport] = []
        self.accesses_tracked = 0
        self.locks_created = 0
        self._tls = threading.local()
        self._state: Dict[str, _LocationState] = {}
        self._state_lock = threading.Lock()
        self._lock_names: Dict[int, str] = {}
        self._names = LockNameRegistry()

    # -- lifecycle -----------------------------------------------------
    def install(self) -> "LocksetSanitizer":
        """Make this the active sanitizer (see :mod:`repro.check.hooks`).

        Raises:
            CheckError: when a different sanitizer is already active —
                two engines would each see only half the accesses.
        """
        active = _hooks.get_active()
        if active is not None and active is not self:
            raise CheckError("another lockset sanitizer is already installed")
        _hooks.set_active(self)
        return self

    @property
    def access_count(self) -> int:
        """Total shared-location accesses recorded so far."""
        return self.accesses_tracked

    def uninstall(self) -> None:
        """Deactivate (hooks become no-ops again)."""
        if _hooks.get_active() is self:
            _hooks.set_active(None)

    def __enter__(self) -> "LocksetSanitizer":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # -- hook surface (called via repro.check.hooks) -------------------
    def make_lock(self, name: str) -> TrackedLock:
        with self._state_lock:
            # Per-instance unique display name: duplicate registrations
            # must not merge lockset/deadlock identities.
            unique = self._names.unique(name)
        lock = TrackedLock(self, unique)
        self.locks_created += 1
        self._lock_names[lock.lock_id] = unique
        return lock

    def wrap_store(self, store: Any) -> SanitizedLabelStore:
        return SanitizedLabelStore(store, self)

    def record_access(self, location: str, write: bool = True) -> None:
        """Run one access through the Eraser state machine."""
        held = self._held_ids()
        info = AccessInfo(
            thread=threading.current_thread().name,
            write=write,
            locks=tuple(
                self._lock_names.get(i, f"lock#{i}") for i in sorted(held)
            ),
            stack=traceback.format_stack(limit=_STACK_LIMIT)[:-2],
        )
        me = threading.get_ident()
        report: Optional[RaceReport] = None
        with self._state_lock:
            self.accesses_tracked += 1
            loc = self._state.get(location)
            if loc is None:
                loc = self._state[location] = _LocationState()
            if loc.state == _VIRGIN:
                loc.state = _EXCLUSIVE
                loc.owner = me
            elif loc.state == _EXCLUSIVE and loc.owner == me:
                pass  # still single-threaded: init phase, no refinement
            elif loc.state != _REPORTED:
                if loc.state == _EXCLUSIVE:
                    loc.state = _SHARED_MOD if write else _SHARED
                elif write:
                    loc.state = _SHARED_MOD
                loc.lockset = (
                    held if loc.lockset is None else loc.lockset & held
                )
                if loc.state == _SHARED_MOD and not loc.lockset:
                    report = RaceReport(
                        location=location,
                        first=loc.last or info,
                        second=info,
                    )
                    self.reports.append(report)
                    loc.state = _REPORTED  # one report per location
            loc.last = info
        if report is not None and self.raise_on_race:
            raise CheckError(report.render())

    # -- lockset bookkeeping -------------------------------------------
    def _held_set(self) -> Dict[int, int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = {}
        return held

    def _held(self, add: Optional[TrackedLock] = None,
              remove: Optional[TrackedLock] = None) -> None:
        held = self._held_set()
        if add is not None:
            if self.lock_order is not None:
                self.lock_order.note_acquire(
                    tuple(
                        self._lock_names.get(i, f"lock#{i}")
                        for i in held
                    ),
                    add.name,
                )
            held[add.lock_id] = held.get(add.lock_id, 0) + 1
        if remove is not None:
            count = held.get(remove.lock_id, 0) - 1
            if count > 0:
                held[remove.lock_id] = count
            else:
                held.pop(remove.lock_id, None)

    def _held_ids(self) -> FrozenSet[int]:
        return frozenset(self._held_set())

    # -- reporting -----------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no races have been reported."""
        return not self.reports

    def render(self) -> str:
        """Terminal summary of the run."""
        lines = [
            f"lockset sanitizer: {self.accesses_tracked} accesses across "
            f"{len(self._state)} locations, {self.locks_created} tracked "
            f"locks, {len(self.reports)} race(s)"
        ]
        for report in self.reports:
            lines.append(report.render())
        return "\n".join(lines)


def get_sanitizer() -> Optional[LocksetSanitizer]:
    """The currently installed sanitizer, or ``None``."""
    active = _hooks.get_active()
    return active if isinstance(active, LocksetSanitizer) else None


def enable_from_env() -> Optional[Any]:
    """Install a sanitizer if ``PARAPLL_SANITIZE`` is set truthy.

    ``PARAPLL_SANITIZE=vc`` selects the happens-before vector-clock
    detector (:class:`~repro.check.vectorclock.VectorClockSanitizer`);
    any other truthy value installs the lockset engine.  Returns the
    installed sanitizer (new or pre-existing) or ``None`` when the
    flag is unset.  Used by the test suite's conftest so CI can run
    the tier-1 thread tests sanitized with one env var.
    """
    value = os.environ.get(ENV_FLAG, "").lower()
    if value in ("", "0", "false", "no"):
        return None
    existing = _hooks.get_active()
    if existing is not None:
        return existing
    if value == "vc":
        from repro.check.vectorclock import VectorClockSanitizer

        return VectorClockSanitizer().install()
    return LocksetSanitizer().install()


@dataclass
class _StressResult:
    """Outcome of :func:`stress_threads` (the ``check races`` CLI)."""

    sanitizer: Any
    builds: int = 0
    vertices: int = 0
    extra: List[str] = field(default_factory=list)


def stress_threads(
    num_threads: int = 4,
    repeats: int = 3,
    n: int = 120,
    m: int = 400,
    seed: int = 7,
    sanitizer: Optional[Any] = None,
    cluster: bool = False,
) -> _StressResult:
    """Run sanitized threaded builds as a race-hunting stress load.

    Builds a seeded random graph and runs the shared-memory builder
    ``repeats`` times per policy with the sanitizer installed (a fresh
    :class:`LocksetSanitizer` by default; pass a
    :class:`~repro.check.vectorclock.VectorClockSanitizer` for
    happens-before detection).  With ``cluster=True`` each repeat also
    runs the thread-backed cluster build, exercising the ``ThreadComm``
    envelope/barrier paths.  Violations show up in
    ``result.sanitizer.reports``.
    """
    from repro.generators.random_graphs import gnm_random_graph
    from repro.parallel.threads import build_parallel_threads

    graph = gnm_random_graph(n, m, seed=seed)
    if sanitizer is None:
        sanitizer = LocksetSanitizer()
    result = _StressResult(sanitizer=sanitizer, vertices=n)
    with sanitizer:
        for _ in range(repeats):
            for policy in ("dynamic", "static"):
                build_parallel_threads(graph, num_threads, policy=policy)
                result.builds += 1
            if cluster:
                from repro.cluster.runner import run_cluster_threads

                run_cluster_threads(
                    graph, max(2, min(num_threads, 4)), syncs=2
                )
                result.builds += 1
    return result
