"""Deterministic traffic replay against an oracle or a live server.

The ParaPLL serving claim is microsecond lookups *under traffic*, so
the load has to be reproducible before any number derived from it is
trustworthy.  This driver turns a :class:`ReplayConfig` plus a seed
into an exact request sequence (:func:`generate_requests` is a pure
function — same seed and config, same pairs, every run) and pushes it
through one of two standard harness shapes:

* **closed-loop** — ``clients`` concurrent workers, each issuing its
  share of the sequence back-to-back.  Measures capacity: how fast the
  target can go when offered unlimited demand.
* **open-loop** — Poisson arrivals at a target ``rate``; the driver
  sleeps to each seeded arrival time and hands the request to a worker
  pool.  Measures behaviour at a *given* demand, including the
  coordinated-omission signal closed loops hide (``max_lag_seconds``
  reports how far dispatch fell behind schedule).

Traffic comes from three sources: ``zipf`` (rank-frequency skewed
vertex popularity over a seeded permutation — the social-network shape
of hop-doubling labeling, arXiv 1403.0779), ``uniform``, or ``qlog``
(replay a captured :mod:`repro.obs.qlog` sequence, cycled to length).

The target is either an in-process :class:`DistanceOracle` or a live
TCP server (one :class:`DistanceClient` per worker).  Results are
recorded into a private :class:`~repro.obs.slo.SLOTracker`, and the
``parapll-replay/1`` report carries throughput, exact
p50/p95/p99 latencies and the SLO verdict — the gate ROADMAP item 2's
sharded tier will be accepted against.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import asdict, dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.check import hooks as _check_hooks
from repro.errors import ReproError
from repro.obs.slo import DEFAULT_TARGETS, SLOTarget, SLOTracker
from repro.obs.workload import exact_quantile

__all__ = [
    "REPLAY_SCHEMA",
    "ReplayConfig",
    "generate_requests",
    "run_replay",
    "render_replay",
]

REPLAY_SCHEMA = "parapll-replay/1"

_MODES = ("closed", "open")
_SOURCES = ("zipf", "uniform", "qlog")


@dataclass(frozen=True)
class ReplayConfig:
    """One replay run, fully specified.

    Attributes:
        mode: ``"closed"`` (N workers, back-to-back) or ``"open"``
            (Poisson arrivals at *rate*).
        source: ``"zipf"``, ``"uniform"`` or ``"qlog"``.
        requests: total requests to issue.
        clients: worker count (closed-loop concurrency / open-loop pool
            size).
        rate: open-loop target arrival rate, requests/second.
        seed: drives pair generation, Zipf popularity assignment and
            Poisson arrivals — the whole run is a function of it.
        zipf_alpha: skew exponent for the ``zipf`` source.
    """

    mode: str = "closed"
    source: str = "zipf"
    requests: int = 1000
    clients: int = 4
    rate: float = 1000.0
    seed: int = 0
    zipf_alpha: float = 1.1

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if self.source not in _SOURCES:
            raise ValueError(f"source must be one of {_SOURCES}")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open-loop rate must be positive")
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be positive")


def _zipf_sampler(
    n_vertices: int, alpha: float, rng: random.Random
) -> Callable[[], int]:
    """A seeded sampler of vertex ids with Zipf rank-frequency skew.

    Popularity ranks are assigned to vertex ids by a seeded shuffle
    (so the hot set is not just the low ids), then ranks are drawn by
    inverse CDF over ``rank^-alpha`` weights.
    """
    by_rank = list(range(n_vertices))
    rng.shuffle(by_rank)
    cumulative: List[float] = []
    acc = 0.0
    for rank in range(1, n_vertices + 1):
        acc += rank**-alpha
        cumulative.append(acc)
    total = cumulative[-1]
    from bisect import bisect_left

    def sample() -> int:
        r = rng.random() * total
        return by_rank[bisect_left(cumulative, r)]

    return sample


def generate_requests(
    config: ReplayConfig,
    n_vertices: int,
    qlog_records: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Tuple[int, int]]:
    """The exact request sequence for one replay — a pure function.

    Args:
        config: the replay configuration (its ``seed`` decides
            everything random here).
        n_vertices: vertex-id space for synthesized traffic.
        qlog_records: parsed qlog records, required for
            ``source="qlog"`` — their ``(s, t)`` pairs are replayed in
            capture order, cycled to ``config.requests``.

    Raises:
        ReproError: qlog source without records, or an empty id space.
    """
    if config.source == "qlog":
        if not qlog_records:
            raise ReproError("qlog source needs a non-empty capture")
        pairs = [(int(r["s"]), int(r["t"])) for r in qlog_records]
        return [pairs[i % len(pairs)] for i in range(config.requests)]
    if n_vertices < 2:
        raise ReproError("need at least 2 vertices to synthesize pairs")
    rng = random.Random(config.seed)
    out: List[Tuple[int, int]] = []
    if config.source == "zipf":
        sample = _zipf_sampler(n_vertices, config.zipf_alpha, rng)
    else:
        sample = lambda: rng.randrange(n_vertices)  # noqa: E731
    while len(out) < config.requests:
        s = sample()
        t = sample()
        if s == t:
            continue
        out.append((s, t))
    return out


def _arrival_offsets(config: ReplayConfig) -> List[float]:
    """Seeded Poisson arrival times (seconds from start), open loop."""
    rng = random.Random(config.seed + 0x9E3779B9)
    acc = 0.0
    out: List[float] = []
    for _ in range(config.requests):
        acc += rng.expovariate(config.rate)
        out.append(acc)
    return out


def _issue_one(
    issue: Callable[[int, int], float],
    pair: Tuple[int, int],
    tracker: SLOTracker,
) -> Tuple[float, str]:
    """Issue one request; returns ``(latency_seconds, outcome)``."""
    s, t = pair
    t0 = perf_counter()
    try:
        d = issue(s, t)
    except ReproError:
        elapsed = perf_counter() - t0
        tracker.record(elapsed, ok=False)
        return elapsed, "error"
    elapsed = perf_counter() - t0
    tracker.record(elapsed, ok=True)
    outcome = "unreachable" if d == math.inf else "ok"
    return elapsed, outcome


def run_replay(
    config: ReplayConfig,
    oracle: Any = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    qlog_records: Optional[Sequence[Dict[str, Any]]] = None,
    targets: Sequence[SLOTarget] = DEFAULT_TARGETS,
) -> Dict[str, Any]:
    """Run one replay and return the ``parapll-replay/1`` report.

    Exactly one target must be given: an in-process *oracle*
    (:class:`~repro.service.oracle.DistanceOracle`), or *host*/*port*
    of a live server (each worker opens its own
    :class:`~repro.service.server.DistanceClient`).

    Args:
        config: what to replay and how.
        oracle: in-process target.
        host: live-server address.
        port: live-server port.
        qlog_records: capture to replay when ``config.source="qlog"``.
        targets: SLO objectives the verdict is evaluated against.

    Returns:
        The report dict: config echo, throughput, exact latency
        quantiles, per-outcome counts, the SLO status document and a
        ``verdict`` (``pass`` iff no target's burn rate exceeded 1.0).

    Raises:
        ReproError: neither or both targets specified.
    """
    live = host is not None and port is not None
    if live == (oracle is not None):
        raise ReproError("give exactly one target: oracle, or host+port")
    n_vertices = oracle.num_vertices if oracle is not None else 1 << 30
    if config.source != "qlog" and oracle is None:
        # A live server does not expose its vertex count over the
        # config; ask it.
        from repro.service.server import DistanceClient

        with DistanceClient(host, port) as probe:
            n_vertices = int(probe.status()["index"]["vertices"])
    pairs = generate_requests(config, n_vertices, qlog_records)
    tracker = SLOTracker(targets=targets)

    def make_issue() -> Tuple[Callable[[int, int], float], Callable[[], None]]:
        """Per-worker issue function + cleanup."""
        if oracle is not None:
            return oracle.distance, lambda: None
        from repro.service.server import DistanceClient

        client = DistanceClient(host, port)
        return client.distance, client.close

    results: List[Optional[Tuple[float, str]]] = [None] * len(pairs)
    max_lag = 0.0
    wall_start = perf_counter()

    if config.mode == "closed":

        def worker(worker_idx: int) -> None:
            issue, cleanup = make_issue()
            try:
                for j in range(worker_idx, len(pairs), config.clients):
                    results[j] = _issue_one(issue, pairs[j], tracker)
            finally:
                cleanup()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(config.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        from concurrent.futures import ThreadPoolExecutor

        offsets = _arrival_offsets(config)
        local = threading.local()
        cleanups: List[Callable[[], None]] = []
        cleanup_lock = _check_hooks.make_lock("replay.cleanup_lock")

        def task(j: int) -> None:
            if not hasattr(local, "issue"):
                issue, cleanup = make_issue()
                local.issue = issue
                with cleanup_lock:
                    cleanups.append(cleanup)
            results[j] = _issue_one(local.issue, pairs[j], tracker)

        with ThreadPoolExecutor(max_workers=config.clients) as pool:
            futures = []
            for j, offset in enumerate(offsets):
                delay = (wall_start + offset) - perf_counter()
                if delay > 0:
                    time.sleep(delay)
                else:
                    max_lag = max(max_lag, -delay)
                futures.append(pool.submit(task, j))
            for future in futures:
                future.result()
        for cleanup in cleanups:
            cleanup()

    wall = perf_counter() - wall_start
    done = [r for r in results if r is not None]
    latencies = sorted(latency for latency, _ in done)
    outcomes: Dict[str, int] = {}
    for _, outcome in done:
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
    slo_status = tracker.status()
    report: Dict[str, Any] = {
        "schema": REPLAY_SCHEMA,
        "config": asdict(config),
        "target": f"{host}:{port}" if live else "inprocess",
        "requests": len(done),
        "outcomes": outcomes,
        "wall_seconds": wall,
        "throughput_rps": len(done) / wall if wall > 0 else 0.0,
        "latency_us": {
            "mean": (sum(latencies) / len(latencies)) * 1e6
            if latencies
            else 0.0,
            "p50": exact_quantile(latencies, 0.50) * 1e6,
            "p95": exact_quantile(latencies, 0.95) * 1e6,
            "p99": exact_quantile(latencies, 0.99) * 1e6,
            "max": latencies[-1] * 1e6 if latencies else 0.0,
        },
        "slo": slo_status,
        "verdict": {
            "pass": not slo_status["breached"],
            "breached": slo_status["breached"],
        },
    }
    if config.mode == "open":
        report["open_loop"] = {
            "target_rate": config.rate,
            "achieved_rate": len(done) / wall if wall > 0 else 0.0,
            "max_lag_seconds": max_lag,
        }
    return report


def render_replay(report: Dict[str, Any]) -> str:
    """Render a replay report as terminal text."""
    cfg = report["config"]
    lat = report["latency_us"]
    verdict = report["verdict"]
    lines = [
        (
            f"replay: {report['requests']} requests "
            f"({cfg['mode']}-loop, {cfg['source']} source, "
            f"seed={cfg['seed']}) against {report['target']}"
        ),
        (
            f"  wall {report['wall_seconds']:.3f}s  "
            f"throughput {report['throughput_rps']:.0f} req/s"
        ),
        (
            f"  latency_us: p50={lat['p50']:.1f} p95={lat['p95']:.1f} "
            f"p99={lat['p99']:.1f} max={lat['max']:.1f}"
        ),
        "  outcomes: "
        + ", ".join(f"{k}={v}" for k, v in sorted(report["outcomes"].items())),
    ]
    if "open_loop" in report:
        ol = report["open_loop"]
        lines.append(
            f"  open loop: target {ol['target_rate']:.0f} req/s, "
            f"achieved {ol['achieved_rate']:.0f} req/s, "
            f"max dispatch lag {ol['max_lag_seconds'] * 1e3:.1f}ms"
        )
    for target in report["slo"]["targets"]:
        status = "BREACH" if target["breached"] else "ok"
        lines.append(
            f"  slo {target['name']}: burn_rate="
            f"{target['burn_rate']:.2f} "
            f"budget_remaining={target['budget_remaining']:.1%} "
            f"[{status}]"
        )
    lines.append(
        "  verdict: " + ("PASS" if verdict["pass"] else "FAIL")
        + (
            f" (breached: {', '.join(verdict['breached'])})"
            if verdict["breached"]
            else ""
        )
    )
    return "\n".join(lines)
