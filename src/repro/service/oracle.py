"""The in-process distance-serving facade.

:class:`DistanceOracle` wraps a built index with the conveniences a
search backend needs: an LRU cache over point queries (search traffic
is heavily repeated — the same influencer pairs recur), batch and kNN
entry points, and counters for observability.  Thread-safe: a lock
guards the cache; the underlying finalized index is read-only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

from repro.check import hooks as _check_hooks
from repro.core.knn import KNNIndex
from repro.errors import GraphError
from repro.obs import config as _obs_config
from repro.obs import qlog as _qlog
from repro.obs.instruments import ORACLE_CACHE_HITS, ORACLE_QUERIES

__all__ = ["DistanceOracle", "OracleStats"]

_INF = float("inf")


def _outcome(value: float) -> str:
    return "unreachable" if value == _INF else "ok"


@dataclass
class OracleStats:
    """Request counters.

    Attributes:
        queries: point-distance requests served.
        cache_hits: requests answered from the LRU cache.
        batch_queries: batch requests served.
        knn_queries: k-nearest requests served.
        path_queries: path-reconstruction requests served.
        explain_queries: EXPLAIN requests served.
    """

    queries: int = 0
    cache_hits: int = 0
    batch_queries: int = 0
    knn_queries: int = 0
    path_queries: int = 0
    explain_queries: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction of point queries (0 when none served)."""
        return self.cache_hits / self.queries if self.queries else 0.0


class DistanceOracle:
    """Serving facade over a finalized PLL index.

    Args:
        index: a built :class:`~repro.core.index.PLLIndex`.
        cache_size: LRU capacity for point queries (0 disables caching).
        build_knn: build the inverted-label kNN structure eagerly;
            otherwise it is built lazily on the first kNN request.
    """

    def __init__(
        self, index, cache_size: int = 4096, build_knn: bool = False
    ) -> None:
        if cache_size < 0:
            raise GraphError("cache_size must be non-negative")
        self.index = index
        self.cache_size = cache_size
        self.stats = OracleStats()
        self._cache: "OrderedDict[Tuple[int, int], float]" = OrderedDict()
        self._lock = _check_hooks.make_lock("oracle._cache_lock")
        self._knn: Optional[KNNIndex] = (
            KNNIndex(index.store) if build_knn else None
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of queryable vertices."""
        return self.index.num_vertices

    def distance(self, s: int, t: int) -> float:
        """Cached exact distance between *s* and *t*.

        When a query-log recorder is installed
        (:func:`repro.obs.qlog.install`), a sampled fraction of calls is
        recorded with true service time; a sampled cache *miss* goes
        through :meth:`PLLIndex.query <repro.core.index.PLLIndex.query>`
        — same distance, same merge-join cost — so the record carries
        the real ``entries_scanned``.  The unsampled path is unchanged.
        """
        recorder = _qlog._active
        sampled = recorder is not None and recorder.should_sample()
        t0 = perf_counter() if sampled else 0.0
        key = (s, t) if s <= t else (t, s)
        if _obs_config.METRICS:
            ORACLE_QUERIES.inc()
        with self._lock:
            self.stats.queries += 1
            if self.cache_size:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self.stats.cache_hits += 1
                    if _obs_config.METRICS:
                        ORACLE_CACHE_HITS.inc()
                    if sampled:
                        recorder.record(
                            "distance",
                            s,
                            t,
                            (perf_counter() - t0) * 1e6,
                            cache_hit=True,
                            outcome=_outcome(cached),
                            req_id=_qlog.current_req_id(),
                        )
                    return cached
        scanned = 0
        if sampled:
            result = self.index.query(s, t)
            value = result.distance
            scanned = result.entries_scanned
        else:
            value = self.index.distance(s, t)
        if self.cache_size:
            with self._lock:
                self._cache[key] = value
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        if sampled:
            recorder.record(
                "distance",
                s,
                t,
                (perf_counter() - t0) * 1e6,
                cache_hit=False,
                entries_scanned=scanned,
                outcome=_outcome(value),
                req_id=_qlog.current_req_id(),
            )
        return value

    def batch(self, pairs: Sequence[Tuple[int, int]]) -> List[float]:
        """Distances for many ``(s, t)`` pairs.

        Cache hits are served from the LRU exactly as :meth:`distance`
        would; all misses go through one vectorised merge join
        (:meth:`PLLIndex.distance_batch
        <repro.core.index.PLLIndex.distance_batch>`) instead of a
        per-pair Python loop, and are inserted into the cache after.
        Per-pair counters advance as if each pair were served
        individually.  With a query-log recorder installed, each pair is
        independently sampled and recorded with ``op="batch"`` and the
        batch wall amortised over its pairs (the vectorised kernel does
        not time or scan-count pairs individually).
        """
        self.start_batch()
        norm = [(int(s), int(t)) for s, t in pairs]
        m = len(norm)
        if m == 0:
            return []
        recorder = _qlog._active
        t0 = perf_counter() if recorder is not None else 0.0
        if _obs_config.METRICS:
            ORACLE_QUERIES.inc(m)
        out: List[float] = [0.0] * m
        # Canonical (min, max) key -> positions in the batch; an
        # OrderedDict both dedups repeated pairs and keeps the kernel's
        # input order deterministic.
        misses: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
        hits = 0
        with self._lock:
            self.stats.queries += m
            for i, (s, t) in enumerate(norm):
                key = (s, t) if s <= t else (t, s)
                if self.cache_size:
                    cached = self._cache.get(key)
                    if cached is not None:
                        self._cache.move_to_end(key)
                        out[i] = cached
                        hits += 1
                        continue
                misses.setdefault(key, []).append(i)
            self.stats.cache_hits += hits
        if hits and _obs_config.METRICS:
            ORACLE_CACHE_HITS.inc(hits)
        if misses:
            values = self.index.distance_batch(list(misses))
            for (_, positions), value in zip(misses.items(), values):
                value = float(value)
                for i in positions:
                    out[i] = value
            if self.cache_size:
                with self._lock:
                    for key, value in zip(misses, values):
                        self._cache[key] = float(value)
                        self._cache.move_to_end(key)
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
        if recorder is not None:
            per_pair_us = (perf_counter() - t0) * 1e6 / m
            req_id = _qlog.current_req_id()
            miss_positions = {
                i for positions in misses.values() for i in positions
            }
            for i, (s, t) in enumerate(norm):
                if recorder.should_sample():
                    recorder.record(
                        "batch",
                        s,
                        t,
                        per_pair_us,
                        cache_hit=i not in miss_positions,
                        outcome=_outcome(out[i]),
                        req_id=req_id,
                    )
        return out

    def start_batch(self) -> None:
        """Count one batch request (for callers that time pairs
        individually and so call :meth:`distance` themselves)."""
        with self._lock:
            self.stats.batch_queries += 1

    def k_nearest(self, s: int, k: int) -> List[Tuple[int, float]]:
        """The *k* nearest vertices to *s* (exact, via inverted labels)."""
        with self._lock:
            self.stats.knn_queries += 1
            if self._knn is None:
                self._knn = KNNIndex(self.index.store)
            knn = self._knn
        return knn.k_nearest(s, k)

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """One shortest path (needs the index's attached graph)."""
        with self._lock:
            self.stats.path_queries += 1
        return self.index.shortest_path(s, t)

    def explain(self, s: int, t: int):
        """EXPLAIN one query (uncached: the point is the fresh scan).

        Returns:
            A :class:`~repro.obs.explain.QueryExplanation`; its
            ``distance`` equals :meth:`distance` exactly.
        """
        with self._lock:
            self.stats.explain_queries += 1
        return self.index.explain(s, t)

    def cache_info(self) -> Tuple[int, int]:
        """``(entries, capacity)`` of the LRU cache."""
        with self._lock:
            return len(self._cache), self.cache_size

    def clear_cache(self) -> None:
        """Drop all cached distances (e.g. after an index swap)."""
        with self._lock:
            self._cache.clear()
