"""Line-delimited-JSON TCP serving of a distance oracle.

Protocol: one JSON object per line in each direction.

Requests::

    {"op": "distance", "s": 3, "t": 42}
    {"op": "batch", "pairs": [[0, 1], [2, 3]]}
    {"op": "knn", "s": 3, "k": 5}
    {"op": "path", "s": 3, "t": 42}
    {"op": "explain", "s": 3, "t": 42}
    {"op": "stats"}
    {"op": "status"}
    {"op": "health"}
    {"op": "audit"}
    {"op": "debug"}
    {"op": "metrics"}
    {"op": "ping"}

Responses carry ``{"ok": true, ...result fields}`` or
``{"ok": false, "error": "..."}``.  Unreachable distances are encoded
as the string ``"inf"`` (JSON has no infinity).

Every response carries a server-assigned ``req_id`` (monotonically
increasing per server) so a log line, a traced event and a client
response can be correlated; a client-supplied ``id`` field is echoed
back verbatim as well.

Every request is counted into the observability registry
(``parapll_service_requests_total{op=...}`` plus a latency histogram);
``{"op": "metrics"}`` returns the full registry snapshot so any client
can scrape a live server.  Requests slower than the configurable
``slow_query_seconds`` threshold are logged (logger ``repro.service``),
counted (``parapll_service_slow_requests_total``) and recorded as a
``slow_query`` trace event when tracing is on.  Lines that fail JSON
decoding are counted and logged instead of silently answered.

The server is a stdlib ``ThreadingTCPServer``; one thread per
connection, the oracle itself is thread-safe.  Intended for trusted
local/internal callers (no authentication), like any sidecar cache.
"""

from __future__ import annotations

import itertools
import json
import logging
import math
import socket
import socketserver
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.check import hooks as _check_hooks
from repro.errors import ReproError
from repro.obs import bus as _bus
from repro.obs import flightrec as _flightrec
from repro.obs import qlog as _qlog
from repro.obs import slo as _slo
from repro.obs import trace as _trace
from repro.obs.instruments import (
    SERVICE_LATENCY,
    SERVICE_MALFORMED,
    record_batch_pair,
    record_request,
    record_shed,
    record_slow_request,
)
from repro.obs.metrics import DEFAULT_QUANTILES, get_registry
from repro.service.oracle import DistanceOracle

__all__ = ["DistanceServer", "DistanceClient"]

logger = logging.getLogger("repro.service")

#: Ops whose latency/outcome feed the sliding-window SLO tracker.
#: Introspection ops (stats/metrics/audit/...) are deliberately
#: excluded: an expensive on-demand audit is not a serving failure.
SLO_OPS = frozenset({"ping", "distance", "batch", "knn", "path", "explain"})

#: Ops the load shedder may fast-fail when the burn rate is critical.
#: Everything else keeps flowing so operators can still introspect an
#: overloaded server.
SHEDDABLE_OPS = frozenset({"distance", "batch"})


def _encode(value: float) -> Any:
    return "inf" if value == math.inf else value


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via client
        server = self.server
        oracle: DistanceOracle = server.oracle  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            req_id = server.next_request_id()  # type: ignore[attr-defined]
            try:
                req = json.loads(line)
            except ValueError as exc:
                server.count_malformed()  # type: ignore[attr-defined]
                logger.warning(
                    "malformed request line (%s): %r", exc, line[:200]
                )
                response = {"ok": False, "error": f"malformed json: {exc}"}
                self._reply(response, req_id)
                continue
            if not isinstance(req, dict):
                server.count_malformed()  # type: ignore[attr-defined]
                logger.warning(
                    "request line is not a JSON object: %r", line[:200]
                )
                self._reply(
                    {"ok": False, "error": "request must be a JSON object"},
                    req_id,
                )
                continue
            t0 = time.perf_counter()
            op = req.get("op")
            shed = op in SHEDDABLE_OPS and server.should_shed()  # type: ignore[attr-defined]
            if shed:
                response = _shed_response(op, req, server, req_id)
            else:
                server.enter_request()  # type: ignore[attr-defined]
                try:
                    with _qlog.request_scope(req_id):
                        response = _dispatch(oracle, req, server)
                except ReproError as exc:
                    response = {"ok": False, "error": str(exc)}
                except (ValueError, KeyError, TypeError) as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                finally:
                    server.exit_request()  # type: ignore[attr-defined]
            elapsed = time.perf_counter() - t0
            # The batch op observes per-pair latencies itself; one
            # whole-request sample would skew the histogram.
            record_request(
                op,
                elapsed,
                bool(response.get("ok")),
                include_latency=(op != "batch"),
            )
            # Cross-process telemetry: one bus event per request so a
            # fleet dashboard sees serve traffic live (no-op global
            # load unless a relay installed a bus).
            _bus.publish_event(
                "request",
                op=op,
                seconds=round(elapsed, 6),
                ok=bool(response.get("ok")),
                shed=shed,
            )
            # Shed fast-fails are excluded from the SLO windows: if they
            # counted as errors, shedding would keep its own burn rate
            # above threshold and never disengage.
            if not shed and op in SLO_OPS:
                server.slo_tracker.record(  # type: ignore[attr-defined]
                    elapsed, ok=bool(response.get("ok"))
                )
            threshold = server.slow_query_seconds  # type: ignore[attr-defined]
            if threshold is not None and elapsed >= threshold:
                record_slow_request(op)
                logger.warning(
                    "slow query req_id=%d op=%r took %.4fs "
                    "(threshold %.4fs)",
                    req_id,
                    op,
                    elapsed,
                    threshold,
                )
                _trace.event(
                    "slow_query", op=op, req_id=req_id, seconds=elapsed
                )
                _flightrec.record(
                    "slow_query", op=op, req_id=req_id, seconds=elapsed
                )
            if "id" in req:
                response["id"] = req["id"]
            self._reply(response, req_id)

    def _reply(
        self, response: Dict[str, Any], req_id: Optional[int] = None
    ) -> None:  # pragma: no cover
        if req_id is not None:
            response.setdefault("req_id", req_id)
        self.wfile.write(json.dumps(response).encode() + b"\n")
        self.wfile.flush()


def _latency_quantiles() -> Dict[str, Dict[str, float]]:
    """p50/p95/p99 per served op, from the live latency histogram."""
    out: Dict[str, Dict[str, float]] = {}
    for key, series in SERVICE_LATENCY.series_items():
        snap = series.value()  # type: ignore[attr-defined]
        if not snap["count"]:
            continue
        op = key[0] if key else "?"
        out[op] = {
            f"p{int(q * 100)}": series.quantile(q)  # type: ignore[attr-defined]
            for q in DEFAULT_QUANTILES
        }
    return out


def _shed_response(
    op: str, req: Dict[str, Any], server: Any, req_id: int
) -> Dict[str, Any]:
    """Fast-fail one sheddable request without touching the oracle.

    The refusal is recorded everywhere an operator would look — shed
    counter, flight recorder, and (for well-formed requests) the query
    log with ``outcome="shed"`` — but deliberately *not* into the SLO
    windows (see the caller).
    """
    record_shed(op)
    server.count_shed()
    burn = server.slo_tracker.worst_burn_rate()
    _flightrec.record(
        "request_shed", op=op, req_id=req_id, burn_rate=round(burn, 3)
    )
    try:
        if op == "distance":
            _qlog.record_query(
                "distance",
                int(req["s"]),
                int(req["t"]),
                0.0,
                outcome="shed",
                req_id=req_id,
            )
        elif op == "batch":
            for a, b in req["pairs"]:
                _qlog.record_query(
                    "batch",
                    int(a),
                    int(b),
                    0.0,
                    outcome="shed",
                    req_id=req_id,
                )
    except (KeyError, ValueError, TypeError):
        # A malformed shed request gets no qlog records; the shed
        # response below already tells the client what happened.
        pass
    return {
        "ok": False,
        "error": (
            f"{op} shed: SLO burn rate {burn:.2f} over threshold "
            f"{server.shed_burn_rate}"
        ),
        "shed": True,
    }


def _slow_request_total() -> int:
    from repro.obs.instruments import SERVICE_SLOW

    return int(
        sum(
            series.value()  # type: ignore[attr-defined]
            for _key, series in SERVICE_SLOW.series_items()
        )
    )


def _dispatch(
    oracle: DistanceOracle, req: Dict[str, Any], server: Any = None
) -> Dict[str, Any]:
    op = req.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "distance":
        d = oracle.distance(int(req["s"]), int(req["t"]))
        return {"ok": True, "distance": _encode(d)}
    if op == "batch":
        pairs = [(int(a), int(b)) for a, b in req["pairs"]]
        return _dispatch_batch(oracle, pairs, server)
    if op == "knn":
        out = oracle.k_nearest(int(req["s"]), int(req["k"]))
        return {"ok": True, "neighbors": [[v, d] for v, d in out]}
    if op == "path":
        path = oracle.shortest_path(int(req["s"]), int(req["t"]))
        return {"ok": True, "path": path}
    if op == "explain":
        explanation = oracle.explain(int(req["s"]), int(req["t"]))
        return {"ok": True, "explain": explanation.to_dict()}
    if op == "stats":
        s = oracle.stats
        tracker = (
            server.slo_tracker if server is not None else _slo.get_tracker()
        )
        return {
            "ok": True,
            "queries": s.queries,
            "cache_hits": s.cache_hits,
            "hit_rate": s.hit_rate,
            "knn_queries": s.knn_queries,
            "malformed_lines": (
                server.malformed_count if server is not None else 0
            ),
            "slow_requests": _slow_request_total(),
            "latency_quantiles": _latency_quantiles(),
            "windowed_latency_quantiles": tracker.windowed_quantiles(),
        }
    if op == "health":
        tracker = (
            server.slo_tracker if server is not None else _slo.get_tracker()
        )
        status = tracker.status()
        shed_threshold = (
            server.shed_burn_rate if server is not None else None
        )
        return {
            "ok": True,
            "schema": _slo.SLO_SCHEMA,
            "slo": status,
            "shedding": {
                "burn_rate_threshold": shed_threshold,
                "active": (
                    shed_threshold is not None
                    and status["worst_burn_rate"] > shed_threshold
                ),
                "shed_requests": (
                    server.shed_count if server is not None else 0
                ),
            },
        }
    if op == "status":
        store = oracle.index.store
        return {
            "ok": True,
            "uptime_seconds": (
                time.monotonic() - server.start_monotonic
                if server is not None
                else 0.0
            ),
            "index": {
                "vertices": oracle.num_vertices,
                "entries": int(store.total_entries),
                "avg_label_size": float(store.avg_label_size),
            },
            "in_flight": server.inflight() if server is not None else 0,
            "queries": oracle.stats.queries,
            "slow_requests": _slow_request_total(),
            "malformed_lines": (
                server.malformed_count if server is not None else 0
            ),
            "latency_quantiles": _latency_quantiles(),
            "flightrec": _flightrec.get_recorder().snapshot(last=5),
        }
    if op == "debug":
        last = req.get("last")
        return {
            "ok": True,
            "schema": _flightrec.FLIGHTREC_SCHEMA,
            "flightrec": _flightrec.get_recorder().snapshot(
                last=int(last) if last is not None else None
            ),
        }
    if op == "metrics":
        return {
            "ok": True,
            "metrics": get_registry().snapshot(),
            "malformed_lines": (
                server.malformed_count if server is not None else 0
            ),
        }
    if op == "audit":
        from repro.obs.audit import AUDIT_SCHEMA, audit_index

        report = audit_index(
            oracle.index,
            check_dominated=bool(req.get("dominated", True)),
            source="server",
        )
        return {"ok": True, "schema": AUDIT_SCHEMA, "audit": report}
    return {"ok": False, "error": f"unknown op {op!r}"}


def _dispatch_batch(
    oracle: DistanceOracle,
    pairs: List[Tuple[int, int]],
    server: Any = None,
) -> Dict[str, Any]:
    """Serve one batch request with per-pair latency and a deadline.

    Each pair's latency is observed individually into the service
    histogram (one whole-request sample would hide slow pairs behind a
    large batch).  When the server's ``slow_query_seconds`` budget is
    exhausted mid-batch, the remaining pairs are aborted: the response
    carries ``ok=false``, the partial ``distances``, and ``completed``
    so the client can resume.
    """
    oracle.start_batch()
    deadline: Optional[float] = (
        server.slow_query_seconds if server is not None else None
    )
    distances: List[Any] = []
    start = time.perf_counter()
    for i, (a, b) in enumerate(pairs):
        if deadline is not None and i > 0:
            if time.perf_counter() - start >= deadline:
                return {
                    "ok": False,
                    "error": (
                        f"batch aborted after {i}/{len(pairs)} pairs: "
                        f"exceeded slow_query_seconds={deadline}"
                    ),
                    "completed": i,
                    "distances": distances,
                }
        p0 = time.perf_counter()
        d = oracle.distance(a, b)
        record_batch_pair(time.perf_counter() - p0)
        distances.append(_encode(d))
    return {"ok": True, "distances": distances}


class _TCPServer(socketserver.ThreadingTCPServer):
    """ThreadingTCPServer with request ids and a malformed-line count."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.malformed_count = 0
        self._malformed_lock = _check_hooks.make_lock(
            "server._malformed_lock"
        )
        self._request_ids = itertools.count(1)
        self.slow_query_seconds: Optional[float] = None
        self.start_monotonic = time.monotonic()
        self._inflight = 0
        self._inflight_lock = _check_hooks.make_lock(
            "server._inflight_lock"
        )
        self.slo_tracker: _slo.SLOTracker = _slo.get_tracker()
        self.shed_burn_rate: Optional[float] = None
        self.shed_count = 0
        self._shed_lock = _check_hooks.make_lock("server._shed_lock")

    def should_shed(self) -> bool:
        """Whether the load shedder is currently engaged."""
        threshold = self.shed_burn_rate
        return threshold is not None and self.slo_tracker.should_shed(
            threshold
        )

    def count_shed(self) -> None:
        """Record one fast-failed request (thread-safe)."""
        with self._shed_lock:
            self.shed_count += 1

    def next_request_id(self) -> int:
        """A server-unique id for one incoming request line."""
        # itertools.count.__next__ is atomic under the GIL.
        return next(self._request_ids)

    def count_malformed(self) -> None:
        """Record one undecodable request line (thread-safe)."""
        with self._malformed_lock:
            self.malformed_count += 1
        SERVICE_MALFORMED.inc()

    def enter_request(self) -> None:
        """Mark one request as being dispatched (for ``status``)."""
        with self._inflight_lock:
            self._inflight += 1

    def exit_request(self) -> None:
        """Mark one dispatched request as finished."""
        with self._inflight_lock:
            self._inflight -= 1

    def inflight(self) -> int:
        """Requests currently inside ``_dispatch`` (including self)."""
        with self._inflight_lock:
            return self._inflight


class DistanceServer:
    """A threaded TCP server around a :class:`DistanceOracle`.

    Args:
        oracle: the oracle to serve.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
        slow_query_seconds: requests taking at least this long are
            logged, counted and (when tracing is on) recorded as
            ``slow_query`` trace events; ``None`` disables the check.
        slo_tracker: the sliding-window SLO tracker to record serving
            latencies into; defaults to the process-wide tracker
            (:func:`repro.obs.slo.get_tracker`).
        shed_burn_rate: when set, point/batch requests are fast-failed
            (``ok=false`` with ``shed=true``) while any SLO target's
            burn rate exceeds this multiple — introspection ops keep
            flowing.  ``None`` (default) disables load shedding.

    Use as a context manager::

        with DistanceServer(oracle) as server:
            client = DistanceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        host: str = "127.0.0.1",
        port: int = 0,
        slow_query_seconds: Optional[float] = 0.5,
        slo_tracker: Optional[_slo.SLOTracker] = None,
        shed_burn_rate: Optional[float] = None,
    ) -> None:
        if slow_query_seconds is not None and slow_query_seconds < 0:
            raise ReproError("slow_query_seconds must be non-negative")
        if shed_burn_rate is not None and shed_burn_rate <= 0:
            raise ReproError("shed_burn_rate must be positive")
        self._tcp = _TCPServer(
            (host, port), _Handler, bind_and_activate=True
        )
        self._tcp.daemon_threads = True
        self._tcp.oracle = oracle  # type: ignore[attr-defined]
        self._tcp.slow_query_seconds = slow_query_seconds
        if slo_tracker is not None:
            self._tcp.slo_tracker = slo_tracker
        self._tcp.shed_burn_rate = shed_burn_rate
        self._thread: Optional[threading.Thread] = None

    @property
    def slo_tracker(self) -> _slo.SLOTracker:
        """The SLO tracker this server records into."""
        return self._tcp.slo_tracker

    @property
    def shed_count(self) -> int:
        """Requests fast-failed by the load shedder since startup."""
        return self._tcp.shed_count

    @property
    def port(self) -> int:
        """The bound port."""
        return self._tcp.server_address[1]

    @property
    def malformed_lines(self) -> int:
        """Request lines that failed JSON decoding since startup."""
        return self._tcp.malformed_count

    def start(self) -> "DistanceServer":
        """Start serving on a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "DistanceServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class DistanceClient:
    """Blocking client for :class:`DistanceServer`.

    Connecting retries transient failures (server still binding, socket
    backlog full) with exponential backoff plus deterministic jitter
    seeded from the endpoint, so a replay driver launching hundreds of
    clients does not stampede a just-started server.

    Args:
        host: server address.
        port: server port.
        timeout: socket timeout, seconds.
        connect_retries: additional connection attempts after the first
            failure (0 restores the old fail-fast behaviour).
        retry_backoff: base sleep before retry *k* — the actual sleep is
            ``retry_backoff * 2**k`` plus up to 50% jitter.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        connect_retries: int = 3,
        retry_backoff: float = 0.05,
    ) -> None:
        if connect_retries < 0:
            raise ReproError("connect_retries must be non-negative")
        if retry_backoff < 0:
            raise ReproError("retry_backoff must be non-negative")
        import random

        rng = random.Random((hash(host) << 16) ^ port)
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                break
            except OSError as exc:
                if attempt >= connect_retries:
                    raise ReproError(
                        f"could not connect to {host}:{port} after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                sleep = retry_backoff * (2**attempt)
                sleep += sleep * 0.5 * rng.random()
                logger.debug(
                    "connect to %s:%d failed (%s); retry %d/%d in %.3fs",
                    host,
                    port,
                    exc,
                    attempt + 1,
                    connect_retries,
                    sleep,
                )
                time.sleep(sleep)
                attempt += 1
        self._file = self._sock.makefile("rwb")

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            message = response.get("error", "unknown server error")
            req_id = response.get("req_id")
            if req_id is not None:
                message = f"{message} (req_id={req_id})"
            raise ReproError(message)
        return response

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def distance(self, s: int, t: int) -> float:
        """Exact distance (``math.inf`` when unreachable)."""
        d = self._call({"op": "distance", "s": s, "t": t})["distance"]
        return math.inf if d == "inf" else float(d)

    def batch(self, pairs: List[Tuple[int, int]]) -> List[float]:
        """Distances for many pairs."""
        out = self._call({"op": "batch", "pairs": [list(p) for p in pairs]})
        return [
            math.inf if d == "inf" else float(d) for d in out["distances"]
        ]

    def k_nearest(self, s: int, k: int) -> List[Tuple[int, float]]:
        """The k nearest vertices to *s*."""
        out = self._call({"op": "knn", "s": s, "k": k})
        return [(int(v), float(d)) for v, d in out["neighbors"]]

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """One shortest path, or ``None`` when unreachable."""
        return self._call({"op": "path", "s": s, "t": t})["path"]

    def explain(self, s: int, t: int) -> Dict[str, Any]:
        """Server-side EXPLAIN of one query.

        Returns:
            The ``parapll-explain/1`` document (see
            :mod:`repro.obs.explain`).
        """
        return self._call({"op": "explain", "s": s, "t": t})["explain"]

    def status(self) -> Dict[str, Any]:
        """Live server introspection: uptime, index shape, in-flight
        and slow/malformed counts, latency quantiles, and the flight
        recorder's most recent events."""
        out = self._call({"op": "status"})
        out.pop("ok", None)
        return out

    def debug(self, last: Optional[int] = None) -> Dict[str, Any]:
        """The server's flight-recorder buffer (newest *last* events,
        or the whole ring when *last* is ``None``)."""
        req: Dict[str, Any] = {"op": "debug"}
        if last is not None:
            req["last"] = last
        out = self._call(req)
        out.pop("ok", None)
        return out

    def stats(self) -> Dict[str, Any]:
        """Server-side request counters."""
        out = self._call({"op": "stats"})
        out.pop("ok", None)
        return out

    def health(self) -> Dict[str, Any]:
        """The server's SLO health document.

        Returns:
            dict with ``slo`` (the ``parapll-slo/1`` status: per-target
            burn rates, error budgets, breaches, windowed latency
            quantiles) and ``shedding`` (threshold, whether the shedder
            is engaged, requests fast-failed so far).
        """
        out = self._call({"op": "health"})
        out.pop("ok", None)
        return out

    def audit(self, dominated: bool = True) -> Dict[str, Any]:
        """Server-side index-health audit.

        Args:
            dominated: run the dominated-entry scan (pass ``False`` to
                skip the O(entries × avg-label) pass on large indexes).

        Returns:
            The ``parapll-audit/1`` report (see :mod:`repro.obs.audit`).
        """
        return self._call({"op": "audit", "dominated": dominated})["audit"]

    def metrics(self) -> Dict[str, Any]:
        """The server's full observability snapshot.

        Returns:
            dict with ``metrics`` (the registry snapshot, a list of
            metric dicts) and ``malformed_lines``.
        """
        out = self._call({"op": "metrics"})
        out.pop("ok", None)
        return out

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DistanceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
