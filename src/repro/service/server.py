"""Line-delimited-JSON TCP serving of a distance oracle.

Protocol: one JSON object per line in each direction.

Requests::

    {"op": "distance", "s": 3, "t": 42}
    {"op": "batch", "pairs": [[0, 1], [2, 3]]}
    {"op": "knn", "s": 3, "k": 5}
    {"op": "path", "s": 3, "t": 42}
    {"op": "stats"}
    {"op": "ping"}

Responses carry ``{"ok": true, ...result fields}`` or
``{"ok": false, "error": "..."}``.  Unreachable distances are encoded
as the string ``"inf"`` (JSON has no infinity).

The server is a stdlib ``ThreadingTCPServer``; one thread per
connection, the oracle itself is thread-safe.  Intended for trusted
local/internal callers (no authentication), like any sidecar cache.
"""

from __future__ import annotations

import json
import math
import socket
import socketserver
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.service.oracle import DistanceOracle

__all__ = ["DistanceServer", "DistanceClient"]


def _encode(value: float) -> Any:
    return "inf" if value == math.inf else value


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via client
        oracle: DistanceOracle = self.server.oracle  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                response = _dispatch(oracle, json.loads(line))
            except ReproError as exc:
                response = {"ok": False, "error": str(exc)}
            except (ValueError, KeyError, TypeError) as exc:
                response = {"ok": False, "error": f"bad request: {exc}"}
            self.wfile.write(json.dumps(response).encode() + b"\n")
            self.wfile.flush()


def _dispatch(oracle: DistanceOracle, req: Dict[str, Any]) -> Dict[str, Any]:
    op = req.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "distance":
        d = oracle.distance(int(req["s"]), int(req["t"]))
        return {"ok": True, "distance": _encode(d)}
    if op == "batch":
        pairs = [(int(a), int(b)) for a, b in req["pairs"]]
        return {
            "ok": True,
            "distances": [_encode(d) for d in oracle.batch(pairs)],
        }
    if op == "knn":
        out = oracle.k_nearest(int(req["s"]), int(req["k"]))
        return {"ok": True, "neighbors": [[v, d] for v, d in out]}
    if op == "path":
        path = oracle.shortest_path(int(req["s"]), int(req["t"]))
        return {"ok": True, "path": path}
    if op == "stats":
        s = oracle.stats
        return {
            "ok": True,
            "queries": s.queries,
            "cache_hits": s.cache_hits,
            "hit_rate": s.hit_rate,
            "knn_queries": s.knn_queries,
        }
    return {"ok": False, "error": f"unknown op {op!r}"}


class DistanceServer:
    """A threaded TCP server around a :class:`DistanceOracle`.

    Args:
        oracle: the oracle to serve.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).

    Use as a context manager::

        with DistanceServer(oracle) as server:
            client = DistanceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(
        self, oracle: DistanceOracle, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._tcp = socketserver.ThreadingTCPServer(
            (host, port), _Handler, bind_and_activate=True
        )
        self._tcp.daemon_threads = True
        self._tcp.oracle = oracle  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port."""
        return self._tcp.server_address[1]

    def start(self) -> "DistanceServer":
        """Start serving on a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "DistanceServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


class DistanceClient:
    """Blocking client for :class:`DistanceServer`.

    Args:
        host: server address.
        port: server port.
        timeout: socket timeout, seconds.
    """

    def __init__(
        self, host: str, port: int, timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(request).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise ReproError(response.get("error", "unknown server error"))
        return response

    def ping(self) -> bool:
        """Liveness check."""
        return bool(self._call({"op": "ping"}).get("pong"))

    def distance(self, s: int, t: int) -> float:
        """Exact distance (``math.inf`` when unreachable)."""
        d = self._call({"op": "distance", "s": s, "t": t})["distance"]
        return math.inf if d == "inf" else float(d)

    def batch(self, pairs: List[Tuple[int, int]]) -> List[float]:
        """Distances for many pairs."""
        out = self._call({"op": "batch", "pairs": [list(p) for p in pairs]})
        return [
            math.inf if d == "inf" else float(d) for d in out["distances"]
        ]

    def k_nearest(self, s: int, k: int) -> List[Tuple[int, float]]:
        """The k nearest vertices to *s*."""
        out = self._call({"op": "knn", "s": s, "k": k})
        return [(int(v), float(d)) for v, d in out["neighbors"]]

    def shortest_path(self, s: int, t: int) -> Optional[List[int]]:
        """One shortest path, or ``None`` when unreachable."""
        return self._call({"op": "path", "s": s, "t": t})["path"]

    def stats(self) -> Dict[str, Any]:
        """Server-side request counters."""
        out = self._call({"op": "stats"})
        out.pop("ok", None)
        return out

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DistanceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
