"""Query serving: the paper's "module for context-aware search".

The introduction motivates low-latency distance queries as a backend
module for search systems.  This package is that module:

* :class:`~repro.service.oracle.DistanceOracle` — an in-process serving
  facade over a :class:`~repro.core.index.PLLIndex`: LRU-cached point
  queries, batch queries, kNN, and request statistics.
* :mod:`repro.service.server` — a line-delimited-JSON TCP server and
  client exposing the oracle over a socket, for out-of-process callers.
* :mod:`repro.service.replay` — deterministic seeded traffic replay
  (closed/open loop, Zipf/uniform/qlog sources) against the oracle or a
  live server, with an SLO verdict (``parapll-replay/1``).
"""

from repro.service.oracle import DistanceOracle, OracleStats
from repro.service.replay import (
    REPLAY_SCHEMA,
    ReplayConfig,
    generate_requests,
    render_replay,
    run_replay,
)
from repro.service.server import DistanceClient, DistanceServer

__all__ = [
    "DistanceOracle",
    "OracleStats",
    "DistanceServer",
    "DistanceClient",
    "REPLAY_SCHEMA",
    "ReplayConfig",
    "generate_requests",
    "render_replay",
    "run_replay",
]
