"""Naive two-stage baseline: precompute the full distance table.

The paper's introduction motivates PLL against exactly this strawman:
index every pair (O(n m log n) by repeated Dijkstra, or O(n^3) by
Floyd–Warshall) and answer queries with one table lookup.  We implement
both builders; :class:`APSPIndex` exposes the same build/query surface
as :class:`~repro.core.index.PLLIndex` so benchmarks can swap them.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.dijkstra import dijkstra_sssp
from repro.errors import NotIndexedError
from repro.graph.csr import CSRGraph
from repro.types import IndexStats

__all__ = ["floyd_warshall", "APSPIndex"]


def floyd_warshall(graph: CSRGraph) -> np.ndarray:
    """The O(n^3) all-pairs table, vectorised one pivot row at a time.

    Only sensible for small graphs (n up to a few thousand); used as a
    second, independently-implemented ground truth in tests.

    Returns:
        ``float64`` matrix ``D`` with ``D[u, v]`` the distance (``inf``
        when unreachable, 0 on the diagonal).
    """
    n = graph.num_vertices
    dist = np.full((n, n), np.inf, dtype=np.float64)
    np.fill_diagonal(dist, 0.0)
    for u, v, w in graph.edges():
        if w < dist[u, v]:
            dist[u, v] = w
            dist[v, u] = w
    for k in range(n):
        # dist = min(dist, dist[:, k, None] + dist[None, k, :]) in place.
        via_k = dist[:, k, None] + dist[None, k, :]
        np.minimum(dist, via_k, out=dist)
    return dist


class APSPIndex:
    """Full distance-table index: slow to build, O(1) to query.

    Args:
        graph: the graph to index.
        method: ``"dijkstra"`` (n single-source runs; default) or
            ``"floyd-warshall"``.
    """

    def __init__(self, graph: CSRGraph, method: str = "dijkstra") -> None:
        if method not in ("dijkstra", "floyd-warshall"):
            raise ValueError(f"unknown APSP method {method!r}")
        self.graph = graph
        self.method = method
        self._table: np.ndarray | None = None
        self._stats: IndexStats | None = None

    def build(self) -> IndexStats:
        """Compute the full table; returns build statistics."""
        t0 = time.perf_counter()
        n = self.graph.num_vertices
        if self.method == "floyd-warshall":
            self._table = floyd_warshall(self.graph)
        else:
            table = np.full((n, n), np.inf, dtype=np.float64)
            for s in range(n):
                table[s, :] = dijkstra_sssp(self.graph, s)
            self._table = table
        elapsed = time.perf_counter() - t0
        # Each vertex's "label" is its full table row: n entries.
        self._stats = IndexStats(
            n=n,
            total_entries=n * n,
            avg_label_size=float(n),
            max_label_size=n,
            build_seconds=elapsed,
        )
        return self._stats

    @property
    def stats(self) -> IndexStats:
        """Statistics of the last build."""
        if self._stats is None:
            raise NotIndexedError("APSPIndex.build() has not been called")
        return self._stats

    def query(self, s: int, t: int) -> float:
        """Distance between *s* and *t* by table lookup."""
        if self._table is None:
            raise NotIndexedError("APSPIndex.build() has not been called")
        self.graph._check_vertex(s)
        self.graph._check_vertex(t)
        return float(self._table[s, t])

    def distance_matrix(self) -> np.ndarray:
        """The full table (read-only view)."""
        if self._table is None:
            raise NotIndexedError("APSPIndex.build() has not been called")
        view = self._table.view()
        view.setflags(write=False)
        return view
