"""Contraction Hierarchies: the route-planning two-stage baseline.

The paper's related work contrasts PLL with road-network indexing
techniques; Contraction Hierarchies (Geisberger et al. 2008) is the
canonical one.  Preprocessing contracts vertices in importance order,
inserting *shortcuts* that preserve distances among the remaining
vertices; queries run a bidirectional Dijkstra that only relaxes edges
toward *higher* contraction rank, meeting at the top of the hierarchy.

Implementation notes:

* Importance = edge difference (shortcuts needed − incident edges) +
  number of already-contracted neighbours ("deleted neighbours"
  heuristic), maintained lazily in a priority queue.
* Witness searches (does a shortcut-free path already beat the would-be
  shortcut?) are Dijkstras from each uncontracted neighbour, limited to
  ``witness_settle_limit`` settled vertices.  A truncated witness
  search can only *add unnecessary shortcuts* — every shortcut encodes
  a real path, so queries stay exact regardless of the limit.
* The same class doubles as the "CH" competitor in the index-family
  benchmark (index time / size / query time vs. PLL and the full APSP
  table).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import NotIndexedError
from repro.graph.csr import CSRGraph
from repro.types import INF, IndexStats

__all__ = ["ContractionHierarchy"]


class ContractionHierarchy:
    """A CH index over an undirected weighted graph.

    Args:
        graph: the graph to index.
        witness_settle_limit: cap on settled vertices per witness
            search (larger = fewer shortcuts, slower preprocessing).
    """

    def __init__(
        self, graph: CSRGraph, witness_settle_limit: int = 64
    ) -> None:
        if witness_settle_limit < 1:
            raise ValueError("witness_settle_limit must be >= 1")
        self.graph = graph
        self.witness_settle_limit = witness_settle_limit
        self.rank: Optional[List[int]] = None
        self._up: Optional[List[List[Tuple[int, float]]]] = None
        self._stats: Optional[IndexStats] = None
        self.num_shortcuts = 0

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def build(self) -> IndexStats:
        """Contract all vertices; returns build statistics."""
        t0 = time.perf_counter()
        n = self.graph.num_vertices
        # All edges of the hierarchy: originals plus shortcuts found
        # during contraction (reset on rebuild).
        self._all_edges: List[Tuple[int, int, float]] = [
            (u, v, w) for u, v, w in self.graph.edges()
        ]
        # Working adjacency: dict per vertex (neighbour -> weight) over
        # the *remaining* (uncontracted) graph, mutated by contraction.
        work: List[Dict[int, float]] = [dict() for _ in range(n)]
        for u, v, w in self.graph.edges():
            if w < work[u].get(v, INF):
                work[u][v] = w
                work[v][u] = w
        contracted = [False] * n
        deleted_neighbors = [0] * n
        rank = [0] * n

        def importance(v: int) -> float:
            shortcuts = self._count_shortcuts(v, work, contracted)
            return (
                shortcuts
                - len(work[v])
                + deleted_neighbors[v]
            )

        pq: List[Tuple[float, int]] = [
            (importance(v), v) for v in range(n)
        ]
        heapq.heapify(pq)
        next_rank = 0
        self.num_shortcuts = 0
        while pq:
            _prio, v = heapq.heappop(pq)
            if contracted[v]:
                continue
            # Lazy update: re-evaluate; if no longer minimal, requeue.
            prio = importance(v)
            if pq and prio > pq[0][0]:
                heapq.heappush(pq, (prio, v))
                continue
            # Contract v: add witnesses-failing shortcuts between its
            # remaining neighbours, then remove it.
            self._contract(v, work, contracted)
            contracted[v] = True
            rank[v] = next_rank
            next_rank += 1
            for u in work[v]:
                deleted_neighbors[u] += 1

        # Build the upward search graph: original edges + shortcuts,
        # kept only toward higher rank.
        up: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for u, v, w in self._all_edges:
            if rank[v] > rank[u]:
                up[u].append((v, w))
            else:
                up[v].append((u, w))
        self.rank = rank
        self._up = up
        elapsed = time.perf_counter() - t0
        sizes = [len(lst) for lst in up]
        self._stats = IndexStats.from_sizes(sizes, elapsed)
        return self._stats

    def _count_shortcuts(
        self,
        v: int,
        work: List[Dict[int, float]],
        contracted: List[bool],
    ) -> int:
        """Shortcuts contraction of *v* would need (for importance)."""
        nbrs = [u for u in work[v] if not contracted[u]]
        count = 0
        for i, u in enumerate(nbrs):
            for w_ in nbrs[i + 1 :]:
                via = work[v][u] + work[v][w_]
                if not self._has_witness(u, w_, v, via, work, contracted):
                    count += 1
        return count

    def _contract(
        self,
        v: int,
        work: List[Dict[int, float]],
        contracted: List[bool],
    ) -> None:
        nbrs = [u for u in work[v] if not contracted[u]]
        for i, u in enumerate(nbrs):
            for w_ in nbrs[i + 1 :]:
                via = work[v][u] + work[v][w_]
                if self._has_witness(u, w_, v, via, work, contracted):
                    continue
                if via < work[u].get(w_, INF):
                    work[u][w_] = via
                    work[w_][u] = via
                    self._all_edges.append((u, w_, via))
                    self.num_shortcuts += 1
        for u in nbrs:
            work[u].pop(v, None)

    def _has_witness(
        self,
        source: int,
        target: int,
        excluded: int,
        limit_dist: float,
        work: List[Dict[int, float]],
        contracted: List[bool],
    ) -> bool:
        """Limited Dijkstra: path source->target avoiding *excluded*
        with length <= limit_dist?"""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        while heap and settled < self.witness_settle_limit:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INF):
                continue
            if u == target:
                return d <= limit_dist
            if d > limit_dist:
                return False
            settled += 1
            for x, w in work[u].items():
                if x == excluded or contracted[x]:
                    continue
                nd = d + w
                if nd < dist.get(x, INF) and nd <= limit_dist:
                    dist[x] = nd
                    heapq.heappush(heap, (nd, x))
        return dist.get(target, INF) <= limit_dist

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact distance via upward bidirectional Dijkstra.

        Raises:
            NotIndexedError: before :meth:`build`.
        """
        if self._up is None:
            raise NotIndexedError("ContractionHierarchy.build() first")
        self.graph._check_vertex(s)
        self.graph._check_vertex(t)
        if s == t:
            return 0.0
        up = self._up
        dist_f: Dict[int, float] = {s: 0.0}
        dist_b: Dict[int, float] = {t: 0.0}
        # Two complete upward sweeps, then meet at the common vertices
        # (the simple two-pass CH query; upward cones are small).
        for dist, source in ((dist_f, s), (dist_b, t)):
            heap = [(0.0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, INF):
                    continue
                for v, w in up[u]:
                    nd = d + w
                    if nd < dist.get(v, INF):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
        best = INF
        for u, df in dist_f.items():
            db = dist_b.get(u)
            if db is not None and df + db < best:
                best = df + db
        return best

    @property
    def stats(self) -> IndexStats:
        """Build statistics (upward-edge counts as 'label sizes')."""
        if self._stats is None:
            raise NotIndexedError("ContractionHierarchy.build() first")
        return self._stats
