"""Baseline shortest-path algorithms the paper compares against.

* :func:`~repro.baselines.dijkstra.dijkstra_sssp` /
  :func:`~repro.baselines.dijkstra.dijkstra_pair` — the "no index"
  baseline (query cost O((n + m) log n)).
* :func:`~repro.baselines.bidirectional.bidirectional_dijkstra` — the
  stronger online point-to-point baseline.
* :func:`~repro.baselines.bfs.bfs_distances` — unweighted special case.
* :mod:`repro.baselines.apsp` — the naive two-stage baseline from the
  paper's introduction: precompute the full O(n^2) distance table
  (O(n m log n) indexing), answer queries by table lookup.

These also serve as ground truth for every correctness test of PLL and
ParaPLL.
"""

from repro.baselines.apsp import APSPIndex, floyd_warshall
from repro.baselines.bfs import bfs_distances, bfs_pair
from repro.baselines.bidirectional import bidirectional_dijkstra
from repro.baselines.ch import ContractionHierarchy
from repro.baselines.dijkstra import dijkstra_pair, dijkstra_sssp

__all__ = [
    "dijkstra_sssp",
    "dijkstra_pair",
    "bidirectional_dijkstra",
    "bfs_distances",
    "bfs_pair",
    "floyd_warshall",
    "APSPIndex",
    "ContractionHierarchy",
]
