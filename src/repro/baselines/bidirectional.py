"""Bidirectional Dijkstra: the strong online point-to-point baseline.

Searches forward from the source and backward from the target
(identical on an undirected graph), alternating by frontier key, and
stops when the sum of the two frontier minima exceeds the best meeting
distance found so far — the standard stopping criterion, correct for
non-negative weights.
"""

from __future__ import annotations

from typing import List

from repro.graph.csr import CSRGraph
from repro.pq.simple import LazyHeapPQ
from repro.types import INF

__all__ = ["bidirectional_dijkstra"]


def bidirectional_dijkstra(graph: CSRGraph, source: int, target: int) -> float:
    """Point-to-point distance by bidirectional search.

    Returns:
        The distance from *source* to *target*, ``math.inf`` if no path
        exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    adj = graph.adjacency_lists()

    dist_f: List[float] = [INF] * n
    dist_b: List[float] = [INF] * n
    dist_f[source] = 0.0
    dist_b[target] = 0.0
    settled_f = [False] * n
    settled_b = [False] * n

    pq_f = LazyHeapPQ()
    pq_b = LazyHeapPQ()
    pq_f.push(source, 0.0)
    pq_b.push(target, 0.0)

    best = INF
    while pq_f and pq_b:
        key_f, _ = pq_f.peek()
        key_b, _ = pq_b.peek()
        if key_f + key_b >= best:
            break
        # Expand the side with the smaller frontier key.
        if key_f <= key_b:
            d, u = pq_f.pop_min()
            if d > dist_f[u]:
                continue
            settled_f[u] = True
            for v, w in adj[u]:
                nd = d + w
                if nd < dist_f[v]:
                    dist_f[v] = nd
                    pq_f.push(v, nd)
                if dist_b[v] != INF and nd + dist_b[v] < best:
                    best = nd + dist_b[v]
            if settled_b[u] and dist_f[u] + dist_b[u] < best:
                best = dist_f[u] + dist_b[u]
        else:
            d, u = pq_b.pop_min()
            if d > dist_b[u]:
                continue
            settled_b[u] = True
            for v, w in adj[u]:
                nd = d + w
                if nd < dist_b[v]:
                    dist_b[v] = nd
                    pq_b.push(v, nd)
                if dist_f[v] != INF and nd + dist_f[v] < best:
                    best = nd + dist_f[v]
            if settled_f[u] and dist_f[u] + dist_b[u] < best:
                best = dist_f[u] + dist_b[u]
    return best
