"""Plain Dijkstra: the paper's "no index" baseline and our ground truth.

Two entry points:

* :func:`dijkstra_sssp` — distances from one source to all vertices.
* :func:`dijkstra_pair` — point-to-point with early termination when the
  target is settled (the realistic online-query baseline).

Both accept any :class:`~repro.pq.base.PriorityQueue` implementation;
the default is the lazy ``heapq`` queue, which profiling shows to be the
fastest in CPython.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.graph.csr import CSRGraph
from repro.pq.simple import LazyHeapPQ
from repro.types import INF

__all__ = ["dijkstra_sssp", "dijkstra_pair"]


def dijkstra_sssp(
    graph: CSRGraph,
    source: int,
    pq_factory: Callable[[], object] = LazyHeapPQ,
) -> List[float]:
    """Single-source shortest-path distances from *source*.

    Args:
        graph: the graph to search.
        source: the source vertex.
        pq_factory: priority-queue constructor (ablation hook).

    Returns:
        A list ``dist`` of length ``n`` with ``dist[v]`` the distance
        from *source* to ``v`` (``math.inf`` when unreachable).
    """
    graph._check_vertex(source)
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    dist: List[float] = [INF] * n
    dist[source] = 0.0
    pq = pq_factory()
    pq.push(source, 0.0)
    pq_push = pq.push
    pq_pop = pq.pop_min
    while pq:
        d, u = pq_pop()
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pq_push(v, nd)
    return dist


def dijkstra_pair(
    graph: CSRGraph,
    source: int,
    target: int,
    pq_factory: Callable[[], object] = LazyHeapPQ,
) -> float:
    """Point-to-point distance with early exit when *target* settles.

    Returns:
        The distance from *source* to *target*, ``math.inf`` if no path
        exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    dist: List[float] = [INF] * n
    dist[source] = 0.0
    pq = pq_factory()
    pq.push(source, 0.0)
    while pq:
        d, u = pq.pop_min()
        if d > dist[u]:
            continue
        if u == target:
            return d
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pq.push(v, nd)
    return INF


def shortest_path_tree(
    graph: CSRGraph, source: int
) -> tuple[List[float], List[int]]:
    """Distances plus a parent array describing one shortest-path tree.

    Returns:
        ``(dist, parent)`` where ``parent[v]`` is the predecessor of
        ``v`` on a shortest path from *source* (``-1`` for the source
        itself and for unreachable vertices).
    """
    graph._check_vertex(source)
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    dist: List[float] = [INF] * n
    parent: List[int] = [-1] * n
    dist[source] = 0.0
    pq = LazyHeapPQ()
    pq.push(source, 0.0)
    while pq:
        d, u = pq.pop_min()
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                pq.push(v, nd)
    return dist, parent


def reconstruct_path(parent: List[int], target: int) -> Optional[List[int]]:
    """Recover the vertex sequence of a tree path ending at *target*.

    Args:
        parent: parent array from :func:`shortest_path_tree`.
        target: path endpoint.

    Returns:
        The path from the tree root to *target* (inclusive), or ``None``
        when *target* was unreachable (no parent and not a root with
        ``parent[target] == -1`` reachable check is up to the caller:
        a vertex with ``parent == -1`` that is not the source yields a
        single-element path).
    """
    path = [target]
    u = target
    seen = {target}
    while parent[u] != -1:
        u = parent[u]
        if u in seen:  # defensive: corrupted parent array
            return None
        seen.add(u)
        path.append(u)
    path.reverse()
    return path
