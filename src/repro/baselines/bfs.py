"""Breadth-first search for the unit-weight special case.

The original PLL paper targets unweighted graphs and uses pruned BFS;
ParaPLL generalises to weights via pruned Dijkstra.  We keep BFS as the
unweighted ground truth so tests can cross-check that the weighted
machinery specialises correctly when all weights are 1.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.graph.csr import CSRGraph
from repro.types import INF

__all__ = ["bfs_distances", "bfs_pair"]


def bfs_distances(graph: CSRGraph, source: int) -> List[float]:
    """Hop distances from *source*, as floats to match the weighted API.

    Edge weights are ignored; every edge counts 1.
    """
    graph._check_vertex(source)
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    dist: List[float] = [INF] * n
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u] + 1.0
        for v, _w in adj[u]:
            if dist[v] == INF:
                dist[v] = du
                queue.append(v)
    return dist


def bfs_pair(graph: CSRGraph, source: int, target: int) -> float:
    """Hop distance between two vertices with early exit."""
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    n = graph.num_vertices
    adj = graph.adjacency_lists()
    dist: List[float] = [INF] * n
    dist[source] = 0.0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u] + 1.0
        for v, _w in adj[u]:
            if dist[v] == INF:
                if v == target:
                    return du
                dist[v] = du
                queue.append(v)
    return INF
