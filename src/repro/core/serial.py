"""The serial weighted PLL indexer (the paper's §4.1 baseline).

Runs pruned Dijkstra from every vertex in ordering sequence, committing
each root's delta before the next root starts — the optimal-pruning
reference that all parallel variants are compared against (their "PLL"
and "1 thread" columns in Tables 3 and 4).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

from repro.core.labels import LabelStore
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import trace as _trace
from repro.obs.timers import PhaseTimer
from repro.types import IndexStats, SearchStats

__all__ = ["build_serial"]


def build_serial(
    graph: CSRGraph,
    order: Optional[Sequence[int]] = None,
    pq_factory: Optional[Callable[[], object]] = None,
    collect_per_root: bool = False,
) -> Tuple[LabelStore, IndexStats]:
    """Build a complete 2-hop-cover label set serially.

    Args:
        graph: the graph to index.
        order: vertex ordering (defaults to descending degree, the
            paper's choice).
        pq_factory: optional priority-queue override (ablation hook).
        collect_per_root: also record one :class:`SearchStats` per root
            in indexing order.  Needed by the Figure-6 CDF and by the
            simulator's cost calibration; off by default because the
            counters add measurable overhead to the hot loop.

    Returns:
        ``(store, stats)`` — the label store (already finalized) and the
        build statistics.
    """
    timer = PhaseTimer()
    with timer.phase("order"):
        if order is None:
            order = by_degree(graph)
        engine = PrunedDijkstra(graph, order, pq_factory=pq_factory)
    store = LabelStore(graph.num_vertices)

    per_root: list[SearchStats] = []
    # An installed build monitor needs per-root counters even when the
    # caller did not ask to keep them.
    monitor = _buildmon.active()
    collect = collect_per_root or monitor is not None
    t0 = time.perf_counter()
    with timer.phase("search"), _trace.span(
        "build_serial", n=graph.num_vertices
    ):
        if collect:
            for root in engine.order:
                with _trace.span("root_search", root=int(root), worker=0) as sp:
                    stats = SearchStats()
                    delta = engine.run(int(root), store, stats)
                    engine.commit(int(root), delta, store)
                    sp.set(labels=len(delta))
                if collect_per_root:
                    per_root.append(stats)
                if monitor is not None:
                    monitor.root_done(0, int(root), stats=stats)
        else:
            for root in engine.order:
                with _trace.span("root_search", root=int(root), worker=0) as sp:
                    delta = engine.run(int(root), store)
                    engine.commit(int(root), delta, store)
                    sp.set(labels=len(delta))
    elapsed = time.perf_counter() - t0

    with timer.phase("finalize"):
        store.finalize()
    stats = IndexStats.from_sizes(store.label_sizes(), elapsed)
    stats.per_root = per_root
    return store, stats
