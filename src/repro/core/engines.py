"""Engine registry: pruned search implementations by name.

Every builder (serial, threaded, simulated, cluster) runs some *engine*
with the ``run(root, store, stats) -> delta`` / ``commit`` / ``rank_of``
interface.  Two engines exist:

* ``"dijkstra"`` — the paper's weighted pruned Dijkstra (Algorithm 1).
* ``"bfs"`` — the original unweighted pruned BFS (ignores weights,
  distances are hop counts); with it, the parallel builders realise the
  unit-weight parallel PLL of the paper's reference [11].
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Union

from repro.core.pruned_bfs import PrunedBFS
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.errors import ReproError
from repro.graph.csr import CSRGraph

__all__ = ["ENGINES", "make_engine", "EngineLike"]

#: Any object implementing the pruned-search engine interface.
EngineLike = Union[PrunedDijkstra, PrunedBFS]

ENGINES: Dict[str, Callable[..., EngineLike]] = {
    "dijkstra": PrunedDijkstra,
    "bfs": PrunedBFS,
}


def make_engine(
    name: str,
    graph: CSRGraph,
    order: Sequence[int],
    pq_factory: Optional[Callable[[], object]] = None,
) -> EngineLike:
    """Instantiate a pruned-search engine by name.

    Args:
        name: ``"dijkstra"`` or ``"bfs"``.
        graph: the graph to index.
        order: the vertex ordering.
        pq_factory: priority-queue override (Dijkstra engine only).

    Raises:
        ReproError: for unknown engine names.
    """
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ReproError(
            f"unknown engine {name!r}; choose from {sorted(ENGINES)}"
        ) from None
    if name == "dijkstra":
        return cls(graph, order, pq_factory=pq_factory)
    return cls(graph, order)
