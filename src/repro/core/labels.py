"""The 2-hop-cover label store.

``L(v)`` is a set of ``(hub, distance)`` pairs meaning "the distance
from hub to v is exactly d".  Internally hubs are stored by *rank* —
their position in the vertex ordering — because the pruning query is a
dense array lookup keyed by rank, and because rank order is the natural
sort order for the merge-join query.

Two layouts, one per lifecycle phase:

* **Mutable phase** — two parallel Python lists per vertex
  (``_hubs[v]``, ``_dists[v]``).  Plain lists beat numpy here: entries
  arrive one at a time from a pure-Python search loop, and the pruning
  query iterates a few dozen entries per probe — exactly the regime
  where native lists win (see the HPC optimisation guide on scalar
  numpy overhead).
* **Finalized phase** — one flat CSR triple (``indptr: int64[n+1]``,
  ``hubs: int64[E]``, ``dists: float64[E]``), built once by
  :meth:`finalize`.  :meth:`finalized_hubs` / :meth:`finalized_dists`
  are zero-copy slices into the flat arrays, :meth:`to_arrays` is a
  near-no-op, and :meth:`from_arrays` *adopts* arrays directly (no
  Python-list round-trip), which is what makes :meth:`PLLIndex.load
  <repro.core.index.PLLIndex.load>` O(1) instead of O(E).

A store built by :meth:`from_arrays` is *frozen*: it has no mutable
lists until the first mutation, which thaws it (one O(E) expansion).
Read accessors work directly off the CSR arrays while frozen.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, NotIndexedError

__all__ = ["LabelStore"]


def _sort_dedup_flat(
    n: int,
    hub_lists: Sequence[Sequence[int]],
    dist_lists: Sequence[Sequence[float]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-vertex label lists into a sorted, deduplicated CSR triple.

    Entries are sorted by (vertex, hub rank, distance) in one global
    ``lexsort``; duplicated (vertex, hub) pairs — which arise from
    delayed synchronisation — keep the smallest distance, which by
    construction is the true distance (every stored distance for the
    same pair comes from an exact Dijkstra run from the hub).
    """
    sizes = np.fromiter((len(h) for h in hub_lists), dtype=np.int64, count=n)
    total = int(sizes.sum())
    hubs = np.empty(total, dtype=np.int64)
    dists = np.empty(total, dtype=np.float64)
    pos = 0
    for v in range(n):
        k = int(sizes[v])
        if k:
            # The lock-free writer appends the distance before the hub,
            # so either list may momentarily run one entry long relative
            # to the committed length captured in ``sizes``; the first k
            # entries of both are the committed ones.
            hubs[pos:pos + k] = hub_lists[v][:k]
            dists[pos:pos + k] = dist_lists[v][:k]
            pos += k
    owner = np.repeat(np.arange(n, dtype=np.int64), sizes)
    if total:
        order = np.lexsort((dists, hubs, owner))
        hubs = hubs[order]
        dists = dists[order]
        owner = owner[order]
        keep = np.empty(total, dtype=bool)
        keep[0] = True
        keep[1:] = (hubs[1:] != hubs[:-1]) | (owner[1:] != owner[:-1])
        hubs = hubs[keep]
        dists = dists[keep]
        owner = owner[keep]
    counts = np.bincount(owner, minlength=n) if total else np.zeros(
        n, dtype=np.int64
    )
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, hubs, dists


def _validate_csr(
    indptr: np.ndarray, hubs: np.ndarray, dists: np.ndarray
) -> None:
    """Reject structurally corrupt CSR label arrays.

    Raises:
        GraphError: naming the first offending vertex, for decreasing
            ``indptr`` runs, out-of-range hub ranks, or per-vertex hub
            runs that are not strictly increasing (unsorted or
            duplicated hubs).
    """
    n = len(indptr) - 1
    diffs = np.diff(indptr)
    bad = np.flatnonzero(diffs < 0)
    if bad.size:
        raise GraphError(
            f"label indptr decreases at vertex {int(bad[0])} "
            f"({int(indptr[bad[0]])} -> {int(indptr[bad[0] + 1])})"
        )
    num_entries = len(hubs)
    if num_entries == 0:
        return
    if int(hubs.min()) < 0 or int(hubs.max()) >= n:
        pos = int(np.flatnonzero((hubs < 0) | (hubs >= n))[0])
        v = int(np.searchsorted(indptr, pos, side="right") - 1)
        raise GraphError(
            f"hub rank {int(hubs[pos])} out of range [0, {n}) in L({v})"
        )
    run_start = np.zeros(num_entries, dtype=bool)
    starts = indptr[:-1]
    run_start[starts[starts < num_entries]] = True
    bad = np.flatnonzero(~run_start[1:] & (hubs[1:] <= hubs[:-1]))
    if bad.size:
        pos = int(bad[0]) + 1
        v = int(np.searchsorted(indptr, pos, side="right") - 1)
        kind = (
            "duplicated" if int(hubs[pos]) == int(hubs[pos - 1]) else "unsorted"
        )
        raise GraphError(f"label hubs of vertex {v} are {kind}")


class LabelStore:
    """Mutable per-vertex label lists, keyed by hub rank.

    Args:
        n: number of vertices.

    The store starts empty (the paper's ``L_0``).  Builders append with
    :meth:`add` or :meth:`add_delta`; the pruning query reads through
    :meth:`hubs_of` / :meth:`dists_of`; :meth:`finalize` freezes the
    store into the flat CSR form.
    """

    __slots__ = (
        "n",
        "_hubs",
        "_dists",
        "_finalized_indptr",
        "_finalized_hubs",
        "_finalized_dists",
    )

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError("label store size must be non-negative")
        self.n = n
        self._hubs: Optional[List[List[int]]] = [[] for _ in range(n)]
        self._dists: Optional[List[List[float]]] = [[] for _ in range(n)]
        self._finalized_indptr: Optional[np.ndarray] = None
        self._finalized_hubs: Optional[np.ndarray] = None
        self._finalized_dists: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Frozen-store support
    # ------------------------------------------------------------------
    @property
    def _frozen(self) -> bool:
        """True for an adopted store with no mutable lists yet."""
        return self._hubs is None

    def _thaw(self) -> None:
        """Materialise the mutable lists from the CSR arrays (once)."""
        if self._hubs is not None:
            return
        assert self._finalized_indptr is not None
        assert self._finalized_hubs is not None
        assert self._finalized_dists is not None
        indptr = self._finalized_indptr
        hubs = self._finalized_hubs
        dists = self._finalized_dists
        self._hubs = [
            hubs[int(indptr[v]):int(indptr[v + 1])].tolist()
            for v in range(self.n)
        ]
        self._dists = [
            dists[int(indptr[v]):int(indptr[v + 1])].tolist()
            for v in range(self.n)
        ]

    def _invalidate(self) -> None:
        self._finalized_indptr = None
        self._finalized_hubs = None
        self._finalized_dists = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, v: int, hub_rank: int, dist: float) -> None:
        """Append one label entry ``(hub_rank, dist)`` to ``L(v)``.

        The distance is appended *before* the hub: concurrent lock-free
        readers (the pruning loop in other threads) capture
        ``len(hubs_of(v))`` first, so writing dists first guarantees any
        visible hub has its distance in place (CPython list appends are
        atomic under the GIL).
        """
        if self._hubs is None:
            self._thaw()
        self._dists[v].append(dist)
        self._hubs[v].append(hub_rank)
        self._invalidate()

    def add_delta(self, delta: Iterable[Tuple[int, int, float]]) -> int:
        """Bulk-append ``(v, hub_rank, dist)`` triples; returns the count.

        Duplicate (v, hub) pairs are tolerated (they arise from delayed
        synchronisation); queries take a min so duplicates are harmless,
        and :meth:`finalize` deduplicates keeping the smallest distance.
        """
        if self._hubs is None:
            self._thaw()
        hubs, dists = self._hubs, self._dists
        count = 0
        for v, h, d in delta:
            dists[v].append(d)
            hubs[v].append(h)
            count += 1
        if count:
            self._invalidate()
        return count

    def extend_from_arrays(
        self,
        verts: Sequence[int],
        hub_ranks: Sequence[int],
        dists: Sequence[float],
    ) -> int:
        """Bulk-append parallel ``verts/hub_ranks/dists`` arrays.

        The array-triple twin of :meth:`add_delta`, used to sync a
        process-local mirror from the shared committed-label log (see
        :mod:`repro.parallel.shm`) without materialising tuples.
        Duplicate (v, hub) pairs are tolerated exactly as in
        :meth:`add_delta`.  Returns the number of entries appended.
        """
        if self._hubs is None:
            self._thaw()
        hubs_l, dists_l = self._hubs, self._dists
        count = 0
        for v, h, d in zip(verts, hub_ranks, dists):
            v = int(v)
            dists_l[v].append(float(d))
            hubs_l[v].append(int(h))
            count += 1
        if count:
            self._invalidate()
        return count

    # ------------------------------------------------------------------
    # Read access (pruning path)
    # ------------------------------------------------------------------
    def hubs_of(self, v: int) -> Sequence[int]:
        """Hub ranks of ``L(v)`` (live list — do not mutate).

        On a frozen (loaded) store this is a zero-copy CSR slice.
        """
        if self._hubs is not None:
            return self._hubs[v]
        return self.finalized_hubs(v)

    def dists_of(self, v: int) -> Sequence[float]:
        """Distances of ``L(v)``, parallel to :meth:`hubs_of`."""
        if self._dists is not None:
            return self._dists[v]
        return self.finalized_dists(v)

    def entries_of(self, v: int) -> List[Tuple[int, float]]:
        """``(hub_rank, dist)`` pairs of ``L(v)`` (copied)."""
        if self._hubs is not None:
            return list(zip(self._hubs[v], self._dists[v]))
        return list(
            zip(
                self.finalized_hubs(v).tolist(),
                self.finalized_dists(v).tolist(),
            )
        )

    def label_size(self, v: int) -> int:
        """Number of entries in ``L(v)``."""
        if self._hubs is not None:
            return len(self._hubs[v])
        indptr = self._finalized_indptr
        return int(indptr[v + 1] - indptr[v])

    def label_sizes(self) -> List[int]:
        """Per-vertex label sizes."""
        if self._hubs is not None:
            return [len(h) for h in self._hubs]
        return np.diff(self._finalized_indptr).tolist()

    @property
    def total_entries(self) -> int:
        """Total entries across all vertices."""
        if self._hubs is not None:
            return sum(len(h) for h in self._hubs)
        return len(self._finalized_hubs)

    @property
    def avg_label_size(self) -> float:
        """The paper's "LN": mean entries per vertex."""
        return self.total_entries / self.n if self.n else 0.0

    # ------------------------------------------------------------------
    # Finalisation (query stage)
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Sort each label by hub rank, deduplicate, and freeze to CSR.

        Safe to call repeatedly; re-finalises only after mutations (and
        is a no-op on a store adopted via :meth:`from_arrays`).
        Duplicated hubs (from delayed synchronisation) keep the smallest
        distance — which by construction is the true distance, since any
        stored distance for the same (hub, v) pair is produced by an
        exact Dijkstra from the hub.
        """
        if self._finalized_hubs is not None:
            return
        indptr, hubs, dists = _sort_dedup_flat(self.n, self._hubs, self._dists)
        self._finalized_indptr = indptr
        self._finalized_hubs = hubs
        self._finalized_dists = dists

    def finalized_hubs(self, v: int) -> np.ndarray:
        """Sorted, deduplicated hub ranks of ``L(v)``: a zero-copy slice
        of the flat CSR array (after finalize)."""
        if self._finalized_hubs is None:
            raise NotIndexedError("call LabelStore.finalize() first")
        indptr = self._finalized_indptr
        return self._finalized_hubs[int(indptr[v]):int(indptr[v + 1])]

    def finalized_dists(self, v: int) -> np.ndarray:
        """Distances parallel to :meth:`finalized_hubs` (zero-copy)."""
        if self._finalized_dists is None:
            raise NotIndexedError("call LabelStore.finalize() first")
        indptr = self._finalized_indptr
        return self._finalized_dists[int(indptr[v]):int(indptr[v + 1])]

    def finalized_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat CSR triple ``(indptr, hubs, dists)`` (finalizing
        first if needed).

        This is the sanctioned accessor for vectorised kernels (the
        batch query) and serialisation; the arrays are shared with the
        store — treat them as read-only.
        """
        self.finalize()
        return self._finalized_indptr, self._finalized_hubs, self._finalized_dists

    def memory_breakdown(self) -> Dict[str, object]:
        """Per-array memory attribution of the finalized CSR triple.

        Returns:
            dict with per-array byte sizes (``indptr_bytes``,
            ``hubs_bytes``, ``dists_bytes``, ``total_bytes``),
            ``bytes_per_entry`` (0.0 for an empty store), ``mmap``
            (True when the arrays are memory-mapped, i.e. a ``dir``
            bundle loaded with ``mmap=True``), and
            ``resident_bytes_estimate`` — for mmap-backed stores the
            touched-page estimate (indptr is always walked; hub/dist
            pages fault in on demand, so the floor is the indptr size),
            for in-RAM stores simply the total.
        """
        indptr, hubs, dists = self.finalized_arrays()
        indptr_b = int(indptr.nbytes)
        hubs_b = int(hubs.nbytes)
        dists_b = int(dists.nbytes)
        total = indptr_b + hubs_b + dists_b
        is_mmap = any(
            isinstance(a, np.memmap) for a in (indptr, hubs, dists)
        )
        entries = len(hubs)
        return {
            "indptr_bytes": indptr_b,
            "hubs_bytes": hubs_b,
            "dists_bytes": dists_b,
            "total_bytes": total,
            "bytes_per_entry": (
                (hubs_b + dists_b) / entries if entries else 0.0
            ),
            "mmap": is_mmap,
            "resident_bytes_estimate": indptr_b if is_mmap else total,
        }

    # ------------------------------------------------------------------
    # Merging / copying (cluster substrate)
    # ------------------------------------------------------------------
    def copy(self) -> "LabelStore":
        """Deep copy of the mutable label lists."""
        if self._hubs is None:
            self._thaw()
        other = LabelStore(self.n)
        other._hubs = [list(h) for h in self._hubs]
        other._dists = [list(d) for d in self._dists]
        return other

    def merge_from(self, other: "LabelStore") -> int:
        """Union *other*'s entries into this store; returns entries added.

        Exact-duplicate (v, hub) pairs already present are skipped so that
        repeated synchronisation rounds don't inflate the store.
        """
        if other.n != self.n:
            raise GraphError("cannot merge label stores of different sizes")
        if self._hubs is None:
            self._thaw()
        added = 0
        for v in range(self.n):
            have = set(self._hubs[v])
            entries = other.entries_of(v)
            for h, d in entries:
                if h not in have:
                    self._hubs[v].append(h)
                    self._dists[v].append(d)
                    have.add(h)
                    added += 1
        if added:
            self._invalidate()
        return added

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The (finalized) store as three flat arrays for ``np.savez``.

        Returns:
            dict with ``indptr`` (int64, n+1), ``hubs`` (int64) and
            ``dists`` (float64).  The arrays are the store's own CSR
            arrays (zero-copy) — treat them as read-only.
        """
        indptr, hubs, dists = self.finalized_arrays()
        return {"indptr": indptr, "hubs": hubs, "dists": dists}

    @classmethod
    def from_arrays(
        cls,
        indptr: Sequence[int],
        hubs: Sequence[int],
        dists: Sequence[float],
        validate: bool = True,
    ) -> "LabelStore":
        """Adopt a CSR triple produced by :meth:`to_arrays` — zero-copy.

        The arrays become the finalized representation directly (no
        Python-list round-trip, no re-sort, no re-dedup); the returned
        store is frozen until the first mutation thaws it.  Memory-mapped
        arrays are adopted as-is, so a loaded index can serve queries
        without materialising the labels in RAM.

        Args:
            indptr: int64 ``n+1`` CSR row pointer.
            hubs: int64 hub ranks, strictly increasing per vertex.
            dists: float64 distances parallel to *hubs*.
            validate: structurally validate the arrays (monotone
                ``indptr``, in-range sorted hub runs).  Only disable for
                arrays straight out of :meth:`to_arrays`.

        Raises:
            GraphError: for structurally invalid arrays (with the
                offending vertex named).
        """
        # Keep np.memmap instances as-is (asarray would strip the
        # subclass); only coerce when the dtype is off.
        if not (isinstance(indptr, np.ndarray) and indptr.dtype == np.int64):
            indptr = np.asarray(indptr, dtype=np.int64)
        if not (isinstance(hubs, np.ndarray) and hubs.dtype == np.int64):
            hubs = np.asarray(hubs, dtype=np.int64)
        if not (isinstance(dists, np.ndarray) and dists.dtype == np.float64):
            dists = np.asarray(dists, dtype=np.float64)
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(hubs):
            raise GraphError("invalid label indptr")
        if len(hubs) != len(dists):
            raise GraphError("hubs and dists must have equal length")
        if validate:
            _validate_csr(indptr, hubs, dists)
        store = cls.__new__(cls)
        store.n = len(indptr) - 1
        store._hubs = None
        store._dists = None
        store._finalized_indptr = indptr
        store._finalized_hubs = hubs
        store._finalized_dists = dists
        return store

    # ------------------------------------------------------------------
    def _min_entry_map(self, v: int) -> Dict[int, float]:
        """``hub -> min distance`` for ``L(v)``, duplicate-safe."""
        out: Dict[int, float] = {}
        for h, d in self.entries_of(v):
            h = int(h)
            prev = out.get(h)
            if prev is None or d < prev:
                out[h] = d
        return out

    def __eq__(self, other: object) -> bool:
        """Set equality of label entries, distance-aware.

        Duplicated hubs (delayed synchronisation) are reduced with min
        before comparing, so two stores holding the same *semantic*
        labels compare equal regardless of duplicate order.
        """
        if not isinstance(other, LabelStore):
            return NotImplemented
        if self.n != other.n:
            return False
        for v in range(self.n):
            if self._min_entry_map(v) != other._min_entry_map(v):
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelStore(n={self.n}, entries={self.total_entries}, "
            f"avg={self.avg_label_size:.1f})"
        )
