"""The 2-hop-cover label store.

``L(v)`` is a set of ``(hub, distance)`` pairs meaning "the distance
from hub to v is exactly d".  Internally hubs are stored by *rank* —
their position in the vertex ordering — because the pruning query is a
dense array lookup keyed by rank, and because rank order is the natural
sort order for the merge-join query.

Layout: two parallel Python lists per vertex (``_hubs[v]``,
``_dists[v]``).  Plain lists beat numpy here: entries arrive one at a
time from a pure-Python search loop, and the pruning query iterates a
few dozen entries per probe — exactly the regime where native lists win
(see the HPC optimisation guide on scalar numpy overhead).
:meth:`LabelStore.finalize` converts to sorted numpy arrays for the
query stage and for serialisation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, NotIndexedError

__all__ = ["LabelStore"]


class LabelStore:
    """Mutable per-vertex label lists, keyed by hub rank.

    Args:
        n: number of vertices.

    The store starts empty (the paper's ``L_0``).  Builders append with
    :meth:`add` or :meth:`add_delta`; the pruning query reads through
    :meth:`hubs_of` / :meth:`dists_of`; :meth:`finalize` freezes the
    store into numpy form.
    """

    __slots__ = ("n", "_hubs", "_dists", "_finalized_hubs", "_finalized_dists")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise GraphError("label store size must be non-negative")
        self.n = n
        self._hubs: List[List[int]] = [[] for _ in range(n)]
        self._dists: List[List[float]] = [[] for _ in range(n)]
        self._finalized_hubs: List[np.ndarray] | None = None
        self._finalized_dists: List[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, v: int, hub_rank: int, dist: float) -> None:
        """Append one label entry ``(hub_rank, dist)`` to ``L(v)``.

        The distance is appended *before* the hub: concurrent lock-free
        readers (the pruning loop in other threads) capture
        ``len(hubs_of(v))`` first, so writing dists first guarantees any
        visible hub has its distance in place (CPython list appends are
        atomic under the GIL).
        """
        self._dists[v].append(dist)
        self._hubs[v].append(hub_rank)
        self._finalized_hubs = None
        self._finalized_dists = None

    def add_delta(self, delta: Iterable[Tuple[int, int, float]]) -> int:
        """Bulk-append ``(v, hub_rank, dist)`` triples; returns the count.

        Duplicate (v, hub) pairs are tolerated (they arise from delayed
        synchronisation); queries take a min so duplicates are harmless,
        and :meth:`finalize` deduplicates keeping the smallest distance.
        """
        hubs, dists = self._hubs, self._dists
        count = 0
        for v, h, d in delta:
            dists[v].append(d)
            hubs[v].append(h)
            count += 1
        if count:
            self._finalized_hubs = None
            self._finalized_dists = None
        return count

    # ------------------------------------------------------------------
    # Read access (pruning path)
    # ------------------------------------------------------------------
    def hubs_of(self, v: int) -> List[int]:
        """Hub ranks of ``L(v)`` (live list — do not mutate)."""
        return self._hubs[v]

    def dists_of(self, v: int) -> List[float]:
        """Distances of ``L(v)``, parallel to :meth:`hubs_of`."""
        return self._dists[v]

    def entries_of(self, v: int) -> List[Tuple[int, float]]:
        """``(hub_rank, dist)`` pairs of ``L(v)`` (copied)."""
        return list(zip(self._hubs[v], self._dists[v]))

    def label_size(self, v: int) -> int:
        """Number of entries in ``L(v)``."""
        return len(self._hubs[v])

    def label_sizes(self) -> List[int]:
        """Per-vertex label sizes."""
        return [len(h) for h in self._hubs]

    @property
    def total_entries(self) -> int:
        """Total entries across all vertices."""
        return sum(len(h) for h in self._hubs)

    @property
    def avg_label_size(self) -> float:
        """The paper's "LN": mean entries per vertex."""
        return self.total_entries / self.n if self.n else 0.0

    # ------------------------------------------------------------------
    # Finalisation (query stage)
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Sort each label by hub rank, deduplicate, and freeze to numpy.

        Safe to call repeatedly; re-finalises only after mutations.
        Duplicated hubs (from delayed synchronisation) keep the smallest
        distance — which by construction is the true distance, since any
        stored distance for the same (hub, v) pair is produced by an
        exact Dijkstra from the hub.
        """
        if self._finalized_hubs is not None:
            return
        fh: List[np.ndarray] = []
        fd: List[np.ndarray] = []
        for v in range(self.n):
            h = np.asarray(self._hubs[v], dtype=np.int64)
            d = np.asarray(self._dists[v], dtype=np.float64)
            if len(h) > 1:
                order = np.lexsort((d, h))
                h = h[order]
                d = d[order]
                keep = np.empty(len(h), dtype=bool)
                keep[0] = True
                np.not_equal(h[1:], h[:-1], out=keep[1:])
                h = h[keep]
                d = d[keep]
            fh.append(h)
            fd.append(d)
        self._finalized_hubs = fh
        self._finalized_dists = fd

    def finalized_hubs(self, v: int) -> np.ndarray:
        """Sorted, deduplicated hub ranks of ``L(v)`` (after finalize)."""
        if self._finalized_hubs is None:
            raise NotIndexedError("call LabelStore.finalize() first")
        return self._finalized_hubs[v]

    def finalized_dists(self, v: int) -> np.ndarray:
        """Distances parallel to :meth:`finalized_hubs`."""
        if self._finalized_dists is None:
            raise NotIndexedError("call LabelStore.finalize() first")
        return self._finalized_dists[v]

    # ------------------------------------------------------------------
    # Merging / copying (cluster substrate)
    # ------------------------------------------------------------------
    def copy(self) -> "LabelStore":
        """Deep copy of the mutable label lists."""
        other = LabelStore(self.n)
        other._hubs = [list(h) for h in self._hubs]
        other._dists = [list(d) for d in self._dists]
        return other

    def merge_from(self, other: "LabelStore") -> int:
        """Union *other*'s entries into this store; returns entries added.

        Exact-duplicate (v, hub) pairs already present are skipped so that
        repeated synchronisation rounds don't inflate the store.
        """
        if other.n != self.n:
            raise GraphError("cannot merge label stores of different sizes")
        added = 0
        for v in range(self.n):
            have = set(self._hubs[v])
            oh, od = other._hubs[v], other._dists[v]
            for i in range(len(oh)):
                if oh[i] not in have:
                    self._hubs[v].append(oh[i])
                    self._dists[v].append(od[i])
                    have.add(oh[i])
                    added += 1
        if added:
            self._finalized_hubs = None
            self._finalized_dists = None
        return added

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the (finalized) store into three arrays for ``np.savez``.

        Returns:
            dict with ``indptr`` (int64, n+1), ``hubs`` (int64) and
            ``dists`` (float64).
        """
        self.finalize()
        assert self._finalized_hubs is not None
        assert self._finalized_dists is not None
        sizes = [len(h) for h in self._finalized_hubs]
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        hubs = (
            np.concatenate(self._finalized_hubs)
            if self.n
            else np.empty(0, dtype=np.int64)
        )
        dists = (
            np.concatenate(self._finalized_dists)
            if self.n
            else np.empty(0, dtype=np.float64)
        )
        return {"indptr": indptr, "hubs": hubs, "dists": dists}

    @classmethod
    def from_arrays(
        cls,
        indptr: Sequence[int],
        hubs: Sequence[int],
        dists: Sequence[float],
    ) -> "LabelStore":
        """Rebuild a store from :meth:`to_arrays` output."""
        indptr = np.asarray(indptr, dtype=np.int64)
        hubs = np.asarray(hubs, dtype=np.int64)
        dists = np.asarray(dists, dtype=np.float64)
        if len(indptr) == 0 or indptr[0] != 0 or indptr[-1] != len(hubs):
            raise GraphError("invalid label indptr")
        if len(hubs) != len(dists):
            raise GraphError("hubs and dists must have equal length")
        store = cls(len(indptr) - 1)
        for v in range(store.n):
            lo, hi = int(indptr[v]), int(indptr[v + 1])
            store._hubs[v] = hubs[lo:hi].tolist()
            store._dists[v] = dists[lo:hi].tolist()
        return store

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Set equality of label entries, distance-aware."""
        if not isinstance(other, LabelStore):
            return NotImplemented
        if self.n != other.n:
            return False
        for v in range(self.n):
            a = dict(zip(self._hubs[v], self._dists[v]))
            b = dict(zip(other._hubs[v], other._dists[v]))
            if a != b:
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelStore(n={self.n}, entries={self.total_entries}, "
            f"avg={self.avg_label_size:.1f})"
        )
