"""The user-facing distance index: build once, query in microseconds.

:class:`PLLIndex` bundles a finalized :class:`~repro.core.labels.LabelStore`
with the vertex ordering it was built under, and exposes distance
queries, meeting-hub queries, persistence and statistics.  Builders
(serial, threaded, simulated, cluster) all end by wrapping their store
in a ``PLLIndex``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.labels import LabelStore
from repro.core.query import query_distance, query_result
from repro.core.serial import build_serial
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.order import ordering_rank, validate_ordering
from repro.types import IndexStats, QueryResult

__all__ = ["PLLIndex"]


class PLLIndex:
    """A finalized 2-hop-cover distance index.

    Construct via :meth:`build` (serial PLL) or wrap a store produced by
    one of the parallel builders with the constructor directly.

    Args:
        store: finalized label store (hubs keyed by rank).
        order: the vertex ordering used during the build.
        graph: the indexed graph, kept for validation helpers; optional
            (a loaded index can answer queries without the graph).
        stats: build statistics, when available.
    """

    def __init__(
        self,
        store: LabelStore,
        order: Sequence[int],
        graph: Optional[CSRGraph] = None,
        stats: Optional[IndexStats] = None,
    ) -> None:
        self.store = store
        self.order = np.asarray(order, dtype=np.int64)
        if graph is not None:
            validate_ordering(graph, self.order)
        self.rank = ordering_rank(self.order)
        self.graph = graph
        self.stats = stats
        store.finalize()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        order: Optional[Sequence[int]] = None,
        pq_factory: Optional[Callable[[], object]] = None,
        collect_per_root: bool = False,
    ) -> "PLLIndex":
        """Build serially with weighted PLL (Algorithm 1 over all roots).

        See :func:`repro.core.serial.build_serial` for parameters.
        """
        from repro.graph.order import by_degree

        if order is None:
            order = by_degree(graph)
        store, stats = build_serial(
            graph,
            order=order,
            pq_factory=pq_factory,
            collect_per_root=collect_per_root,
        )
        return cls(store, order, graph=graph, stats=stats)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self.store.n

    def distance(self, s: int, t: int) -> float:
        """Shortest-path distance between *s* and *t* (``inf`` if none)."""
        self._check_vertex(s)
        self._check_vertex(t)
        return query_distance(self.store, s, t)

    def query(self, s: int, t: int) -> QueryResult:
        """Distance plus the meeting hub (as a vertex id) and scan cost."""
        self._check_vertex(s)
        self._check_vertex(t)
        res = query_result(self.store, s, t)
        if res.hub is None:
            return res
        return QueryResult(
            distance=res.distance,
            hub=int(self.order[res.hub]),
            entries_scanned=res.entries_scanned,
        )

    def explain(self, s: int, t: int):
        """EXPLAIN the query: every candidate hub, classified, plus cost.

        Runs on a separate diagnostic code path (the hot
        :func:`~repro.core.query.query_distance` loop is untouched);
        the explanation's ``distance`` equals :meth:`distance` exactly.

        Returns:
            A :class:`~repro.obs.explain.QueryExplanation` with hub
            ranks mapped back to vertex ids via this index's ordering.
        """
        self._check_vertex(s)
        self._check_vertex(t)
        from repro.obs.explain import explain_query

        return explain_query(self.store, s, t, order=self.order)

    def distances_from(self, s: int, targets: Sequence[int]) -> list[float]:
        """Batch distances from *s* to each vertex in *targets*."""
        self._check_vertex(s)
        return [self.distance(s, int(t)) for t in targets]

    def shortest_path(self, s: int, t: int) -> Optional[list[int]]:
        """One shortest path ``[s, ..., t]`` (``None`` if unreachable).

        Recovered by greedy next-hop walking over the attached graph;
        requires the index to have been built or loaded with its graph.

        Raises:
            GraphError: if no graph is attached.
        """
        if self.graph is None:
            raise GraphError(
                "shortest_path needs the graph; build with it or pass "
                "graph= to PLLIndex.load"
            )
        from repro.core.paths import reconstruct_shortest_path

        return reconstruct_shortest_path(self, self.graph, s, t)

    def avg_label_size(self) -> float:
        """The paper's "LN" metric for this index."""
        return self.store.avg_label_size

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.store.n:
            raise GraphError(f"vertex {v} out of range [0, {self.store.n})")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Serialise the index (labels + ordering) to an ``.npz`` file."""
        arrays = self.store.to_arrays()
        np.savez_compressed(
            path,
            order=self.order,
            label_indptr=arrays["indptr"],
            label_hubs=arrays["hubs"],
            label_dists=arrays["dists"],
        )

    @classmethod
    def load(
        cls, path: str | os.PathLike, graph: Optional[CSRGraph] = None
    ) -> "PLLIndex":
        """Load an index saved with :meth:`save`.

        Args:
            path: the ``.npz`` file.
            graph: optionally re-attach the graph for validation helpers.
        """
        with np.load(path) as data:
            order = data["order"]
            store = LabelStore.from_arrays(
                data["label_indptr"], data["label_hubs"], data["label_dists"]
            )
        return cls(store, order, graph=graph)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify_against_dijkstra(
        self, sources: Sequence[int], atol: float = 1e-9
    ) -> None:
        """Assert every distance from the given sources matches Dijkstra.

        Raises:
            GraphError: if the index has no attached graph.
            AssertionError: on the first mismatching pair.
        """
        if self.graph is None:
            raise GraphError("index has no attached graph to verify against")
        from repro.baselines.dijkstra import dijkstra_sssp
        from repro.core.paths import isclose_distance

        for s in sources:
            truth = dijkstra_sssp(self.graph, int(s))
            for t in range(self.graph.num_vertices):
                got = self.distance(int(s), t)
                want = truth[t]
                assert isclose_distance(got, want, atol=atol), (
                    f"distance({s}, {t}) = {got}, Dijkstra says {want}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PLLIndex(n={self.store.n}, entries={self.store.total_entries}, "
            f"LN={self.store.avg_label_size:.1f})"
        )
