"""The user-facing distance index: build once, query in microseconds.

:class:`PLLIndex` bundles a finalized :class:`~repro.core.labels.LabelStore`
with the vertex ordering it was built under, and exposes distance
queries, meeting-hub queries, persistence and statistics.  Builders
(serial, threaded, simulated, cluster) all end by wrapping their store
in a ``PLLIndex``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.labels import LabelStore
from repro.core.query import (
    query_distance,
    query_distance_batch,
    query_result,
)
from repro.core.serial import build_serial
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.order import ordering_rank, validate_ordering
from repro.types import IndexStats, QueryResult

__all__ = ["PLLIndex"]


class PLLIndex:
    """A finalized 2-hop-cover distance index.

    Construct via :meth:`build` (serial PLL) or wrap a store produced by
    one of the parallel builders with the constructor directly.

    Args:
        store: finalized label store (hubs keyed by rank).
        order: the vertex ordering used during the build.
        graph: the indexed graph, kept for validation helpers; optional
            (a loaded index can answer queries without the graph).
        stats: build statistics, when available.
    """

    def __init__(
        self,
        store: LabelStore,
        order: Sequence[int],
        graph: Optional[CSRGraph] = None,
        stats: Optional[IndexStats] = None,
    ) -> None:
        self.store = store
        self.order = np.asarray(order, dtype=np.int64)
        if graph is not None:
            validate_ordering(graph, self.order)
        self.rank = ordering_rank(self.order)
        self.graph = graph
        self.stats = stats
        store.finalize()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CSRGraph,
        order: Optional[Sequence[int]] = None,
        pq_factory: Optional[Callable[[], object]] = None,
        collect_per_root: bool = False,
    ) -> "PLLIndex":
        """Build serially with weighted PLL (Algorithm 1 over all roots).

        See :func:`repro.core.serial.build_serial` for parameters.
        """
        from repro.graph.order import by_degree

        if order is None:
            order = by_degree(graph)
        store, stats = build_serial(
            graph,
            order=order,
            pq_factory=pq_factory,
            collect_per_root=collect_per_root,
        )
        return cls(store, order, graph=graph, stats=stats)

    @classmethod
    def build_parallel(
        cls,
        graph: CSRGraph,
        num_workers: int,
        backend: str = "threads",
        **kwargs,
    ) -> "PLLIndex":
        """Build with one of the parallel backends.

        Args:
            graph: the graph to index.
            num_workers: worker count ``p``.
            backend: ``"threads"`` (GIL-bound, correctness story) or
                ``"procs"`` (shared-memory processes, real-core
                speedup).
            **kwargs: forwarded to the backend builder (``policy``,
                ``order``, ``chunk``, ``engine``, ...).

        Raises:
            GraphError: for unknown backend names.
        """
        if backend == "threads":
            from repro.parallel.threads import build_parallel_threads

            return build_parallel_threads(graph, num_workers, **kwargs)
        if backend == "procs":
            from repro.parallel.procs import build_parallel_procs

            return build_parallel_procs(graph, num_workers, **kwargs)
        raise GraphError(
            f"unknown parallel backend {backend!r} "
            "(expected 'threads' or 'procs')"
        )

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self.store.n

    def distance(self, s: int, t: int) -> float:
        """Shortest-path distance between *s* and *t* (``inf`` if none)."""
        self._check_vertex(s)
        self._check_vertex(t)
        return query_distance(self.store, s, t)

    def query(self, s: int, t: int) -> QueryResult:
        """Distance plus the meeting hub (as a vertex id) and scan cost."""
        self._check_vertex(s)
        self._check_vertex(t)
        res = query_result(self.store, s, t)
        if res.hub is None:
            return res
        return QueryResult(
            distance=res.distance,
            hub=int(self.order[res.hub]),
            entries_scanned=res.entries_scanned,
        )

    def explain(self, s: int, t: int):
        """EXPLAIN the query: every candidate hub, classified, plus cost.

        Runs on a separate diagnostic code path (the hot
        :func:`~repro.core.query.query_distance` loop is untouched);
        the explanation's ``distance`` equals :meth:`distance` exactly.

        Returns:
            A :class:`~repro.obs.explain.QueryExplanation` with hub
            ranks mapped back to vertex ids via this index's ordering.
        """
        self._check_vertex(s)
        self._check_vertex(t)
        from repro.obs.explain import explain_query

        return explain_query(self.store, s, t, order=self.order)

    def distance_batch(self, pairs) -> np.ndarray:
        """Distances for an ``(m, 2)`` array of ``(s, t)`` pairs.

        One vectorised merge join over the flat label arrays
        (:func:`~repro.core.query.query_distance_batch`); bit-identical
        to calling :meth:`distance` per pair, much faster for large
        batches.

        Returns:
            float64 array of length *m*; ``inf`` for unreachable pairs.
        """
        return query_distance_batch(self.store, pairs)

    def distances_from(self, s: int, targets: Sequence[int]) -> list[float]:
        """Batch distances from *s* to each vertex in *targets*."""
        self._check_vertex(s)
        targets = np.asarray(targets, dtype=np.int64).reshape(-1)
        pairs = np.empty((len(targets), 2), dtype=np.int64)
        pairs[:, 0] = s
        pairs[:, 1] = targets
        return [float(d) for d in self.distance_batch(pairs)]

    def shortest_path(self, s: int, t: int) -> Optional[list[int]]:
        """One shortest path ``[s, ..., t]`` (``None`` if unreachable).

        Recovered by greedy next-hop walking over the attached graph;
        requires the index to have been built or loaded with its graph.

        Raises:
            GraphError: if no graph is attached.
        """
        if self.graph is None:
            raise GraphError(
                "shortest_path needs the graph; build with it or pass "
                "graph= to PLLIndex.load"
            )
        from repro.core.paths import reconstruct_shortest_path

        return reconstruct_shortest_path(self, self.graph, s, t)

    def avg_label_size(self) -> float:
        """The paper's "LN" metric for this index."""
        return self.store.avg_label_size

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.store.n:
            raise GraphError(f"vertex {v} out of range [0, {self.store.n})")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike, format: str = "npz") -> None:
        """Serialise the index (labels + ordering).

        Args:
            path: target ``.npz`` file (``format="npz"``) or directory
                (``format="dir"``).
            format: ``"npz"`` writes one compressed archive;
                ``"dir"`` writes a directory bundle of raw ``.npy``
                members, which :meth:`load` can memory-map.
        """
        arrays = self.store.to_arrays()
        members = {
            "order": self.order,
            "label_indptr": arrays["indptr"],
            "label_hubs": arrays["hubs"],
            "label_dists": arrays["dists"],
        }
        if format == "npz":
            np.savez_compressed(path, **members)
        elif format == "dir":
            path = os.fspath(path)
            os.makedirs(path, exist_ok=True)
            for name, arr in members.items():
                np.save(os.path.join(path, name + ".npy"), arr)
        else:
            raise GraphError(
                f"unknown index format {format!r} (expected 'npz' or 'dir')"
            )

    @classmethod
    def load(
        cls,
        path: str | os.PathLike,
        graph: Optional[CSRGraph] = None,
        mmap: bool = False,
    ) -> "PLLIndex":
        """Load an index saved with :meth:`save`.

        The label arrays are adopted directly — no Python-list
        round-trip and no re-finalization — after structural validation
        (monotone indptr, sorted in-range hub runs, ``order`` a
        permutation).

        Args:
            path: the ``.npz`` file or directory bundle.
            graph: optionally re-attach the graph for validation helpers.
            mmap: memory-map the label arrays instead of reading them
                into RAM.  Only directory bundles (``save(...,
                format="dir")``) support this; ``.npz`` archives are
                decompressed on read, so numpy cannot map them.

        Raises:
            GraphError: for unreadable or structurally corrupt files.
        """
        path = os.fspath(path)
        members = ("order", "label_indptr", "label_hubs", "label_dists")
        try:
            if os.path.isdir(path):
                mode = "r" if mmap else None
                arrays = {
                    name: np.load(
                        os.path.join(path, name + ".npy"), mmap_mode=mode
                    )
                    for name in members
                }
            else:
                if mmap:
                    raise GraphError(
                        ".npz archives cannot be memory-mapped; save "
                        "with format='dir' to load with mmap=True"
                    )
                with np.load(path) as data:
                    arrays = {name: data[name] for name in members}
        except GraphError:
            raise
        except Exception as exc:
            raise GraphError(
                f"cannot load index from {path!r}: {exc}"
            ) from exc
        store = LabelStore.from_arrays(
            arrays["label_indptr"],
            arrays["label_hubs"],
            arrays["label_dists"],
        )
        order = np.asarray(arrays["order"], dtype=np.int64).reshape(-1)
        n = store.n
        if len(order) != n or not np.array_equal(
            np.sort(order), np.arange(n, dtype=np.int64)
        ):
            raise GraphError(
                f"index order must be a permutation of 0..{n - 1}, "
                f"got {len(order)} entries"
            )
        return cls(store, order, graph=graph)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def verify_against_dijkstra(
        self, sources: Sequence[int], atol: float = 1e-9
    ) -> None:
        """Assert every distance from the given sources matches Dijkstra.

        Raises:
            GraphError: if the index has no attached graph.
            AssertionError: on the first mismatching pair.
        """
        if self.graph is None:
            raise GraphError("index has no attached graph to verify against")
        from repro.baselines.dijkstra import dijkstra_sssp
        from repro.core.paths import isclose_distance

        for s in sources:
            truth = dijkstra_sssp(self.graph, int(s))
            for t in range(self.graph.num_vertices):
                got = self.distance(int(s), t)
                want = truth[t]
                assert isclose_distance(got, want, atol=atol), (
                    f"distance({s}, {t}) = {got}, Dijkstra says {want}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PLLIndex(n={self.store.n}, entries={self.store.total_entries}, "
            f"LN={self.store.avg_label_size:.1f})"
        )
