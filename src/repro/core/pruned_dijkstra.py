"""Algorithm 1: weighted pruned Dijkstra from one root.

One :class:`PrunedDijkstra` instance is bound to a graph and a vertex
ordering and owns reusable dense scratch arrays, so running ``n`` root
searches costs O(n) setup once instead of per root.  Each
:meth:`PrunedDijkstra.run` call performs the pruned search from one root
against a caller-supplied :class:`~repro.core.labels.LabelStore` and
returns the *delta* — the label entries this root would contribute —
without mutating the store.  Commit policy (immediately, on task
completion, or at a cluster sync point) is entirely the caller's,
which is what lets the serial builder, the thread pool, the
discrete-event simulator and the cluster substrate share this one
implementation.

The pruning test (line 6 of Algorithm 1) is
``QUERY(root, u) <= D[u]``: if the 2-hop cover over *already committed*
labels already explains the tentative distance, the search does not
label ``u`` and does not expand it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.labels import LabelStore
from repro.core.query import clear_tmp, load_tmp
from repro.errors import OrderingError
from repro.obs.instruments import record_search
from repro.graph.csr import CSRGraph
from repro.graph.order import ordering_rank, validate_ordering
from repro.types import INF, SearchStats

__all__ = ["PrunedDijkstra"]

#: A delta: label entries ``(vertex, distance)`` contributed by one root.
Delta = List[Tuple[int, float]]


class PrunedDijkstra:
    """Reusable pruned-Dijkstra engine for one graph and ordering.

    Args:
        graph: the graph to index.
        order: vertex ordering, most important first; hub "ranks" used in
            labels are positions in this ordering.
        pq_factory: optional priority-queue constructor implementing
            :class:`~repro.pq.base.PriorityQueue`.  ``None`` (default)
            selects an inlined lazy-``heapq`` fast path that profiling
            shows is markedly faster than going through the protocol.

    Thread safety: instances hold mutable scratch state, so each worker
    thread must own its *own* ``PrunedDijkstra`` (they may share the
    graph and the label store; see :mod:`repro.parallel.threads`).
    """

    def __init__(
        self,
        graph: CSRGraph,
        order: Sequence[int],
        pq_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.graph = graph
        self.order = validate_ordering(graph, order)
        self.rank = ordering_rank(self.order)
        self._rank_list: List[int] = self.rank.tolist()
        self._adj = graph.adjacency_lists()
        self._pq_factory = pq_factory
        n = graph.num_vertices
        # Dense scratch arrays, reset sparsely after each run.
        self._dist: List[float] = [INF] * n
        self._tmp: List[float] = [INF] * n

    # ------------------------------------------------------------------
    def run(
        self, root: int, store: LabelStore, stats: Optional[SearchStats] = None
    ) -> Delta:
        """Pruned search from *root*; returns the label delta.

        Args:
            root: the root vertex (must belong to the bound graph).
            store: labels visible for pruning.  **Not mutated**: the
                caller commits the returned delta (as entries with hub
                ``rank[root]``) when its execution model says so.
            stats: optional counter object filled in place.

        Returns:
            List of ``(vertex, distance)`` pairs: for each kept vertex
            ``u``, the exact distance ``d(root, u)``.  The root itself is
            always first with distance 0.
        """
        self.graph._check_vertex(root)
        if self._pq_factory is None:
            return self._run_heapq(root, store, stats)
        return self._run_generic(root, store, stats)

    # ------------------------------------------------------------------
    def _run_heapq(
        self, root: int, store: LabelStore, stats: Optional[SearchStats]
    ) -> Delta:
        """Hot path: inlined lazy-deletion heapq."""
        # Hoist everything the inner loop touches into locals.
        adj = self._adj
        dist = self._dist
        tmp = self._tmp
        rank = self._rank_list
        root_rank = rank[root]
        hubs_of = store.hubs_of
        dists_of = store.dists_of
        heappush = heapq.heappush
        heappop = heapq.heappop

        touched_tmp = load_tmp(tmp, store, root, (root_rank, 0.0))
        touched_dist: List[int] = [root]
        dist[root] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, root)]
        delta: Delta = []

        n_settled = n_pruned = n_relax = n_push = n_pop = n_scan = 0

        while heap:
            d, u = heappop(heap)
            n_pop += 1
            if d > dist[u]:
                continue  # stale lazy-deletion entry
            n_settled += 1
            # Pruning test: QUERY(root, u) over committed labels.
            hu = hubs_of(u)
            du = dists_of(u)
            q = INF
            # zip beats an index loop by ~35% here (measured; see the
            # profiling notes in DESIGN.md section 4b).
            for h_, d_ in zip(hu, du):
                total = tmp[h_] + d_
                if total < q:
                    q = total
            n_scan += len(hu)
            if q <= d:
                n_pruned += 1
                continue
            delta.append((u, d))
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched_dist.append(v)
                    dist[v] = nd
                    heappush(heap, (nd, v))
                    n_push += 1
                n_relax += 1

        # Sparse reset of the scratch arrays.
        for v in touched_dist:
            dist[v] = INF
        clear_tmp(tmp, touched_tmp)

        record_search(n_settled, n_pruned, len(delta), n_pop, n_scan)
        if stats is not None:
            stats.root = root
            stats.settled = n_settled
            stats.pruned = n_pruned
            stats.labels_added = len(delta)
            stats.relaxations = n_relax
            stats.heap_pushes = n_push
            stats.heap_pops = n_pop
            stats.query_entries_scanned = n_scan
        return delta

    # ------------------------------------------------------------------
    def _run_generic(
        self, root: int, store: LabelStore, stats: Optional[SearchStats]
    ) -> Delta:
        """Protocol path: any :class:`~repro.pq.base.PriorityQueue`."""
        assert self._pq_factory is not None
        adj = self._adj
        dist = self._dist
        tmp = self._tmp
        root_rank = self._rank_list[root]
        hubs_of = store.hubs_of
        dists_of = store.dists_of

        touched_tmp = load_tmp(tmp, store, root, (root_rank, 0.0))
        touched_dist: List[int] = [root]
        dist[root] = 0.0
        pq = self._pq_factory()
        pq.push(root, 0.0)
        delta: Delta = []

        n_settled = n_pruned = n_relax = n_push = n_pop = n_scan = 0
        n_push += 1

        while pq:
            d, u = pq.pop_min()
            n_pop += 1
            if d > dist[u]:
                continue
            n_settled += 1
            hu = hubs_of(u)
            du = dists_of(u)
            q = INF
            # zip beats an index loop by ~35% here (measured; see the
            # profiling notes in DESIGN.md section 4b).
            for h_, d_ in zip(hu, du):
                total = tmp[h_] + d_
                if total < q:
                    q = total
            n_scan += len(hu)
            if q <= d:
                n_pruned += 1
                continue
            delta.append((u, d))
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched_dist.append(v)
                    dist[v] = nd
                    pq.push(v, nd)
                    n_push += 1
                n_relax += 1

        for v in touched_dist:
            dist[v] = INF
        clear_tmp(tmp, touched_tmp)

        record_search(n_settled, n_pruned, len(delta), n_pop, n_scan)
        if stats is not None:
            stats.root = root
            stats.settled = n_settled
            stats.pruned = n_pruned
            stats.labels_added = len(delta)
            stats.relaxations = n_relax
            stats.heap_pushes = n_push
            stats.heap_pops = n_pop
            stats.query_entries_scanned = n_scan
        return delta

    # ------------------------------------------------------------------
    def commit(self, root: int, delta: Delta, store: LabelStore) -> None:
        """Append *delta* (from :meth:`run` on *root*) into *store*."""
        root_rank = int(self.rank[root])
        add = store.add
        for v, d in delta:
            add(v, root_rank, d)

    def rank_of(self, v: int) -> int:
        """Rank (indexing position) of vertex *v* under the bound ordering."""
        if not 0 <= v < len(self.rank):
            raise OrderingError(f"vertex {v} out of range")
        return int(self.rank[v])
