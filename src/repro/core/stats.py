"""Label statistics: size summaries and the Figure-6 CDF.

Figure 6 of the paper plots, against the sequence number *x* of pruned
Dijkstra invocations, the cumulative fraction of all label entries
created by the first *x* roots — showing that ~90 % of all entries come
from the first ~100 roots, and that ParaPLL's curve tracks serial PLL's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.types import SearchStats

__all__ = [
    "hub_contribution",
    "hub_coverage_cdf",
    "label_cdf",
    "label_size_summary",
    "per_root_label_counts",
    "roots_to_reach",
]


def label_cdf(per_root: Sequence[SearchStats]) -> np.ndarray:
    """Cumulative fraction of label entries per root, in indexing order.

    Args:
        per_root: per-root search statistics as recorded by a builder
            (e.g. ``build_serial(..., collect_per_root=True)``), ordered
            by invocation sequence.

    Returns:
        ``float64`` array ``cdf`` of length ``len(per_root)`` where
        ``cdf[x]`` is the fraction of all label entries created by roots
        ``0..x``.  Empty input yields an empty array.
    """
    counts = np.array([s.labels_added for s in per_root], dtype=np.float64)
    if len(counts) == 0:
        return counts
    total = counts.sum()
    if total == 0:
        return np.zeros_like(counts)
    return np.cumsum(counts) / total


def roots_to_reach(cdf: np.ndarray, fraction: float) -> int:
    """Smallest number of roots whose entries reach *fraction* of the total.

    This is the paper's "~90 % after 100 invocations" statistic.

    Args:
        cdf: output of :func:`label_cdf`.
        fraction: target cumulative fraction in (0, 1].

    Returns:
        The 1-based count of roots, or ``len(cdf)`` if never reached
        (only possible with ``fraction > 1`` or empty input rounding).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    if len(cdf) == 0:
        return 0
    idx = int(np.searchsorted(cdf, fraction - 1e-12))
    return min(idx + 1, len(cdf))


def label_size_summary(sizes: Sequence[int]) -> Dict[str, float]:
    """Summary statistics of per-vertex label sizes.

    Returns:
        dict with ``mean`` (the paper's LN), ``max``, ``min``, ``median``
        and ``p99``.
    """
    arr = np.asarray(sizes, dtype=np.float64)
    if len(arr) == 0:
        return {"mean": 0.0, "max": 0.0, "min": 0.0, "median": 0.0, "p99": 0.0}
    return {
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "p99": float(np.percentile(arr, 99)),
    }


def per_root_label_counts(per_root: Sequence[SearchStats]) -> List[int]:
    """Labels contributed by each root, in indexing order."""
    return [s.labels_added for s in per_root]


def hub_contribution(store) -> np.ndarray:
    """Label entries contributed by each hub, indexed by hub *rank*.

    This is the finished-index counterpart of per-root build stats:
    entry ``[r]`` counts the label entries whose hub is the rank-``r``
    vertex, computed straight off the flat CSR ``hubs`` array.  Unlike
    :func:`label_cdf` it needs no per-root collection, so it works on
    any index — including one loaded from disk.

    Args:
        store: a :class:`~repro.core.labels.LabelStore` (finalized or
            finalizable).

    Returns:
        ``int64`` array of length ``n`` in rank order.
    """
    _indptr, hubs, _dists = store.finalized_arrays()
    return np.bincount(hubs, minlength=store.n).astype(np.int64)


def hub_coverage_cdf(store) -> np.ndarray:
    """Cumulative fraction of label entries by hub rank (Figure 6).

    ``cdf[r]`` is the fraction of all entries whose hub ranks among the
    first ``r + 1`` vertices of the ordering.  On a serial build this is
    identical to :func:`label_cdf` over the per-root stats (roots are
    indexed in rank order and every entry a root adds carries that root
    as its hub); on parallel builds it measures the converged index
    rather than the build schedule.  Feed the result to
    :func:`roots_to_reach` for the "~90 % from ~100 hubs" statistic.

    Returns:
        ``float64`` array of length ``n``; all zeros for an empty index.
    """
    contrib = hub_contribution(store).astype(np.float64)
    total = contrib.sum()
    if total == 0:
        return np.zeros_like(contrib)
    return np.cumsum(contrib) / total
