"""Top-k nearest-neighbour queries over a 2-hop-cover index.

The social-search motivation of the paper's introduction ("find related
users") needs *k-nearest* queries, not single distances.  A linear scan
costs n index queries; the standard hub-labeling trick does much
better: build the **inverted labels** — for every hub, the list of
``(vertex, distance)`` entries sorted by distance — and answer a kNN
query from ``s`` by merging the inverted lists of the hubs in ``L(s)``
with a priority queue, popping candidates in non-decreasing
``d(s, hub) + d(hub, vertex)`` order.

The popped bound for a vertex equals its true distance as soon as the
minimising hub is processed; because every vertex shares a hub with
``s`` on a shortest path (the 2-hop-cover property), popping vertices
until *k* distinct ones have settled yields the exact k nearest.  The
search touches only the label entries near the frontier instead of all
n vertices.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from repro.core.labels import LabelStore
from repro.errors import GraphError

__all__ = ["KNNIndex"]


class KNNIndex:
    """Inverted-label structure for k-nearest-neighbour queries.

    Args:
        store: a finalized label store (e.g. ``index.store``).

    The construction cost is one pass over all label entries plus a
    per-hub sort; memory mirrors the label store.
    """

    def __init__(self, store: LabelStore) -> None:
        store.finalize()
        self.store = store
        # hub rank -> (distances sorted ascending, vertices parallel).
        self._inv_dists: Dict[int, np.ndarray] = {}
        self._inv_verts: Dict[int, np.ndarray] = {}
        buckets: Dict[int, List[Tuple[float, int]]] = {}
        for v in range(store.n):
            hubs = store.finalized_hubs(v)
            dists = store.finalized_dists(v)
            for i in range(len(hubs)):
                buckets.setdefault(int(hubs[i]), []).append(
                    (float(dists[i]), v)
                )
        for h, entries in buckets.items():
            entries.sort()
            self._inv_dists[h] = np.array(
                [d for d, _v in entries], dtype=np.float64
            )
            self._inv_verts[h] = np.array(
                [v for _d, v in entries], dtype=np.int64
            )

    @property
    def num_vertices(self) -> int:
        """Number of indexed vertices."""
        return self.store.n

    def hub_list_size(self, hub_rank: int) -> int:
        """Entries in one hub's inverted list (0 if the hub is unused)."""
        arr = self._inv_dists.get(hub_rank)
        return 0 if arr is None else len(arr)

    # ------------------------------------------------------------------
    def k_nearest(
        self, s: int, k: int, include_self: bool = False
    ) -> List[Tuple[int, float]]:
        """The *k* vertices closest to *s*, with exact distances.

        Args:
            s: the query vertex.
            k: how many neighbours to return (fewer if the component is
                smaller).
            include_self: whether ``(s, 0.0)`` counts as a result.

        Returns:
            ``[(vertex, distance), ...]`` sorted by distance (ties by
            pop order).

        Raises:
            GraphError: for an out-of-range query vertex or ``k < 0``.
        """
        if not 0 <= s < self.store.n:
            raise GraphError(f"vertex {s} out of range [0, {self.store.n})")
        if k < 0:
            raise GraphError("k must be non-negative")
        if k == 0:
            return []

        hubs_s = self.store.finalized_hubs(s)
        dists_s = self.store.finalized_dists(s)
        # Frontier: (bound, hub index in L(s), position in inverted list).
        frontier: List[Tuple[float, int, int]] = []
        for i in range(len(hubs_s)):
            inv = self._inv_dists.get(int(hubs_s[i]))
            if inv is not None and len(inv):
                heapq.heappush(
                    frontier, (float(dists_s[i]) + float(inv[0]), i, 0)
                )

        best: Dict[int, float] = {}
        settled: List[Tuple[int, float]] = []
        seen_settled = set()
        while frontier and len(settled) < k + (0 if include_self else 1):
            bound, i, pos = heapq.heappop(frontier)
            hub = int(hubs_s[i])
            inv_d = self._inv_dists[hub]
            inv_v = self._inv_verts[hub]
            v = int(inv_v[pos])
            # Advance this hub's cursor.
            if pos + 1 < len(inv_d):
                heapq.heappush(
                    frontier,
                    (float(dists_s[i]) + float(inv_d[pos + 1]), i, pos + 1),
                )
            # `bound` is the smallest unprocessed sum overall, so the
            # first time v pops, `bound` is its exact distance.
            if v in seen_settled:
                continue
            prev = best.get(v)
            if prev is None or bound < prev:
                best[v] = bound
            seen_settled.add(v)
            settled.append((v, best[v]))
        out = [
            (v, d) for v, d in settled if include_self or v != s
        ]
        return out[:k]

    def within_radius(self, s: int, radius: float) -> List[Tuple[int, float]]:
        """All vertices within *radius* of *s* (excluding *s*), sorted.

        Same frontier merge as :meth:`k_nearest`, stopping when the
        smallest unprocessed bound exceeds the radius.
        """
        if not 0 <= s < self.store.n:
            raise GraphError(f"vertex {s} out of range [0, {self.store.n})")
        hubs_s = self.store.finalized_hubs(s)
        dists_s = self.store.finalized_dists(s)
        frontier: List[Tuple[float, int, int]] = []
        for i in range(len(hubs_s)):
            inv = self._inv_dists.get(int(hubs_s[i]))
            if inv is not None and len(inv):
                heapq.heappush(
                    frontier, (float(dists_s[i]) + float(inv[0]), i, 0)
                )
        out: List[Tuple[int, float]] = []
        seen = set()
        while frontier:
            bound, i, pos = heapq.heappop(frontier)
            if bound > radius:
                break
            hub = int(hubs_s[i])
            inv_d = self._inv_dists[hub]
            inv_v = self._inv_verts[hub]
            v = int(inv_v[pos])
            if pos + 1 < len(inv_d):
                heapq.heappush(
                    frontier,
                    (float(dists_s[i]) + float(inv_d[pos + 1]), i, pos + 1),
                )
            if v in seen:
                continue
            seen.add(v)
            if v != s:
                out.append((v, bound))
        return out
