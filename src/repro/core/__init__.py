"""The paper's core contribution: pruned landmark labeling, serial and parallel.

Layering:

* :mod:`repro.core.labels` — the label store (2-hop-cover index data).
* :mod:`repro.core.query` — QUERY(s, t, L) implementations.
* :mod:`repro.core.pruned_dijkstra` — Algorithm 1 (weighted pruned search).
* :mod:`repro.core.serial` — the serial weighted PLL indexer.
* :mod:`repro.core.index` — :class:`~repro.core.index.PLLIndex`, the
  user-facing facade (build / query / save / load / stats).
* :mod:`repro.core.stats` — label-size statistics and the Figure-6 CDF.
"""

from repro.core.dynamic import DynamicPLL
from repro.core.engines import ENGINES, make_engine
from repro.core.index import PLLIndex
from repro.core.knn import KNNIndex
from repro.core.labels import LabelStore
from repro.core.paths import reconstruct_shortest_path
from repro.core.pruned_bfs import PrunedBFS, build_serial_bfs
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.core.query import query_distance, query_via_tmp
from repro.core.serial import build_serial
from repro.core.stats import label_cdf, label_size_summary

__all__ = [
    "PLLIndex",
    "DynamicPLL",
    "KNNIndex",
    "LabelStore",
    "PrunedDijkstra",
    "PrunedBFS",
    "ENGINES",
    "make_engine",
    "query_distance",
    "query_via_tmp",
    "build_serial",
    "build_serial_bfs",
    "reconstruct_shortest_path",
    "label_cdf",
    "label_size_summary",
]
