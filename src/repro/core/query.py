"""QUERY(s, t, L): 2-hop-cover distance evaluation.

Given labels ``L(s)`` and ``L(t)``, the distance is::

    min over common hubs u of  d(u, s) + d(u, t)

Three implementations with identical results:

* :func:`query_distance` — two-pointer merge join over finalized
  (sorted) labels; the production query path.
* :func:`query_via_tmp` — dense scratch-array join over *mutable*
  labels; this is what the pruning test inside Algorithm 1 uses, and it
  works mid-build when labels are unsorted.
* :func:`query_numpy` — vectorised ``np.intersect1d`` join, for the
  query-implementation ablation.

:func:`query_distance_batch` answers many pairs at once with a single
sort-merge over the flat CSR label arrays — the batch serving path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.labels import LabelStore
from repro.errors import GraphError
from repro.types import INF, QueryResult

__all__ = [
    "query_distance",
    "query_distance_batch",
    "query_via_tmp",
    "query_numpy",
    "query_result",
    "query_candidates",
]

# Below this many pairs the numpy setup cost exceeds the scalar loop.
_BATCH_FALLBACK_PAIRS = 32


def query_distance(store: LabelStore, s: int, t: int) -> float:
    """Distance between *s* and *t* by sorted merge join.

    Requires :meth:`LabelStore.finalize` to have been called.  ``s == t``
    returns 0 (the trivial path), matching Dijkstra.
    """
    if s == t:
        return 0.0
    hs = store.finalized_hubs(s)
    ds = store.finalized_dists(s)
    ht = store.finalized_hubs(t)
    dt = store.finalized_dists(t)
    i = j = 0
    ls, lt = len(hs), len(ht)
    best = INF
    while i < ls and j < lt:
        a, b = hs[i], ht[j]
        if a == b:
            total = ds[i] + dt[j]
            if total < best:
                best = total
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return float(best)


def _label_runs(
    indptr: np.ndarray, verts: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat-array positions of the label runs of *verts*, concatenated.

    Returns ``(positions, sizes)`` where ``positions`` indexes the flat
    hub/dist arrays and ``sizes[k]`` is the label size of ``verts[k]``.
    """
    starts = np.asarray(indptr[verts], dtype=np.int64)
    sizes = np.asarray(indptr[verts + 1], dtype=np.int64) - starts
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), sizes
    excl = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(sizes[:-1], out=excl[1:])
    positions = np.repeat(starts - excl, sizes) + np.arange(
        total, dtype=np.int64
    )
    return positions, sizes


def query_distance_batch(store: LabelStore, pairs) -> np.ndarray:
    """Distances for many ``(s, t)`` pairs in one vectorised merge join.

    Bit-identical to calling :func:`query_distance` per pair: both paths
    form the same float64 sums ``d(u, s) + d(u, t)`` and take an exact
    minimum.  The join tags every label entry with a composite key
    ``pair_id * n + hub`` — globally sorted and unique because hubs
    strictly increase within each finalized label — intersects the two
    sides with one ``np.searchsorted`` membership probe (both key
    arrays are already sorted, so no re-sort is needed), and min-reduces
    per pair with ``np.minimum.reduceat``.  Below
    :data:`_BATCH_FALLBACK_PAIRS` pairs the numpy setup cost dominates,
    so small batches run the scalar loop.

    Args:
        store: a finalized (or finalizable) label store.
        pairs: ``(m, 2)`` array-like of vertex ids.

    Returns:
        float64 array of length *m*; unreachable pairs get ``inf``.

    Raises:
        GraphError: for malformed *pairs* or out-of-range vertex ids.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise GraphError("pairs must be an (m, 2) array of vertex ids")
    m = len(pairs)
    if m == 0:
        return np.empty(0, dtype=np.float64)
    n = store.n
    if int(pairs.min()) < 0 or int(pairs.max()) >= n:
        bad = pairs[((pairs < 0) | (pairs >= n)).any(axis=1)][0]
        raise GraphError(
            f"pair ({int(bad[0])}, {int(bad[1])}) out of range [0, {n})"
        )
    if m < _BATCH_FALLBACK_PAIRS or m * max(n, 1) > 2**62:
        return np.array(
            [query_distance(store, int(s), int(t)) for s, t in pairs],
            dtype=np.float64,
        )
    indptr, hubs, dists = store.finalized_arrays()
    pos_s, sizes_s = _label_runs(indptr, pairs[:, 0])
    pos_t, sizes_t = _label_runs(indptr, pairs[:, 1])
    keys_s = np.repeat(np.arange(m, dtype=np.int64), sizes_s) * n + hubs[pos_s]
    keys_t = np.repeat(np.arange(m, dtype=np.int64), sizes_t) * n + hubs[pos_t]
    out = np.full(m, INF, dtype=np.float64)
    if len(keys_s) and len(keys_t):
        # Probe the (sorted, unique) s-side keys into the t-side.
        loc = np.searchsorted(keys_t, keys_s)
        loc_safe = np.minimum(loc, len(keys_t) - 1)
        hit = keys_t[loc_safe] == keys_s
        if hit.any():
            sums = dists[pos_s[hit]] + dists[pos_t[loc_safe[hit]]]
            pair_of = keys_s[hit] // n
            heads = np.flatnonzero(np.diff(pair_of, prepend=-1))
            out[pair_of[heads]] = np.minimum.reduceat(sums, heads)
    out[pairs[:, 0] == pairs[:, 1]] = 0.0
    return out


def query_result(store: LabelStore, s: int, t: int) -> QueryResult:
    """Like :func:`query_distance` but reporting the meeting hub and cost.

    The returned hub is a *rank* (position in the indexing order); map it
    back to a vertex id with the index's ordering if needed.
    ``entries_scanned`` counts label entries *consumed* across both
    sides (``i + j``), the same accounting :func:`query_candidates`
    reports to EXPLAIN.
    """
    if s == t:
        return QueryResult(distance=0.0, hub=None, entries_scanned=0)
    hs = store.finalized_hubs(s)
    ds = store.finalized_dists(s)
    ht = store.finalized_hubs(t)
    dt = store.finalized_dists(t)
    i = j = 0
    ls, lt = len(hs), len(ht)
    best = INF
    best_hub: Optional[int] = None
    while i < ls and j < lt:
        a, b = hs[i], ht[j]
        if a == b:
            total = ds[i] + dt[j]
            if total < best:
                best = total
                best_hub = int(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return QueryResult(distance=float(best), hub=best_hub, entries_scanned=i + j)


def query_candidates(
    store: LabelStore, s: int, t: int
) -> Tuple[List[Tuple[int, float, float]], int, int]:
    """Every common hub of ``L(s)``/``L(t)`` with both-side distances.

    The diagnostic sibling of :func:`query_distance`: a separate merge
    join that *keeps* every meeting hub instead of reducing to the
    minimum, so EXPLAIN (:mod:`repro.obs.explain`) can attribute the
    answer.  Deliberately a distinct code path — the production query
    loop above carries no instrumentation and no branches for this.

    Returns:
        ``(candidates, scanned_s, scanned_t)``: candidates is a list of
        ``(hub_rank, d_hub_s, d_hub_t)`` in hub-rank order; the scan
        counts are how many label entries the join consumed on each
        side (the query-cost attribution).
    """
    if s == t:
        return [], 0, 0
    hs = store.finalized_hubs(s)
    ds = store.finalized_dists(s)
    ht = store.finalized_hubs(t)
    dt = store.finalized_dists(t)
    i = j = 0
    ls, lt = len(hs), len(ht)
    candidates: List[Tuple[int, float, float]] = []
    while i < ls and j < lt:
        a, b = hs[i], ht[j]
        if a == b:
            candidates.append((int(a), float(ds[i]), float(dt[j])))
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return candidates, i, j


def query_via_tmp(
    tmp: List[float],
    hubs_t: List[int],
    dists_t: List[float],
) -> float:
    """Join one side's label (preloaded into *tmp*) against the other's.

    ``tmp`` is a dense array indexed by hub rank holding ``d(hub, s)``
    for every hub in ``L(s)`` and ``inf`` elsewhere.  This form needs no
    sorting, so it works on live labels during indexing; it is the exact
    QUERY of the paper's Algorithm 1 line 6.

    Args:
        tmp: dense scratch array (length = number of vertices).
        hubs_t: hub ranks of the other endpoint's label.
        dists_t: distances parallel to *hubs_t*.

    Returns:
        The minimum hub sum, ``inf`` if the labels share no hub.
    """
    best = INF
    for i in range(len(hubs_t)):
        total = tmp[hubs_t[i]] + dists_t[i]
        if total < best:
            best = total
    return best


def query_numpy(store: LabelStore, s: int, t: int) -> float:
    """Vectorised join via ``np.intersect1d`` (ablation variant)."""
    if s == t:
        return 0.0
    hs = store.finalized_hubs(s)
    ht = store.finalized_hubs(t)
    common, is_, it_ = np.intersect1d(
        hs, ht, assume_unique=True, return_indices=True
    )
    if len(common) == 0:
        return INF
    ds = store.finalized_dists(s)[is_]
    dt = store.finalized_dists(t)[it_]
    return float(np.min(ds + dt))


def load_tmp(
    tmp: List[float], store: LabelStore, v: int, extra: Tuple[int, float] | None
) -> List[int]:
    """Fill *tmp* with ``L(v)`` (and one extra entry); return touched ranks.

    Used by the pruned search to prepare the root side of the query.  The
    caller must later pass the returned rank list to :func:`clear_tmp`.
    When the same hub occurs twice (delayed-sync duplicates) the smaller
    distance wins.
    """
    touched: List[int] = []
    hubs = store.hubs_of(v)
    dists = store.dists_of(v)
    for i in range(len(hubs)):
        h = hubs[i]
        d = dists[i]
        if d < tmp[h]:
            tmp[h] = d
        touched.append(h)
    if extra is not None:
        h, d = extra
        if d < tmp[h]:
            tmp[h] = d
        touched.append(h)
    return touched


def clear_tmp(tmp: List[float], touched: List[int]) -> None:
    """Reset the scratch array positions recorded by :func:`load_tmp`."""
    for h in touched:
        tmp[h] = INF
