"""Incremental index maintenance under edge insertions.

ParaPLL (like PLL) builds a static index; the natural follow-up —
published for the unweighted case by Akiba, Iwata & Yoshida ("Dynamic
and historical shortest-path distance queries on large evolving
networks", WWW 2014) — maintains it under edge insertions without
rebuilding: when edge ``{a, b}`` (weight w) appears,

* for every label entry ``(h, d)`` in ``L(a)``, resume a pruned
  Dijkstra from hub *h* seeded at ``b`` with distance ``d + w``;
* symmetrically for every entry in ``L(b)``, seeded at ``a``.

A resumed search explores only the region the new edge improved,
pruning against the existing labels exactly like Algorithm 1.  The
resulting label set remains a correct 2-hop cover (every query still
returns the exact post-insertion distance); it may contain entries that
are *loose* for their hub (a shorter route via another hub exists) —
harmless, because QUERY takes a minimum and the exact cover is present.

Deletions invalidate labels globally and are intentionally out of
scope; :meth:`DynamicPLL.rebuild` is the escape hatch.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.core.labels import LabelStore
from repro.core.query import clear_tmp, load_tmp
from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.order import ordering_rank
from repro.types import INF

__all__ = ["DynamicPLL"]


class DynamicPLL:
    """A PLL index that absorbs edge insertions incrementally.

    Args:
        index: a built :class:`~repro.core.index.PLLIndex` **with an
            attached graph**; the dynamic wrapper takes a mutable copy
            of its adjacency and extends its label store in place.

    Example:
        >>> from repro import PLLIndex, load_dataset
        >>> g = load_dataset("Gnutella", scale=0.25)
        >>> dyn = DynamicPLL(PLLIndex.build(g))
        >>> dyn.insert_edge(0, 5, 2.0)
        >>> dyn.distance(0, 5) <= 2.0
        True
    """

    def __init__(self, index) -> None:
        if index.graph is None:
            raise GraphError("DynamicPLL needs an index with attached graph")
        self.index = index
        self.store: LabelStore = index.store
        self.order = index.order
        self.rank = ordering_rank(self.order)
        self._rank_list: List[int] = self.rank.tolist()
        # Mutable adjacency copy; the original CSRGraph stays untouched.
        self._adj: List[List[Tuple[int, float]]] = [
            list(nbrs) for nbrs in index.graph.adjacency_lists()
        ]
        n = index.graph.num_vertices
        self._dist: List[float] = [INF] * n
        self._tmp: List[float] = [INF] * n
        self._inserted: List[Tuple[int, int, float]] = []

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (fixed; vertex insertion is not supported)."""
        return self.store.n

    def distance(self, s: int, t: int) -> float:
        """Exact current distance between *s* and *t*."""
        self.store.finalize()
        from repro.core.query import query_distance

        return query_distance(self.store, s, t)

    def current_graph(self) -> CSRGraph:
        """Materialise the updated graph (original + inserted edges)."""
        builder = GraphBuilder(num_vertices=self.num_vertices)
        for u in range(self.num_vertices):
            for v, w in self._adj[u]:
                if u < v:
                    builder.add_edge(u, v, w)
        return builder.build(name=f"{self.index.graph.name}+dyn")

    # ------------------------------------------------------------------
    def insert_edge(self, a: int, b: int, weight: float) -> int:
        """Insert undirected edge ``{a, b}`` and repair the index.

        Args:
            a: first endpoint.
            b: second endpoint.
            weight: positive finite edge weight.

        Returns:
            The number of label entries added during the repair.

        Raises:
            GraphError: on invalid endpoints/weight, self loops, or a
                duplicate of an existing edge.
        """
        n = self.num_vertices
        if not (0 <= a < n and 0 <= b < n):
            raise GraphError(f"edge ({a}, {b}) out of range for n={n}")
        if a == b:
            raise GraphError("self loops are not allowed")
        if not (weight > 0) or weight == INF or weight != weight:
            raise GraphError(f"edge weight must be positive finite: {weight}")
        if any(v == b for v, _w in self._adj[a]):
            raise GraphError(f"edge ({a}, {b}) already exists")

        self._adj[a].append((b, float(weight)))
        self._adj[b].append((a, float(weight)))
        self._inserted.append((a, b, float(weight)))

        added = 0
        # Snapshot the endpoint labels before repairs mutate them.
        seeds_a = list(zip(self.store.hubs_of(a), self.store.dists_of(a)))
        seeds_b = list(zip(self.store.hubs_of(b), self.store.dists_of(b)))
        for h_rank, d in seeds_a:
            added += self._resume(h_rank, b, d + weight)
        for h_rank, d in seeds_b:
            added += self._resume(h_rank, a, d + weight)
        return added

    @property
    def inserted_edges(self) -> List[Tuple[int, int, float]]:
        """Edges inserted since construction, in order."""
        return list(self._inserted)

    def rebuild(self) -> None:
        """Rebuild the index from scratch on the current graph.

        Restores canonical (minimal) labels after many insertions have
        accumulated loose entries.
        """
        from repro.core.index import PLLIndex
        from repro.graph.order import by_degree

        graph = self.current_graph()
        fresh = PLLIndex.build(graph, order=by_degree(graph))
        self.index = fresh
        self.store = fresh.store
        self.order = fresh.order
        self.rank = ordering_rank(self.order)
        self._rank_list = self.rank.tolist()
        self._adj = [list(nbrs) for nbrs in graph.adjacency_lists()]

    # ------------------------------------------------------------------
    def _resume(self, h_rank: int, seed: int, seed_dist: float) -> int:
        """Resume a pruned Dijkstra from hub rank *h_rank* at *seed*.

        Explores only vertices the new edge improved for this hub,
        committing new label entries immediately (they are used for
        pruning later repairs).  Returns entries added.
        """
        hub_vertex = int(self.order[h_rank])
        adj = self._adj
        dist = self._dist
        tmp = self._tmp
        store = self.store
        hubs_of = store.hubs_of
        dists_of = store.dists_of
        heappush = heapq.heappush
        heappop = heapq.heappop

        touched_tmp = load_tmp(tmp, store, hub_vertex, (h_rank, 0.0))
        touched_dist: List[int] = [seed]
        dist[seed] = seed_dist
        heap: List[Tuple[float, int]] = [(seed_dist, seed)]
        added = 0

        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            hu = hubs_of(u)
            du = dists_of(u)
            q = INF
            # zip beats an index loop by ~35% here (measured; see the
            # profiling notes in DESIGN.md section 4b).
            for h_, d_ in zip(hu, du):
                total = tmp[h_] + d_
                if total < q:
                    q = total
            if q <= d:
                continue
            store.add(u, h_rank, d)
            added += 1
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched_dist.append(v)
                    dist[v] = nd
                    heappush(heap, (nd, v))

        for v in touched_dist:
            dist[v] = INF
        clear_tmp(tmp, touched_tmp)
        return added
