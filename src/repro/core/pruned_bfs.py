"""Pruned BFS: the original (unweighted) PLL of Akiba, Iwata & Yoshida.

The paper's contribution is generalising PLL to weighted graphs via
pruned Dijkstra (Algorithm 1); the unweighted original replaces the
priority queue with a FIFO frontier, dropping the log-factor.  We
implement it both as a correctness cross-check (on unit weights the two
must produce *identical* label sets, because BFS settles vertices in
the same distance order Dijkstra does) and as the faster choice for
users with unweighted graphs.

The class mirrors :class:`~repro.core.pruned_dijkstra.PrunedDijkstra`'s
``run``/``commit`` interface, so all builders can swap engines.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro.core.labels import LabelStore
from repro.core.query import clear_tmp, load_tmp
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree, ordering_rank, validate_ordering
from repro.obs.instruments import record_search
from repro.types import INF, IndexStats, SearchStats

__all__ = ["PrunedBFS", "build_serial_bfs"]

Delta = List[Tuple[int, float]]


class PrunedBFS:
    """Reusable pruned-BFS engine for one graph and ordering.

    Edge weights are ignored: distances are hop counts (floats, to stay
    type-compatible with the weighted machinery).

    Args:
        graph: the graph to index.
        order: vertex ordering, most important first.
    """

    def __init__(self, graph: CSRGraph, order: Sequence[int]) -> None:
        self.graph = graph
        self.order = validate_ordering(graph, order)
        self.rank = ordering_rank(self.order)
        self._rank_list: List[int] = self.rank.tolist()
        self._adj = graph.adjacency_lists()
        n = graph.num_vertices
        self._dist: List[float] = [INF] * n
        self._tmp: List[float] = [INF] * n

    def run(
        self, root: int, store: LabelStore, stats: Optional[SearchStats] = None
    ) -> Delta:
        """Pruned BFS from *root*; returns the label delta (hop counts)."""
        self.graph._check_vertex(root)
        adj = self._adj
        dist = self._dist
        tmp = self._tmp
        root_rank = self._rank_list[root]
        hubs_of = store.hubs_of
        dists_of = store.dists_of

        touched_tmp = load_tmp(tmp, store, root, (root_rank, 0.0))
        touched_dist: List[int] = [root]
        dist[root] = 0.0
        frontier = deque([root])
        delta: Delta = []

        n_settled = n_pruned = n_relax = n_scan = 0

        while frontier:
            u = frontier.popleft()
            d = dist[u]
            n_settled += 1
            hu = hubs_of(u)
            du = dists_of(u)
            q = INF
            # zip beats an index loop by ~35% here (measured; see the
            # profiling notes in DESIGN.md section 4b).
            for h_, d_ in zip(hu, du):
                total = tmp[h_] + d_
                if total < q:
                    q = total
            n_scan += len(hu)
            if q <= d:
                n_pruned += 1
                continue
            delta.append((u, d))
            nd = d + 1.0
            for v, _w in adj[u]:
                if dist[v] == INF:
                    dist[v] = nd
                    touched_dist.append(v)
                    frontier.append(v)
                n_relax += 1

        for v in touched_dist:
            dist[v] = INF
        clear_tmp(tmp, touched_tmp)

        record_search(n_settled, n_pruned, len(delta), n_settled, n_scan)
        if stats is not None:
            stats.root = root
            stats.settled = n_settled
            stats.pruned = n_pruned
            stats.labels_added = len(delta)
            stats.relaxations = n_relax
            stats.heap_pushes = len(touched_dist)
            stats.heap_pops = n_settled
            stats.query_entries_scanned = n_scan
        return delta

    def commit(self, root: int, delta: Delta, store: LabelStore) -> None:
        """Append *delta* (from :meth:`run` on *root*) into *store*."""
        root_rank = int(self.rank[root])
        add = store.add
        for v, d in delta:
            add(v, root_rank, d)

    def rank_of(self, v: int) -> int:
        """Rank of vertex *v* under the bound ordering."""
        if not 0 <= v < len(self.rank):
            raise GraphError(f"vertex {v} out of range")
        return int(self.rank[v])


def build_serial_bfs(
    graph: CSRGraph,
    order: Optional[Sequence[int]] = None,
    collect_per_root: bool = False,
) -> Tuple[LabelStore, IndexStats]:
    """Serial unweighted PLL: pruned BFS from every root in order.

    Returns:
        ``(store, stats)`` with the finalized hop-count label store.
    """
    import time

    from repro.obs import buildmon as _buildmon

    if order is None:
        order = by_degree(graph)
    engine = PrunedBFS(graph, order)
    store = LabelStore(graph.num_vertices)
    per_root: List[SearchStats] = []
    monitor = _buildmon.active()
    t0 = time.perf_counter()
    for root in engine.order:
        if collect_per_root or monitor is not None:
            s = SearchStats()
            delta = engine.run(int(root), store, s)
            if collect_per_root:
                per_root.append(s)
            if monitor is not None:
                monitor.root_done(0, int(root), stats=s)
        else:
            delta = engine.run(int(root), store)
        engine.commit(int(root), delta, store)
    elapsed = time.perf_counter() - t0
    store.finalize()
    stats = IndexStats.from_sizes(store.label_sizes(), elapsed)
    stats.per_root = per_root
    return store, stats
