"""Shortest-path *reconstruction* on top of a distance index.

A 2-hop-cover index stores distances, not paths.  The standard way to
recover the actual vertex sequence is greedy next-hop walking: from the
current vertex ``u``, the next hop toward ``t`` is any neighbour ``v``
with ``w(u, v) + d(v, t) == d(u, t)``.  Each step costs one index query
per neighbour — still orders of magnitude cheaper than re-running
Dijkstra, and it needs no extra index state.

Floating-point note: both sides of the next-hop equation are sums of
the same edge weights, but possibly added in different orders, so the
comparison uses a tiny absolute tolerance.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.types import INF

__all__ = ["isclose_distance", "reconstruct_shortest_path"]

#: Absolute tolerance for float-sum comparisons along a path.
_ATOL = 1e-9


def isclose_distance(a: float, b: float, atol: float = _ATOL) -> bool:
    """The sanctioned equality test for shortest-path distances.

    Two distances that describe the same path may differ by rounding
    when the edge weights were summed in different orders, so raw
    ``==`` on distances is a bug magnet (and is rejected project-wide
    by lint rule PC003).  This helper compares with a tiny *absolute*
    tolerance and treats two ``INF`` sentinels (both unreachable) as
    equal; a relative tolerance is deliberately not used because path
    lengths near zero would then collapse.
    """
    if a == INF or b == INF:  # lint-ok: PC003 — the sanctioned module
        return a == b  # lint-ok: PC003
    return math.isclose(a, b, rel_tol=0.0, abs_tol=atol)


def reconstruct_shortest_path(
    index, graph: CSRGraph, s: int, t: int
) -> Optional[List[int]]:
    """The vertex sequence of one shortest path from *s* to *t*.

    Args:
        index: any object with a ``distance(u, v) -> float`` method
            answering exact shortest-path distances on *graph*
            (typically a :class:`~repro.core.index.PLLIndex`).
        graph: the indexed graph.
        s: source vertex.
        t: target vertex.

    Returns:
        The path ``[s, ..., t]``, or ``None`` when *t* is unreachable.

    Raises:
        GraphError: if the index and graph disagree (no neighbour
            continues the path) — a sign the index belongs to a
            different graph.
    """
    graph._check_vertex(s)
    graph._check_vertex(t)
    total = index.distance(s, t)
    if total == INF:
        return None
    path = [s]
    cur = s
    remaining = total
    adj = graph.adjacency_lists()
    # Each hop strictly decreases the remaining distance (positive
    # weights), so the walk terminates in at most n - 1 steps.
    for _ in range(graph.num_vertices):
        if cur == t:
            return path
        best_v = -1
        best_rem = INF
        for v, w in adj[cur]:
            rem = index.distance(v, t)
            if math.isclose(w + rem, remaining, rel_tol=0.0, abs_tol=_ATOL):
                if rem < best_rem:
                    best_rem = rem
                    best_v = v
        if best_v < 0:
            raise GraphError(
                f"no next hop from {cur} toward {t}: "
                "index does not match this graph"
            )
        cur = best_v
        remaining = best_rem
        path.append(cur)
    if cur == t:
        return path
    raise GraphError(
        f"path from {s} to {t} exceeded {graph.num_vertices} hops: "
        "index does not match this graph"
    )
