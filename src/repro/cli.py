"""The ``parapll`` command-line tool.

Subcommands::

    parapll generate --dataset Gnutella --out g.npz        # make a graph
    parapll index    --graph g.npz --out g.index.npz       # build labels
    parapll index    --graph g.npz --threads 8 --policy dynamic
    parapll query    --graph g.npz --index g.index.npz 3 42
    parapll explain  --index g.index.npz 3 42              # why that answer?
    parapll stats    --index g.index.npz                   # label stats
    parapll audit    run --index g.index.npz --out a.json  # health audit
    parapll audit    diff a.json b.json                    # compare audits
    parapll serve    --index g.index.npz --port 7777       # TCP oracle
    parapll serve    --index g.index.npz --qlog q.jsonl    # + capture
    parapll workload report --qlog q.jsonl                 # traffic shape
    parapll replay   --port 7777 --requests 5000           # SLO verdict
    parapll top      --port 7777                           # live status
    parapll dash     --demo 2                              # fleet dashboard
    parapll flightrec dump --out flight.jsonl              # post-mortem ring
    parapll obs      --graph g.npz --threads 4             # observed build
    parapll bench    --experiment table4                   # = repro.bench
    parapll perf     run --tag dev                         # benchmark suite
    parapll perf     compare benchmarks/baseline.json BENCH_dev.json
    parapll timeline --dataset Gnutella --sim --out t.json # Perfetto trace
    parapll check    lint [PATHS...]                       # project linter
    parapll check    races --threads 4                     # lockset sanitizer
    parapll check    index --index g.index.npz --graph g.npz

Graphs are accepted as ``.npz`` (our binary cache), ``.gr`` (DIMACS) or
anything else (treated as a SNAP edge list).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.index import PLLIndex
from repro.core.stats import label_size_summary
from repro.errors import ReproError
from repro.generators.paper import dataset_names, load_dataset
from repro.graph.csr import CSRGraph
from repro.io.dimacs import read_dimacs
from repro.io.edgelist import read_edgelist
from repro.io.npz import load_graph_npz, save_graph_npz
from repro.parallel.threads import build_parallel_threads

__all__ = ["main"]


def _load_graph(path: str) -> CSRGraph:
    """Load a graph by file extension (.npz / .gr / edge list)."""
    if path.endswith(".npz"):
        return load_graph_npz(path)
    if path.endswith(".gr"):
        return read_dimacs(path)
    graph, _ids = read_edgelist(path)
    return graph


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    save_graph_npz(graph, args.out)
    print(
        f"wrote {args.out}: {graph.name} n={graph.num_vertices} "
        f"m={graph.num_edges}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    import contextlib

    from repro.obs import buildmon as _buildmon

    graph = _load_graph(args.graph)
    monitor: Optional[_buildmon.BuildMonitor] = None
    scope = contextlib.nullcontext()
    if args.progress or args.progress_jsonl:
        sink = None
        if args.progress:
            # One top-style frame per emitted snapshot, to stderr so
            # the final summary on stdout stays script-friendly.
            sink = lambda snap: print(  # noqa: E731
                monitor.render(snap) + "\n", file=sys.stderr
            )
        monitor = _buildmon.BuildMonitor(
            total_roots=graph.num_vertices, sink=sink
        )
        scope = _buildmon.monitored(monitor)
    backend = args.backend
    if backend == "auto":
        backend = "threads" if args.threads > 1 else "serial"
    with scope:
        if backend == "procs":
            from repro.parallel.procs import build_parallel_procs

            index = build_parallel_procs(
                graph,
                max(args.threads, 1),
                policy=args.policy,
                engine=args.engine,
            )
        elif backend == "threads":
            index = build_parallel_threads(
                graph, max(args.threads, 1), policy=args.policy,
                engine=args.engine,
            )
        elif args.engine == "bfs":
            from repro.core.pruned_bfs import build_serial_bfs
            from repro.graph.order import by_degree

            order = by_degree(graph)
            store, stats = build_serial_bfs(graph, order=order)
            index = PLLIndex(store, order, graph=graph, stats=stats)
        else:
            index = PLLIndex.build(graph)
    if monitor is not None and args.progress_jsonl:
        count = monitor.write_jsonl(args.progress_jsonl)
        print(
            f"wrote {count} build-progress events to {args.progress_jsonl}"
        )
    if args.out:
        out = args.out
    elif args.format == "dir":
        out = args.graph.rsplit(".", 1)[0] + ".index"
    else:
        out = args.graph.rsplit(".", 1)[0] + ".index.npz"
    index.save(out, format=args.format)
    stats = index.stats
    secs = f"{stats.build_seconds:.2f}s" if stats else "?"
    print(
        f"indexed {graph.name}: n={graph.num_vertices} in {secs}, "
        f"LN={index.avg_label_size():.1f}, saved to {out}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph) if args.graph else None
    index = PLLIndex.load(args.index, graph=graph, mmap=args.mmap)
    if args.pairs:
        pairs = _read_pairs(args.pairs)
        for (s, t), d in zip(pairs, index.distance_batch(pairs)):
            print(f"{s} {t} {float(d)}")
        return 0
    if args.source is None or args.target is None:
        raise ReproError("query needs SOURCE and TARGET (or --pairs FILE)")
    result = index.query(args.source, args.target)
    if result.reachable:
        via = f" via hub {result.hub}" if result.hub is not None else ""
        print(f"distance({args.source}, {args.target}) = {result.distance}{via}")
    else:
        print(f"distance({args.source}, {args.target}) = unreachable")
    return 0


def _read_pairs(path: str) -> list:
    """Parse a pairs file: one ``s t`` pair of vertex ids per line."""
    pairs = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 2:
                raise ReproError(
                    f"{path}:{lineno}: expected 's t', got {line!r}"
                )
            pairs.append((int(fields[0]), int(fields[1])))
    return pairs


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as _json

    graph = _load_graph(args.graph) if args.graph else None
    index = PLLIndex.load(args.index, graph=graph, mmap=args.mmap)
    explanation = index.explain(args.source, args.target)
    if args.json:
        print(_json.dumps(explanation.to_dict(), indent=2))
    else:
        print(explanation.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading
    import time as _time

    from repro import obs
    from repro.obs import flightrec as _flightrec
    from repro.obs import qlog as _qlog
    from repro.service.oracle import DistanceOracle
    from repro.service.server import DistanceServer

    graph = _load_graph(args.graph) if args.graph else None
    if args.index:
        index = PLLIndex.load(args.index, graph=graph, mmap=args.mmap)
    elif graph is not None:
        index = PLLIndex.build(graph)
    else:
        raise ReproError("serve needs --index and/or --graph")
    # SIGUSR1 dumps the flight recorder of a live server.
    _flightrec.install_signal_handler()
    recorder = None
    if args.qlog:
        if args.qlog_sample is not None:
            obs.configure(qlog_sample=args.qlog_sample)
        recorder = _qlog.QueryLogRecorder(sink=args.qlog)
        _qlog.install(recorder)
    # SIGTERM/SIGINT request a clean shutdown: stop accepting, flush
    # the qlog sink, and emit a final metrics/SLO snapshot instead of
    # dropping buffered records on the floor.
    stop = threading.Event()

    def _request_stop(signum: int, _frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    oracle = DistanceOracle(index)
    with DistanceServer(
        oracle,
        host=args.host,
        port=args.port,
        slow_query_seconds=args.slow_query_seconds,
        shed_burn_rate=args.shed_burn_rate,
    ) as server:
        print(
            f"serving {index.num_vertices} vertices on "
            f"{args.host}:{server.port}",
            flush=True,
        )
        deadline = (
            _time.monotonic() + args.duration
            if args.duration is not None
            else None
        )
        while not stop.is_set():
            if deadline is not None and _time.monotonic() >= deadline:
                break
            stop.wait(0.2)
        _print_final_snapshot(server, oracle)
    if recorder is not None:
        _qlog.uninstall()
        recorder.close()
        print(
            f"qlog: {recorder.sampled} sampled records captured to "
            f"{args.qlog}"
        )
    return 0


def _print_final_snapshot(server, oracle) -> None:
    """The shutdown summary of ``parapll serve``."""
    stats = oracle.stats
    status = server.slo_tracker.status()
    print(
        f"served {stats.queries} point queries "
        f"({stats.cache_hits} cache hits, "
        f"{stats.batch_queries} batches), "
        f"{server.shed_count} requests shed"
    )
    windows = status["windowed_latency_quantiles"]
    for window in sorted(windows):
        q = windows[window]
        print(
            f"  window {window}: "
            + " ".join(
                f"{name}={q[name] * 1e3:.3f}ms" for name in sorted(q)
            )
        )
    for target in status["targets"]:
        state = "BREACH" if target["breached"] else "ok"
        print(
            f"  slo {target['name']}: burn_rate={target['burn_rate']:.2f} "
            f"budget_remaining={target['budget_remaining']:.1%} [{state}]"
        )


def _cmd_workload_report(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import qlog as _qlog
    from repro.obs import workload as _workload

    records = _qlog.read_qlog(args.qlog)
    try:
        report = _workload.characterize(
            records,
            top=args.top,
            cache_sizes=(
                [int(x) for x in args.cache_sizes.split(",")]
                if args.cache_sizes
                else None
            ),
        )
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote workload report to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        print(_workload.render_workload(report))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import qlog as _qlog
    from repro.service import replay as _replay

    config = _replay.ReplayConfig(
        mode=args.mode,
        source=args.source,
        requests=args.requests,
        clients=args.clients,
        rate=args.rate,
        seed=args.seed,
        zipf_alpha=args.zipf_alpha,
    )
    qlog_records = _qlog.read_qlog(args.qlog) if args.qlog else None
    if args.port is not None:
        report = _replay.run_replay(
            config,
            host=args.host,
            port=args.port,
            qlog_records=qlog_records,
        )
    else:
        from repro.service.oracle import DistanceOracle

        graph = _load_graph(args.graph) if args.graph else None
        if args.index:
            index = PLLIndex.load(args.index, graph=graph, mmap=args.mmap)
        elif graph is not None:
            index = PLLIndex.build(graph)
        else:
            raise ReproError(
                "replay needs a target: --port for a live server, or "
                "--index/--graph for an in-process oracle"
            )
        oracle = DistanceOracle(index, cache_size=args.cache_size)
        report = _replay.run_replay(
            config, oracle=oracle, qlog_records=qlog_records
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote replay report to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        print(_replay.render_replay(report))
    if args.fail_on_breach and not report["verdict"]["pass"]:
        return 1
    return 0


def _cmd_flightrec_dump(args: argparse.Namespace) -> int:
    from repro.obs import flightrec as _flightrec

    if args.port is not None:
        from repro.service.server import DistanceClient

        with DistanceClient(args.host, args.port) as client:
            doc = client.debug(last=args.last)
        count = _flightrec.dump_events(
            doc["flightrec"], args.out, reason="remote-debug"
        )
        print(f"dumped {count} remote flight-recorder events to {args.out}")
        return 0
    if args.graph:
        # Run an instrumented build so the ring has something to show —
        # monitored, so the dump carries build_progress snapshots too.
        from repro.obs import buildmon as _buildmon

        graph = _load_graph(args.graph)
        monitor = _buildmon.BuildMonitor(total_roots=graph.num_vertices)
        with _buildmon.monitored(monitor):
            build_parallel_threads(graph, args.threads, policy=args.policy)
    count = _flightrec.get_recorder().dump(args.out, reason="manual")
    print(f"dumped {count} flight-recorder events to {args.out}")
    return 0


def _render_status(status: dict) -> str:
    """One refresh frame of ``parapll top``."""
    idx = status.get("index", {})
    lines = [
        "parapll top",
        "===========",
        f"uptime     {status.get('uptime_seconds', 0.0):10.1f} s",
        f"index      {idx.get('vertices', '?')} vertices, "
        f"{idx.get('entries', '?')} label entries "
        f"(LN {idx.get('avg_label_size', 0.0):.1f})",
        f"in-flight  {status.get('in_flight', '?')}"
        f"    queries {status.get('queries', '?')}"
        f"    slow {status.get('slow_requests', '?')}"
        f"    malformed {status.get('malformed_lines', '?')}",
    ]
    quantiles = status.get("latency_quantiles") or {}
    if quantiles:
        lines.append("latency    op              p50         p95         p99")
        for op in sorted(quantiles):
            q = quantiles[op]
            lines.append(
                f"           {op:<12}"
                + "".join(
                    f"{q.get(p, 0.0) * 1000.0:9.3f}ms"
                    for p in ("p50", "p95", "p99")
                )
            )
    tail = status.get("flightrec") or []
    if tail:
        lines.append("flight recorder (newest last):")
        for event in tail:
            lines.append(
                f"  #{event.get('seq', '?'):<6} {event.get('kind', '?'):<16} "
                f"{event.get('attrs', {})}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.service.server import DistanceClient

    shown = 0
    with DistanceClient(args.host, args.port) as client:
        while True:
            status = client.status()
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(_render_status(status), flush=True)
            shown += 1
            if args.iterations is not None and shown >= args.iterations:
                break
            _time.sleep(args.interval)
    return 0


def _dash_demo_child(
    host: str, port: int, rank: int, dataset: str, scale: float, seed: int
) -> None:
    """One fleet-demo worker: a relayed, monitored threaded build."""
    from repro import obs
    from repro.obs import buildmon as _buildmon
    from repro.obs.relay import RelayClient

    obs.configure(tracing=True)
    graph = load_dataset(dataset, scale=scale, seed=seed + rank)
    client = RelayClient(host, port, rank=rank, flush_interval=0.1)
    try:
        monitor = _buildmon.BuildMonitor(
            total_roots=graph.num_vertices, interval_seconds=0.1
        )
        with _buildmon.monitored(monitor):
            build_parallel_threads(graph, 2, policy="dynamic")
    finally:
        client.close()


def _cmd_dash(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.relay import Collector, render_fleet

    # A private registry: the dash shows the *fleet's* merged metrics,
    # not whatever this process recorded on its own.
    collector = Collector(
        args.host, args.port, registry=MetricsRegistry()
    ).start()
    print(
        f"telemetry collector listening on "
        f"{collector.host}:{collector.port}",
        flush=True,
    )
    procs = []
    if args.demo:
        import multiprocessing as _mp

        for rank in range(args.demo):
            proc = _mp.Process(
                target=_dash_demo_child,
                args=(
                    collector.host,
                    collector.port,
                    rank,
                    args.dataset,
                    args.scale,
                    args.seed,
                ),
            )
            proc.start()
            procs.append(proc)
    iterations = 1 if args.once else args.iterations
    shown = 0
    try:
        while True:
            if not (args.no_clear or args.once):
                print("\x1b[2J\x1b[H", end="")
            print(render_fleet(collector), flush=True)
            shown += 1
            if iterations is not None and shown >= iterations:
                break
            if procs and not any(p.is_alive() for p in procs):
                # The demo fleet finished: show the final state and stop.
                _time.sleep(args.interval)
                print(render_fleet(collector), flush=True)
                break
            _time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        for proc in procs:
            proc.join(timeout=60.0)
        if args.trace_out:
            count = collector.write_chrome_trace(args.trace_out)
            print(
                f"wrote {count} stitched fleet trace events to "
                f"{args.trace_out}"
            )
        collector.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    index = PLLIndex.load(args.index, mmap=args.mmap)
    sizes = index.store.label_sizes()
    summary = label_size_summary(sizes)
    print(f"vertices:      {index.num_vertices}")
    print(f"total entries: {index.store.total_entries}")
    for key, value in summary.items():
        print(f"label size {key}: {value:.1f}")
    return 0


def _audit_from_path(
    path: str,
    graph: Optional[CSRGraph] = None,
    mmap: bool = False,
    check_dominated: bool = True,
) -> dict:
    """An audit report for *path*: a saved report (.json) or an index.

    A JSON file carrying the ``parapll-audit/1`` schema is loaded and
    validated; anything else is treated as a saved index, which is
    loaded and audited on the spot.
    """
    from repro.obs import audit as _audit

    if path.endswith(".json"):
        return _audit.load_report(path)
    index = PLLIndex.load(path, graph=graph, mmap=mmap)
    return _audit.audit_index(
        index, check_dominated=check_dominated, source=path
    )


def _cmd_audit_run(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import audit as _audit

    graph = _load_graph(args.graph) if args.graph else None
    if args.index:
        index = PLLIndex.load(args.index, graph=graph, mmap=args.mmap)
        source = args.index
    elif graph is not None:
        if args.threads > 1:
            index = build_parallel_threads(
                graph, args.threads, policy=args.policy
            )
        else:
            index = PLLIndex.build(graph)
        source = args.graph
    else:
        raise ReproError("audit run needs --index and/or --graph")
    report = _audit.audit_index(
        index, check_dominated=not args.no_dominated, source=source
    )
    _audit.validate_report(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote audit report to {args.out}")
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        print(_audit.render_report(report))
    dominated = report["dominated"]
    if args.fail_on_dominated and dominated["checked"] and dominated["count"]:
        return 1
    return 0


def _cmd_audit_diff(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import audit as _audit

    graph = _load_graph(args.graph) if args.graph else None
    report_a = _audit_from_path(args.a, graph=graph, mmap=args.mmap)
    report_b = _audit_from_path(args.b, graph=graph, mmap=args.mmap)
    diff = _audit.diff_reports(report_a, report_b)
    if args.json:
        print(_json.dumps(diff, indent=2))
    else:
        print(_audit.render_diff(diff))
    return 1 if (args.fail_on_regression and diff["regressions"]) else 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Build with full observability on, then report and export."""
    from repro import obs
    from repro.core.stats import label_cdf, roots_to_reach
    from repro.obs import buildmon as _buildmon

    if args.graph:
        graph = _load_graph(args.graph)
    else:
        graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)

    obs.reset()
    tracing = args.trace or args.jsonl is not None
    previous = obs.current_config()
    obs.configure(metrics=True, tracing=tracing)
    monitor = _buildmon.BuildMonitor(total_roots=graph.num_vertices)
    try:
        with _buildmon.monitored(monitor):
            if args.threads > 1 or args.engine != "dijkstra":
                index = build_parallel_threads(
                    graph, args.threads, policy=args.policy,
                    engine=args.engine,
                )
            else:
                index = PLLIndex.build(graph)
    finally:
        obs.configure(
            metrics=previous.metrics, tracing=previous.tracing
        )

    print(
        f"built {graph.name}: n={graph.num_vertices} "
        f"m={graph.num_edges} LN={index.avg_label_size():.1f}"
    )
    # The Figure-6 skew, measured from the monitor's commit-order
    # per-root stats (works for threaded builds too).
    cdf = label_cdf(monitor.per_root)
    if len(cdf):
        print(
            f"labels: {monitor.labels_total} entries; 90% from the "
            f"first {roots_to_reach(cdf, 0.9)} of {monitor.roots_done} "
            "roots"
        )
    print()
    print(obs.render_summary())
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus_text())
        print(f"wrote Prometheus exposition to {args.prom}")
    if args.jsonl:
        count = obs.write_trace_jsonl(args.jsonl)
        print(f"wrote {count} trace records to {args.jsonl}")
    return 0


DEFAULT_BASELINE = "benchmarks/baseline.json"


def _cmd_perf_run(args: argparse.Namespace) -> int:
    from repro.obs.perf import render_bench, run_suite, write_bench

    doc = run_suite(
        repeats=args.repeats,
        scale=args.scale,
        seed=args.seed,
        dataset=args.dataset,
        tag=args.tag,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    out = args.out or f"BENCH_{args.tag}.json"
    write_bench(doc, out)
    print(render_bench(doc))
    print(f"wrote {out}")
    return 0


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.obs.perf import read_bench
    from repro.obs.regression import compare

    report = compare(
        read_bench(args.baseline),
        read_bench(args.current),
        tolerance_scale=args.tolerance_scale,
        ignore_kinds=tuple(args.ignore_kinds or ()),
    )
    print(report.render(verbose=args.verbose))
    return report.exit_code


def _cmd_perf_update_baseline(args: argparse.Namespace) -> int:
    import os

    from repro.obs.perf import run_suite, write_bench

    doc = run_suite(
        repeats=args.repeats,
        scale=args.scale,
        seed=args.seed,
        dataset=args.dataset,
        tag="baseline",
        progress=lambda msg: print(f"  {msg}", file=sys.stderr),
    )
    parent = os.path.dirname(args.baseline)
    if parent:
        os.makedirs(parent, exist_ok=True)
    write_bench(doc, args.baseline)
    print(f"wrote new baseline to {args.baseline}")
    return 0


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.obs.perf import read_bench, render_bench

    print(render_bench(read_bench(args.file)))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    """Capture (or convert) a trace; export Chrome JSON + critical path."""
    from repro import obs
    from repro.obs import timeline as _timeline

    if args.from_jsonl:
        records = obs.read_trace_jsonl(args.from_jsonl)
    else:
        if args.graph:
            graph = _load_graph(args.graph)
        else:
            graph = load_dataset(
                args.dataset, scale=args.scale, seed=args.seed
            )
        obs.reset()
        previous = obs.current_config()
        obs.configure(metrics=True, tracing=True)
        try:
            if args.sim:
                from repro.sim.executor import simulate_intra_node

                simulate_intra_node(
                    graph,
                    args.threads,
                    policy=args.policy,
                    jitter=0.15,
                    worker_jitter=0.25,
                    seed=args.seed,
                )
            elif args.threads > 1:
                build_parallel_threads(graph, args.threads, policy=args.policy)
            else:
                PLLIndex.build(graph)
        finally:
            obs.configure(
                metrics=previous.metrics, tracing=previous.tracing
            )
        records = list(obs.get_tracer().records())

    if args.out:
        count = _timeline.write_chrome_trace(args.out, records)
        print(
            f"wrote {count} Chrome trace events to {args.out} "
            "(open in Perfetto or chrome://tracing)"
        )
    try:
        report = _timeline.analyze_critical_path(records, top_k=args.top)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_timeline.render_critical_path(report))
    return 0


def _cmd_check_lint(args: argparse.Namespace) -> int:
    import os

    from repro.check.lint import (
        all_rules,
        format_github,
        format_json,
        format_text,
        lint_paths,
        load_suppressions,
    )
    from repro.errors import CheckError

    suppressions = None
    if not args.no_suppressions and os.path.exists(args.suppressions):
        suppressions = load_suppressions(args.suppressions)
    rules = None
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        rules = [r for r in all_rules() if r.id in wanted]
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise CheckError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    report = lint_paths(
        args.paths,
        suppressions=suppressions,
        rules=rules,
        cache_path=args.cache,
    )
    formatter = {
        "text": format_text, "json": format_json, "github": format_github
    }[args.format]
    print(formatter(report))
    for stale in report.unused_suppressions:
        print(
            f"warning: suppression {stale.rule} for {stale.path} "
            "matched nothing (delete it?)",
            file=sys.stderr,
        )
    return report.exit_code


def _emit_check_report(args: argparse.Namespace, doc: dict) -> int:
    """Common ``parapll-check/1`` output handling (--json / --out)."""
    import json as _json

    from repro.check import report as _report

    _report.validate_report(doc)
    if getattr(args, "out", None):
        _report.write_report(doc, args.out)
    if getattr(args, "json", False):
        print(_json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(_report.render_text(doc))
    return 0 if doc["ok"] else 1


def _corpus_findings(cases: list) -> "Tuple[list, dict]":
    """(findings, stats) for a corpus run: failures become findings."""
    findings = [case.to_finding() for case in cases if not case.ok]
    stats = {
        "corpus_cases": len(cases),
        "corpus_failed": sum(1 for case in cases if not case.ok),
    }
    return findings, stats


def _cmd_check_races(args: argparse.Namespace) -> int:
    from repro.check import report as _report
    from repro.check.sanitizer import LocksetSanitizer, stress_threads
    from repro.check.vectorclock import VectorClockSanitizer

    if args.corpus:
        from repro.check.corpus import run_race_corpus

        cases = run_race_corpus(args.corpus)
        findings, stats = _corpus_findings(cases)
        stats["detector"] = "vc"
        return _emit_check_report(
            args, _report.make_report("races", findings, stats)
        )

    sanitizer = (
        LocksetSanitizer()
        if args.detector == "lockset" else VectorClockSanitizer()
    )
    result = stress_threads(
        num_threads=args.threads,
        repeats=args.repeats,
        n=args.vertices,
        m=args.edges,
        seed=args.seed,
        sanitizer=sanitizer,
        cluster=args.cluster,
    )
    if args.json or args.out:
        if args.detector == "lockset":
            findings = [
                _report.finding(
                    kind="race", rule="LS-RACE",
                    message=f"no lock consistently protects {r.location}",
                    detail=r.render(),
                )
                for r in sanitizer.reports
            ]
        else:
            findings = [r.to_finding() for r in sanitizer.reports]
        doc = _report.make_report(
            "races", findings,
            {
                "detector": args.detector,
                "builds": result.builds,
                "accesses": sanitizer.accesses_tracked,
                "threads": args.threads,
            },
        )
        return _emit_check_report(args, doc)
    print(result.sanitizer.render())
    print(
        f"stressed {result.builds} sanitized build(s) on "
        f"{result.vertices} vertices with {args.threads} thread(s)"
    )
    return 0 if result.sanitizer.ok else 1


def _cmd_check_deadlocks(args: argparse.Namespace) -> int:
    from repro.check import report as _report
    from repro.check.deadlock import LockOrderRecorder, analyze

    if args.corpus:
        from repro.check.corpus import run_deadlock_corpus

        cases = run_deadlock_corpus(args.corpus)
        findings, stats = _corpus_findings(cases)
        return _emit_check_report(
            args, _report.make_report("deadlocks", findings, stats)
        )

    recorder = LockOrderRecorder()
    stats: dict = {"paths": list(args.paths)}
    if not args.no_stress:
        from repro.check.sanitizer import stress_threads
        from repro.check.vectorclock import VectorClockSanitizer

        sanitizer = VectorClockSanitizer(lock_order=recorder)
        result = stress_threads(
            num_threads=args.threads,
            repeats=args.repeats,
            sanitizer=sanitizer,
            cluster=True,
        )
        stats["builds"] = result.builds
        stats["acquisitions"] = recorder.acquisitions
        stats["edges"] = len(recorder.edges)
    findings = analyze(args.paths, recorder)
    return _emit_check_report(
        args, _report.make_report("deadlocks", findings, stats)
    )


def _cmd_check_dataflow(args: argparse.Namespace) -> int:
    import os

    from repro.check import report as _report
    from repro.check.dataflow import analyze_paths
    from repro.check.lint import load_suppressions

    if args.corpus:
        from repro.check.corpus import run_dataflow_corpus

        cases = run_dataflow_corpus(args.corpus)
        findings, stats = _corpus_findings(cases)
        return _emit_check_report(
            args, _report.make_report("dataflow", findings, stats)
        )

    suppressions = None
    if not args.no_suppressions and os.path.exists(args.suppressions):
        suppressions = load_suppressions(args.suppressions)
    result = analyze_paths(args.paths, suppressions=suppressions)
    findings = _report.from_violations(result.violations)
    doc = _report.make_report(
        "dataflow", findings,
        {
            "files": result.files_checked,
            "functions": result.functions,
            "suppressed": len(result.suppressed),
            **{f"role_{k}": v for k, v in result.roles.items()},
        },
    )
    return _emit_check_report(args, doc)


def _cmd_check_index(args: argparse.Namespace) -> int:
    from repro.check.invariants import verify_index
    from repro.errors import CheckError

    graph = _load_graph(args.graph) if args.graph else None
    if args.index:
        index = PLLIndex.load(args.index, graph=graph)
    elif graph is not None:
        if args.threads > 1:
            index = build_parallel_threads(
                graph, args.threads, policy=args.policy
            )
        else:
            index = PLLIndex.build(graph)
    else:
        raise CheckError("check index needs --index and/or --graph")
    report = verify_index(
        index,
        graph=graph,
        samples=args.samples,
        seed=args.seed,
        strict_minimality=args.strict,
    )
    print(report.render())
    return report.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    # Reached only via "parapll bench" with no extra arguments (the
    # passthrough in main() handles the argument-forwarding case).
    from repro.bench.runner import main as bench_main

    return bench_main([])


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="parapll",
        description="ParaPLL: parallel shortest-path distance queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a Table-2 stand-in graph")
    g.add_argument("--dataset", required=True, choices=dataset_names())
    g.add_argument("--scale", type=float, default=1.0)
    g.add_argument("--seed", type=int, default=42)
    g.add_argument("--out", required=True)
    g.set_defaults(func=_cmd_generate)

    i = sub.add_parser("index", help="build a PLL distance index")
    i.add_argument("--graph", required=True)
    i.add_argument("--threads", type=int, default=1)
    i.add_argument(
        "--backend",
        choices=("auto", "serial", "threads", "procs"),
        default="auto",
        help="auto = serial for --threads 1, threads otherwise; "
        "procs = worker processes over shared memory (real cores); "
        "worker count comes from --threads",
    )
    i.add_argument("--policy", choices=("static", "dynamic"), default="dynamic")
    i.add_argument(
        "--engine",
        choices=("dijkstra", "bfs"),
        default="dijkstra",
        help="dijkstra = weighted (default); bfs = unweighted hop counts",
    )
    i.add_argument("--out", default=None)
    i.add_argument(
        "--format",
        choices=("npz", "dir"),
        default="npz",
        help="npz = one compressed archive (default); dir = raw .npy "
        "bundle that query/serve can memory-map with --mmap",
    )
    i.add_argument(
        "--progress", action="store_true",
        help="render live build-progress frames to stderr",
    )
    i.add_argument(
        "--progress-jsonl", default=None, metavar="FILE",
        help="write the parapll-buildmon/1 progress events to FILE",
    )
    i.set_defaults(func=_cmd_index)

    q = sub.add_parser("query", help="query a distance from a saved index")
    q.add_argument("--index", required=True)
    q.add_argument("--graph", default=None)
    q.add_argument(
        "--pairs", default=None,
        help="file of 's t' pairs (one per line): answer all of them "
        "with the vectorised batch kernel",
    )
    q.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    q.add_argument("source", type=int, nargs="?", default=None)
    q.add_argument("target", type=int, nargs="?", default=None)
    q.set_defaults(func=_cmd_query)

    e = sub.add_parser(
        "explain",
        help="EXPLAIN one query: candidate hubs, roles, scan costs",
    )
    e.add_argument("--index", required=True)
    e.add_argument("--graph", default=None)
    e.add_argument(
        "--json", action="store_true",
        help="emit the parapll-explain/1 JSON document",
    )
    e.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    e.add_argument("source", type=int)
    e.add_argument("target", type=int)
    e.set_defaults(func=_cmd_explain)

    s = sub.add_parser("stats", help="summarise a saved index")
    s.add_argument("--index", required=True)
    s.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    s.set_defaults(func=_cmd_stats)

    a = sub.add_parser(
        "audit", help="index-health audit: run one, or diff two"
    )
    asub = a.add_subparsers(dest="audit_command", required=True)

    ar = asub.add_parser(
        "run",
        help="audit an index: label sizes, hub coverage, dominated "
        "entries, memory attribution (parapll-audit/1)",
    )
    ar.add_argument("--index", default=None, help="saved index (.npz/dir)")
    ar.add_argument(
        "--graph", default=None,
        help="graph file (index is built fresh when no --index is given)",
    )
    ar.add_argument("--threads", type=int, default=1)
    ar.add_argument(
        "--policy", choices=("static", "dynamic"), default="dynamic"
    )
    ar.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    ar.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON report to FILE",
    )
    ar.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the text summary",
    )
    ar.add_argument(
        "--no-dominated", action="store_true",
        help="skip the dominated-entry scan (large indexes)",
    )
    ar.add_argument(
        "--fail-on-dominated", action="store_true",
        help="exit 1 when any dominated entry is found (serial builds "
        "are canonical and must have none)",
    )
    ar.set_defaults(func=_cmd_audit_run)

    ad = asub.add_parser(
        "diff",
        help="compare two audits; each argument is a saved report "
        "(.json) or an index to audit on the spot",
    )
    ad.add_argument("a", help="baseline: audit report .json or index")
    ad.add_argument("b", help="candidate: audit report .json or index")
    ad.add_argument(
        "--graph", default=None,
        help="graph file attached when auditing index arguments",
    )
    ad.add_argument(
        "--mmap", action="store_true",
        help="memory-map index arguments (dir bundles only)",
    )
    ad.add_argument(
        "--json", action="store_true",
        help="print the JSON diff instead of the text summary",
    )
    ad.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when the candidate regressed (label growth, new "
        "dominated entries, heavier coverage tail)",
    )
    ad.set_defaults(func=_cmd_audit_diff)

    sv = sub.add_parser(
        "serve", help="serve an index over line-JSON TCP"
    )
    sv.add_argument("--index", default=None, help="saved index (.npz)")
    sv.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    sv.add_argument(
        "--graph", default=None,
        help="graph file (index is built fresh when no --index is given)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0)
    sv.add_argument(
        "--slow-query-seconds", type=float, default=0.5,
        help="slow-query threshold; batches abort past it",
    )
    sv.add_argument(
        "--duration", type=float, default=None,
        help="serve for N seconds then exit (default: forever)",
    )
    sv.add_argument(
        "--qlog", default=None, metavar="FILE",
        help="capture sampled query-log records to FILE (JSONL sink, "
        "flushed on shutdown)",
    )
    sv.add_argument(
        "--qlog-sample", type=float, default=None, metavar="FRACTION",
        help="fraction of queries to capture (default: the obs-config "
        "knob, 1.0)",
    )
    sv.add_argument(
        "--shed-burn-rate", type=float, default=None, metavar="RATE",
        help="fast-fail point/batch requests while any SLO target's "
        "burn rate exceeds RATE (default: shedding off)",
    )
    sv.set_defaults(func=_cmd_serve)

    w = sub.add_parser(
        "workload",
        help="characterize captured traffic: skew, hot sets, cache curve",
    )
    wsub = w.add_subparsers(dest="workload_command", required=True)
    wr = wsub.add_parser(
        "report",
        help="analyze a parapll-qlog/1 capture (Zipf fit, hot "
        "vertices/pairs, LRU hit-rate curve)",
    )
    wr.add_argument(
        "--qlog", required=True, metavar="FILE",
        help="qlog capture: a write_jsonl dump or a raw --qlog sink",
    )
    wr.add_argument(
        "--top", type=int, default=10, help="hot-table depth"
    )
    wr.add_argument(
        "--cache-sizes", default=None, metavar="N,N,...",
        help="comma-separated LRU sizes to sweep",
    )
    wr.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the parapll-workload/1 JSON report to FILE",
    )
    wr.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the text summary",
    )
    wr.set_defaults(func=_cmd_workload_report)

    rp = sub.add_parser(
        "replay",
        help="deterministic traffic replay with an SLO verdict",
    )
    rp.add_argument(
        "--host", default="127.0.0.1", help="live-server address"
    )
    rp.add_argument(
        "--port", type=int, default=None,
        help="replay against a live server (otherwise an in-process "
        "oracle from --index/--graph)",
    )
    rp.add_argument("--index", default=None, help="saved index (.npz/dir)")
    rp.add_argument(
        "--graph", default=None,
        help="graph file (index is built fresh when no --index is given)",
    )
    rp.add_argument(
        "--mmap", action="store_true",
        help="memory-map the label arrays (dir-bundle indexes only)",
    )
    rp.add_argument(
        "--cache-size", type=int, default=4096,
        help="in-process oracle LRU size",
    )
    rp.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
        help="closed = N workers back-to-back; open = Poisson arrivals",
    )
    rp.add_argument(
        "--source", choices=("zipf", "uniform", "qlog"), default="zipf",
        help="traffic shape (qlog replays a capture via --qlog)",
    )
    rp.add_argument(
        "--qlog", default=None, metavar="FILE",
        help="capture to replay when --source qlog",
    )
    rp.add_argument("--requests", type=int, default=1000)
    rp.add_argument("--clients", type=int, default=4)
    rp.add_argument(
        "--rate", type=float, default=1000.0,
        help="open-loop target arrival rate, requests/second",
    )
    rp.add_argument("--seed", type=int, default=0)
    rp.add_argument("--zipf-alpha", type=float, default=1.1)
    rp.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the parapll-replay/1 JSON report to FILE",
    )
    rp.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of the text summary",
    )
    rp.add_argument(
        "--fail-on-breach", action="store_true",
        help="exit 1 when any SLO target breached during the replay",
    )
    rp.set_defaults(func=_cmd_replay)

    tp = sub.add_parser(
        "top", help="poll a live server's status op and render it"
    )
    tp.add_argument("--host", default="127.0.0.1")
    tp.add_argument("--port", type=int, required=True)
    tp.add_argument("--interval", type=float, default=1.0)
    tp.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N refreshes (default: run until interrupted)",
    )
    tp.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the terminal",
    )
    tp.set_defaults(func=_cmd_top)

    dsh = sub.add_parser(
        "dash",
        help="live fleet dashboard: merge relayed telemetry from worker "
        "processes (see repro.obs.relay)",
    )
    dsh.add_argument("--host", default="127.0.0.1")
    dsh.add_argument(
        "--port", type=int, default=0,
        help="collector listen port (0 = ephemeral, printed at start)",
    )
    dsh.add_argument("--interval", type=float, default=1.0)
    dsh.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N refreshes (default: run until interrupted "
        "or, with --demo, until the demo fleet finishes)",
    )
    dsh.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (works without a TTY)",
    )
    dsh.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the terminal",
    )
    dsh.add_argument(
        "--demo", type=int, default=0, metavar="N",
        help="fork N demo build workers that relay into this dash",
    )
    dsh.add_argument(
        "--dataset", choices=dataset_names(), default="Gnutella",
        help="demo workers' stand-in dataset",
    )
    dsh.add_argument("--scale", type=float, default=0.05)
    dsh.add_argument("--seed", type=int, default=42)
    dsh.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the stitched fleet Chrome trace to FILE on exit",
    )
    dsh.set_defaults(func=_cmd_dash)

    fr = sub.add_parser(
        "flightrec", help="flight recorder: dump the last-N event ring"
    )
    frsub = fr.add_subparsers(dest="flightrec_command", required=True)
    frd = frsub.add_parser(
        "dump",
        help="dump the ring to JSONL (local, post-build, or from a "
        "live server's debug op)",
    )
    frd.add_argument("--out", default="flightrec.jsonl", metavar="FILE")
    frd.add_argument(
        "--graph", default=None,
        help="run a threaded build first so the ring has events",
    )
    frd.add_argument("--threads", type=int, default=4)
    frd.add_argument(
        "--policy", choices=("static", "dynamic"), default="dynamic"
    )
    frd.add_argument("--host", default="127.0.0.1")
    frd.add_argument(
        "--port", type=int, default=None,
        help="fetch the ring from a live server instead of this process",
    )
    frd.add_argument(
        "--last", type=int, default=None,
        help="only the newest N events (remote fetch)",
    )
    frd.set_defaults(func=_cmd_flightrec_dump)

    o = sub.add_parser(
        "obs",
        help="build with observability on; report and export metrics",
    )
    src = o.add_mutually_exclusive_group(required=True)
    src.add_argument("--graph", help="graph file (.npz / .gr / edge list)")
    src.add_argument(
        "--dataset", choices=dataset_names(), help="generate a stand-in"
    )
    o.add_argument("--scale", type=float, default=1.0)
    o.add_argument("--seed", type=int, default=42)
    o.add_argument("--threads", type=int, default=1)
    o.add_argument("--policy", choices=("static", "dynamic"), default="dynamic")
    o.add_argument(
        "--engine", choices=("dijkstra", "bfs"), default="dijkstra"
    )
    o.add_argument(
        "--trace",
        action="store_true",
        help="enable span tracing during the build",
    )
    o.add_argument(
        "--prom",
        default=None,
        metavar="FILE",
        help="write Prometheus text exposition to FILE",
    )
    o.add_argument(
        "--jsonl",
        default=None,
        metavar="FILE",
        help="write the JSONL trace to FILE (implies --trace)",
    )
    o.set_defaults(func=_cmd_obs)

    b = sub.add_parser(
        "bench",
        help="regenerate paper tables/figures",
        add_help=False,
    )
    b.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "perf",
        help="benchmark suite: record, compare and gate performance",
    )
    psub = p.add_subparsers(dest="perf_command", required=True)

    def _suite_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--repeats", type=int, default=3)
        sp.add_argument("--scale", type=float, default=1.0)
        sp.add_argument("--seed", type=int, default=42)
        sp.add_argument("--dataset", choices=dataset_names(), default="Gnutella")

    pr = psub.add_parser("run", help="run the suite, write BENCH_<tag>.json")
    _suite_args(pr)
    pr.add_argument("--tag", default="dev", help="label for the BENCH file")
    pr.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default BENCH_<tag>.json)",
    )
    pr.set_defaults(func=_cmd_perf_run)

    pc = psub.add_parser(
        "compare", help="gate a BENCH file against a baseline"
    )
    pc.add_argument("baseline", help="baseline BENCH file")
    pc.add_argument("current", help="current BENCH file")
    pc.add_argument(
        "--tolerance-scale", type=float, default=1.0,
        help="multiply every per-metric tolerance (e.g. 2.0 on noisy CI)",
    )
    pc.add_argument(
        "--ignore-kinds", nargs="*", default=None,
        metavar="KIND", choices=("time", "sim", "counter"),
        help="skip metric kinds (use 'time' when machines differ)",
    )
    pc.add_argument("-v", "--verbose", action="store_true")
    pc.set_defaults(func=_cmd_perf_compare)

    pu = psub.add_parser(
        "update-baseline", help="re-run the suite and overwrite the baseline"
    )
    _suite_args(pu)
    pu.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"baseline path (default {DEFAULT_BASELINE})",
    )
    pu.set_defaults(func=_cmd_perf_update_baseline)

    pp = psub.add_parser("report", help="render a BENCH file")
    pp.add_argument("file")
    pp.set_defaults(func=_cmd_perf_report)

    t = sub.add_parser(
        "timeline",
        help="trace a build into Chrome trace JSON + critical path",
    )
    tsrc = t.add_mutually_exclusive_group(required=True)
    tsrc.add_argument("--graph", help="graph file (.npz / .gr / edge list)")
    tsrc.add_argument(
        "--dataset", choices=dataset_names(), help="generate a stand-in"
    )
    tsrc.add_argument(
        "--from-jsonl", metavar="FILE",
        help="convert an existing JSONL trace instead of building",
    )
    t.add_argument("--scale", type=float, default=1.0)
    t.add_argument("--seed", type=int, default=42)
    t.add_argument("--threads", type=int, default=4)
    t.add_argument("--policy", choices=("static", "dynamic"), default="dynamic")
    t.add_argument(
        "--sim", action="store_true",
        help="trace the deterministic simulator instead of real threads",
    )
    t.add_argument(
        "--out", default=None, metavar="FILE",
        help="write Chrome trace JSON to FILE",
    )
    t.add_argument(
        "--top", type=int, default=5, help="slowest tasks to list"
    )
    t.set_defaults(func=_cmd_timeline)

    c = sub.add_parser(
        "check",
        help="correctness tooling: lint / races / deadlocks / dataflow / index",
    )
    csub = c.add_subparsers(dest="check_command", required=True)

    cl = csub.add_parser(
        "lint", help="run the project lint rules (PC001..PC005)"
    )
    cl.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to lint (default: src)",
    )
    cl.add_argument(
        "--format", choices=("text", "json", "github"), default="text"
    )
    cl.add_argument(
        "--suppressions", default=".parapll-lint.json", metavar="FILE",
        help="checked-in accepted exceptions (ignored when absent)",
    )
    cl.add_argument(
        "--no-suppressions", action="store_true",
        help="report everything, including accepted exceptions",
    )
    cl.add_argument(
        "--cache", default=None, metavar="FILE",
        help="per-file result cache keyed on content hashes (for CI)",
    )
    cl.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    cl.set_defaults(func=_cmd_check_lint)

    cr = csub.add_parser(
        "races",
        help="stress the threaded builder under a race sanitizer",
    )
    cr.add_argument("--threads", type=int, default=4)
    cr.add_argument("--repeats", type=int, default=3)
    cr.add_argument("--vertices", type=int, default=120)
    cr.add_argument("--edges", type=int, default=400)
    cr.add_argument("--seed", type=int, default=7)
    cr.add_argument(
        "--detector", choices=("vc", "lockset"), default="vc",
        help="happens-before vector clocks (default) or Eraser locksets",
    )
    cr.add_argument(
        "--cluster", action="store_true",
        help="also stress the simulated-cluster thread backend",
    )
    cr.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="run the seeded-defect race corpus instead of a stress run",
    )
    cr.add_argument(
        "--json", action="store_true",
        help="emit a parapll-check/1 report on stdout",
    )
    cr.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the parapll-check/1 report to FILE",
    )
    cr.set_defaults(func=_cmd_check_races)

    cd = csub.add_parser(
        "deadlocks",
        help="lock-order analysis: runtime acquisition cycles plus "
        "static nested-with inversions",
    )
    cd.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories for the static pass (default: src)",
    )
    cd.add_argument("--threads", type=int, default=4)
    cd.add_argument("--repeats", type=int, default=2)
    cd.add_argument(
        "--no-stress", action="store_true",
        help="skip the runtime stress run; static analysis only",
    )
    cd.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="run the seeded-defect deadlock corpus instead",
    )
    cd.add_argument(
        "--json", action="store_true",
        help="emit a parapll-check/1 report on stdout",
    )
    cd.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the parapll-check/1 report to FILE",
    )
    cd.set_defaults(func=_cmd_check_deadlocks)

    cf = csub.add_parser(
        "dataflow",
        help="thread-role dataflow rules PC007..PC012 over a call graph",
    )
    cf.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    cf.add_argument(
        "--suppressions", default=".parapll-lint.json", metavar="FILE",
        help="checked-in accepted exceptions (ignored when absent)",
    )
    cf.add_argument(
        "--no-suppressions", action="store_true",
        help="report everything, including accepted exceptions",
    )
    cf.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="run the seeded-defect dataflow corpus instead",
    )
    cf.add_argument(
        "--json", action="store_true",
        help="emit a parapll-check/1 report on stdout",
    )
    cf.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the parapll-check/1 report to FILE",
    )
    cf.set_defaults(func=_cmd_check_dataflow)

    ci = csub.add_parser(
        "index", help="verify the label invariants of a built index"
    )
    ci.add_argument("--index", default=None, help="saved index (.npz)")
    ci.add_argument(
        "--graph", default=None,
        help="graph file; enables the sampled Dijkstra exactness check "
        "(builds the index fresh when no --index is given)",
    )
    ci.add_argument("--threads", type=int, default=1)
    ci.add_argument(
        "--policy", choices=("static", "dynamic"), default="dynamic"
    )
    ci.add_argument("--samples", type=int, default=64)
    ci.add_argument("--seed", type=int, default=0)
    ci.add_argument(
        "--strict", action="store_true",
        help="fail on redundant (dominated) labels — serial builds only",
    )
    ci.set_defaults(func=_cmd_check_index)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    import sys as _sys

    argv = list(_sys.argv[1:]) if argv is None else list(argv)
    # "bench" forwards everything after it to the bench runner's own
    # parser (argparse subparsers cannot pass through unknown options).
    if argv and argv[0] == "bench":
        from repro.bench.runner import main as bench_main

        return bench_main(argv[1:])
    args = _build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
