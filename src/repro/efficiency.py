"""Analysis of the paper's Proposition 2: pruning-efficiency loss.

Proposition 2 bounds the pruning-efficiency loss of the static policy
with *p* threads by the worst-case window reorderings::

    sum over windows of  ψ(v_i) - ψ(v_{i+p})

where ψ(v) is the number of shortest paths through v (the pruning
potential of indexing v early) and v_1 >= v_2 >= ... is the optimal
ψ-descending sequence.  Intuitively: within a window of p concurrently
dispatched roots, the execution order can invert, and the loss from an
inversion is the ψ gap across the window.

This module computes that bound with exact ψ values (Brandes'
betweenness, :mod:`repro.graph.centrality`) and the *measured*
redundancy of an actual parallel run (extra label entries vs. the
serial build), letting benchmarks confirm the paper's two predictions:
the bound shrinks as windows get smaller (fewer threads) and grows
with p, and the measured redundancy stays correlated with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.serial import build_serial
from repro.errors import SimulationError
from repro.graph.centrality import psi_values
from repro.graph.csr import CSRGraph
from repro.sim.executor import simulate_intra_node

__all__ = [
    "proposition2_bound",
    "measured_redundancy",
    "EfficiencyLossReport",
    "efficiency_loss_study",
]


def proposition2_bound(
    graph: CSRGraph,
    order: Sequence[int],
    num_workers: int,
    psi: Optional[np.ndarray] = None,
) -> float:
    """The Proposition-2 efficiency-loss bound, normalised to [0, 1].

    Args:
        graph: the graph.
        order: the computing sequence (most important first).
        num_workers: the window width ``p``.
        psi: precomputed ψ values (otherwise computed exactly, O(nm)).

    Returns:
        ``sum_i (ψ(order[i]) - min ψ over order[i..i+p]) / sum ψ`` — the
        worst case within each dispatch window is that the window's
        least-potential root runs first, so each position risks its gap
        to the window minimum.  Zero for ``p = 1`` (serial) and
        non-decreasing in *p* (larger windows have smaller minima).

    Raises:
        SimulationError: for ``num_workers < 1``.
    """
    if num_workers < 1:
        raise SimulationError("num_workers must be >= 1")
    if psi is None:
        psi = psi_values(graph)
    order = np.asarray(order, dtype=np.int64)
    n = len(order)
    if n == 0 or num_workers == 1:
        return 0.0
    seq = psi[order]
    total = float(seq.sum())
    if total <= 0:
        return 0.0
    # Leading-window minimum over seq[j .. j + p], vectorised by
    # stacking the p + 1 shifted views (p <= threads, so this is cheap).
    window = num_workers + 1
    mins = seq.copy()
    for shift in range(1, window):
        shifted = np.empty(n, dtype=np.float64)
        shifted[: n - shift] = seq[shift:]
        shifted[n - shift :] = np.inf  # window truncates at the end
        np.minimum(mins, shifted, out=mins)
    loss = float(np.clip(seq - mins, 0.0, None).sum())
    return loss / total


def measured_redundancy(
    graph: CSRGraph,
    num_workers: int,
    order: Optional[Sequence[int]] = None,
    seed: int = 0,
    jitter: float = 0.2,
) -> float:
    """Measured label redundancy of one simulated parallel run.

    Returns:
        ``(parallel entries - serial entries) / serial entries`` — the
        relative index growth caused by out-of-order execution.
    """
    serial_store, _ = build_serial(graph, order=order)
    index, _run = simulate_intra_node(
        graph, num_workers, order=order, jitter=jitter, seed=seed
    )
    serial_entries = serial_store.total_entries
    if serial_entries == 0:
        return 0.0
    return (index.store.total_entries - serial_entries) / serial_entries


@dataclass
class EfficiencyLossReport:
    """Bound vs. measurement across thread counts.

    Attributes:
        workers: the thread counts studied.
        bounds: Proposition-2 bounds per thread count.
        redundancy: measured relative label growth per thread count.
    """

    workers: list
    bounds: list
    redundancy: list


def efficiency_loss_study(
    graph: CSRGraph,
    workers: Sequence[int] = (1, 2, 4, 8),
    order: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> EfficiencyLossReport:
    """Compute bound and measurement for several thread counts."""
    from repro.graph.order import by_degree

    if order is None:
        order = by_degree(graph)
    psi = psi_values(graph)
    bounds = [
        proposition2_bound(graph, order, p, psi=psi) for p in workers
    ]
    redundancy = [
        measured_redundancy(graph, p, order=order, seed=seed)
        for p in workers
    ]
    return EfficiencyLossReport(
        workers=list(workers), bounds=bounds, redundancy=redundancy
    )
