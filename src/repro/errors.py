"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError``, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or out-of-range vertices."""


class GraphFormatError(GraphError):
    """Raised when parsing a graph file that violates its declared format."""


class IndexError_(ReproError):
    """Raised for invalid use of a distance index (e.g. querying before build).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class NotIndexedError(IndexError_):
    """Raised when querying an index whose build has not completed."""


class OrderingError(ReproError):
    """Raised when a vertex ordering is not a permutation of the vertices."""


class SimulationError(ReproError):
    """Raised for inconsistent simulator configuration or state."""


class CommError(SimulationError):
    """Raised for misuse of the simulated message-passing layer."""


class TaskError(ReproError):
    """Raised by task managers for invalid assignment requests."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for unknown experiments or bad params."""


class CheckError(ReproError):
    """Raised by the correctness tooling (:mod:`repro.check`) for invalid
    configuration: unknown rules, malformed suppression files, or an
    index that fails invariant verification in strict mode."""
