"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``,
``KeyError``, ...) propagate.

Errors carry *structured details*: any keyword arguments passed at
raise time (``TaskError("worker 3 failed", worker=3, root=17)``) become
both attributes on the instance and entries in :attr:`ReproError.details`,
so the flight recorder and tests can assert on ``exc.worker`` /
``exc.rank`` programmatically instead of parsing the message string.
"""

from __future__ import annotations

from typing import Any, Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Args:
        *args: the usual exception message arguments.
        **details: structured, JSON-safe context (``worker=``, ``rank=``,
            ``root=``, ...), exposed as attributes and via
            :attr:`details`.
    """

    def __init__(self, *args: object, **details: Any) -> None:
        super().__init__(*args)
        #: Structured raise-time context, e.g. ``{"worker": 3, "root": 17}``.
        self.details: Dict[str, Any] = details
        for key, value in details.items():
            setattr(self, key, value)


class GraphError(ReproError):
    """Raised for structurally invalid graphs or out-of-range vertices."""


class GraphFormatError(GraphError):
    """Raised when parsing a graph file that violates its declared format."""


class IndexError_(ReproError):
    """Raised for invalid use of a distance index (e.g. querying before build).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class NotIndexedError(IndexError_):
    """Raised when querying an index whose build has not completed."""


class OrderingError(ReproError):
    """Raised when a vertex ordering is not a permutation of the vertices."""


class SimulationError(ReproError):
    """Raised for inconsistent simulator configuration or state."""


class CommError(SimulationError):
    """Raised for misuse of the simulated message-passing layer."""


class TaskError(ReproError):
    """Raised by task managers for invalid assignment requests."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for unknown experiments or bad params."""


class CheckError(ReproError):
    """Raised by the correctness tooling (:mod:`repro.check`) for invalid
    configuration: unknown rules, malformed suppression files, or an
    index that fails invariant verification in strict mode."""
