"""METIS graph format (the partitioner-ecosystem interchange format).

Format (weighted-edge variant, fmt code ``1``)::

    % comments
    <n> <m> 1
    <nbr> <w> <nbr> <w> ...     (line i+1 lists vertex i's neighbours,
                                 1-based ids, each undirected edge
                                 appearing on both endpoint lines)

Useful for moving graphs between this library and graph partitioners
(a natural companion to the cluster substrate: partition-aware task
assignment is an obvious follow-up to the paper's round-robin split).
"""

from __future__ import annotations

import os
from typing import Optional, TextIO, Union

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["read_metis", "write_metis"]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_maybe(path: PathOrFile, mode: str):
    if hasattr(path, "read") or hasattr(path, "write"):
        return path, False
    return open(path, mode, encoding="utf-8"), True


def read_metis(path: PathOrFile, name: Optional[str] = None) -> CSRGraph:
    """Parse a METIS file (plain or edge-weighted ``fmt=1``).

    Raises:
        GraphFormatError: on malformed headers, id ranges, or an
            adjacency-line count that disagrees with the header.
    """
    handle, should_close = _open_maybe(path, "r")
    try:
        header = None
        adjacency_lines = []
        for line in handle:
            line = line.strip()
            if line.startswith("%"):
                continue
            if header is None:
                if not line:
                    continue
                header = line.split()
            else:
                # Blank lines are meaningful here: an isolated vertex
                # has an empty adjacency line.
                adjacency_lines.append(line)
        if header is None:
            raise GraphFormatError("missing METIS header line")
        if len(header) not in (2, 3):
            raise GraphFormatError(
                f"header must be '<n> <m> [fmt]', got {header}"
            )
        n = int(header[0])
        declared_m = int(header[1])
        fmt = header[2] if len(header) == 3 else "0"
        if fmt not in ("0", "1"):
            raise GraphFormatError(
                f"unsupported METIS fmt {fmt!r} (only 0 and 1)"
            )
        weighted = fmt == "1"
        if len(adjacency_lines) > n:
            raise GraphFormatError(
                f"{len(adjacency_lines)} adjacency lines for n={n}"
            )
        builder = GraphBuilder(num_vertices=n, on_duplicate="first")
        for u, line in enumerate(adjacency_lines):
            fields = line.split()
            step = 2 if weighted else 1
            if len(fields) % step != 0:
                raise GraphFormatError(
                    f"vertex {u + 1}: odd field count in weighted adjacency"
                )
            for k in range(0, len(fields), step):
                try:
                    v = int(fields[k]) - 1
                    w = float(fields[k + 1]) if weighted else 1.0
                except ValueError as exc:
                    raise GraphFormatError(
                        f"vertex {u + 1}: non-numeric field ({exc})"
                    ) from None
                if not 0 <= v < n:
                    raise GraphFormatError(
                        f"vertex {u + 1}: neighbour {v + 1} out of range"
                    )
                if v == u:
                    continue
                builder.add_edge(u, v, w)
        graph_name = name
        if graph_name is None:
            graph_name = (
                os.path.basename(str(path))
                if not hasattr(path, "read")
                else "metis"
            )
        graph = builder.build(name=graph_name)
        if graph.num_edges != declared_m:
            raise GraphFormatError(
                f"header declares {declared_m} edges, file contains "
                f"{graph.num_edges}"
            )
        return graph
    finally:
        if should_close:
            handle.close()


def write_metis(graph: CSRGraph, path: PathOrFile) -> None:
    """Write a graph in edge-weighted METIS form (``fmt=1``)."""
    handle, should_close = _open_maybe(path, "w")
    try:
        handle.write(f"% {graph.name}\n")
        handle.write(f"{graph.num_vertices} {graph.num_edges} 1\n")
        for u in range(graph.num_vertices):
            parts = []
            for v, w in zip(graph.neighbors(u), graph.neighbor_weights(u)):
                wtxt = str(int(w)) if w == int(w) else repr(float(w))
                parts.append(f"{int(v) + 1} {wtxt}")
            handle.write(" ".join(parts) + "\n")
    finally:
        if should_close:
            handle.close()
