"""DIMACS shortest-path challenge ``.gr`` format (TIGER road networks).

The 9th DIMACS Implementation Challenge distributes the USA road
networks the paper uses (DE/RI/HI-USA) in this format::

    c comment
    p sp <n> <m>
    a <u> <v> <w>      (1-based vertex ids, one line per directed arc)

Road files list both arc directions; the reader folds them into one
undirected edge (keeping the smaller weight if they disagree, as is
conventional for these files).
"""

from __future__ import annotations

import os
from typing import Optional, TextIO, Union

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["read_dimacs", "write_dimacs"]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_maybe(path: PathOrFile, mode: str):
    if hasattr(path, "read") or hasattr(path, "write"):
        return path, False
    return open(path, mode, encoding="utf-8"), True


def read_dimacs(path: PathOrFile, name: Optional[str] = None) -> CSRGraph:
    """Parse a DIMACS ``.gr`` file into an undirected weighted graph.

    Raises:
        GraphFormatError: on a missing/duplicate problem line, arcs
            before the problem line, out-of-range vertex ids, or
            malformed records.
    """
    handle, should_close = _open_maybe(path, "r")
    builder: Optional[GraphBuilder] = None
    declared_arcs = 0
    seen_arcs = 0
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if builder is not None:
                    raise GraphFormatError(f"line {lineno}: duplicate problem line")
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"line {lineno}: expected 'p sp <n> <m>', got {line!r}"
                    )
                n = int(parts[2])
                declared_arcs = int(parts[3])
                builder = GraphBuilder(num_vertices=n, on_duplicate="min")
            elif parts[0] == "a":
                if builder is None:
                    raise GraphFormatError(
                        f"line {lineno}: arc before problem line"
                    )
                if len(parts) != 4:
                    raise GraphFormatError(
                        f"line {lineno}: expected 'a <u> <v> <w>'"
                    )
                try:
                    u = int(parts[1]) - 1
                    v = int(parts[2]) - 1
                    w = float(parts[3])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"line {lineno}: non-numeric field ({exc})"
                    ) from None
                if u == v:
                    continue
                try:
                    builder.add_edge(u, v, w)
                except Exception as exc:
                    raise GraphFormatError(f"line {lineno}: {exc}") from None
                seen_arcs += 1
            else:
                raise GraphFormatError(
                    f"line {lineno}: unknown record type {parts[0]!r}"
                )
    finally:
        if should_close:
            handle.close()
    if builder is None:
        raise GraphFormatError("missing problem line ('p sp n m')")
    if declared_arcs and seen_arcs > declared_arcs:
        raise GraphFormatError(
            f"file declares {declared_arcs} arcs but contains {seen_arcs}"
        )
    graph_name = name
    if graph_name is None:
        graph_name = (
            os.path.basename(str(path)) if not hasattr(path, "read") else "dimacs"
        )
    return builder.build(name=graph_name)


def write_dimacs(graph: CSRGraph, path: PathOrFile) -> None:
    """Write a graph in DIMACS ``.gr`` form (both arc directions)."""
    handle, should_close = _open_maybe(path, "w")
    try:
        handle.write(f"c {graph.name}\n")
        handle.write(f"p sp {graph.num_vertices} {graph.num_arcs}\n")
        for u, v, w in graph.edges():
            wtxt = str(int(w)) if w == int(w) else repr(w)
            handle.write(f"a {u + 1} {v + 1} {wtxt}\n")
            handle.write(f"a {v + 1} {u + 1} {wtxt}\n")
    finally:
        if should_close:
            handle.close()
