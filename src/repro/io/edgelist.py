"""SNAP-style whitespace edge lists.

Format: one edge per line, ``u v`` or ``u v w``; lines starting with
``#`` or ``%`` are comments.  Vertex ids may be arbitrary non-negative
integers (SNAP files are sparse in id space); they are densified to
``0..n-1`` in first-appearance order, and the mapping is returned so
callers can translate query results back.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, TextIO, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph

__all__ = ["read_edgelist", "write_edgelist"]

PathOrFile = Union[str, os.PathLike, TextIO]


def _open_maybe(path: PathOrFile, mode: str):
    if hasattr(path, "read") or hasattr(path, "write"):
        return path, False
    return open(path, mode, encoding="utf-8"), True


def read_edgelist(
    path: PathOrFile,
    default_weight: float = 1.0,
    name: Optional[str] = None,
) -> Tuple[CSRGraph, Dict[int, int]]:
    """Parse a (possibly weighted) SNAP edge list.

    Args:
        path: file path or open text handle.
        default_weight: weight for 2-column lines.
        name: graph name (defaults to the file's basename).

    Returns:
        ``(graph, id_map)`` where ``id_map`` maps original vertex ids to
        the dense ids used by the graph.

    Raises:
        GraphFormatError: on malformed lines (wrong column count,
            non-numeric fields, negative ids, non-positive weights).
    """
    handle, should_close = _open_maybe(path, "r")
    ids: Dict[int, int] = {}
    builder = GraphBuilder()

    def dense(orig: int) -> int:
        got = ids.get(orig)
        if got is None:
            got = len(ids)
            ids[orig] = got
        return got

    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("%"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"line {lineno}: expected 2 or 3 columns, got {len(parts)}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else default_weight
            except ValueError as exc:
                raise GraphFormatError(
                    f"line {lineno}: non-numeric field ({exc})"
                ) from None
            if u < 0 or v < 0:
                raise GraphFormatError(f"line {lineno}: negative vertex id")
            if u == v:
                continue  # SNAP files contain self loops; drop them
            try:
                builder.add_edge(dense(u), dense(v), w)
            except Exception as exc:
                raise GraphFormatError(f"line {lineno}: {exc}") from None
    finally:
        if should_close:
            handle.close()

    graph_name = name
    if graph_name is None:
        graph_name = (
            os.path.basename(str(path)) if not hasattr(path, "read") else "edgelist"
        )
    return builder.build(name=graph_name), ids


def write_edgelist(graph: CSRGraph, path: PathOrFile) -> None:
    """Write a graph as a weighted edge list (one ``u v w`` line per edge)."""
    handle, should_close = _open_maybe(path, "w")
    try:
        handle.write(f"# {graph.name}: n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v, w in graph.edges():
            if w == int(w):
                handle.write(f"{u} {v} {int(w)}\n")
            else:
                handle.write(f"{u} {v} {w!r}\n")
    finally:
        if should_close:
            handle.close()
