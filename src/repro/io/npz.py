"""Fast binary graph persistence via ``numpy.savez``.

Used by the benchmark harness to cache generated stand-in graphs so a
sweep over thread counts re-loads the identical graph instead of
re-generating it.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

__all__ = ["save_graph_npz", "load_graph_npz"]

PathLike = Union[str, os.PathLike]


def save_graph_npz(graph: CSRGraph, path: PathLike) -> None:
    """Serialise a graph's CSR arrays (and name) to an ``.npz`` file."""
    np.savez_compressed(
        path,
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        name=np.array(graph.name),
    )


def load_graph_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved with :func:`save_graph_npz`.

    Raises:
        GraphFormatError: if the file lacks the expected arrays.
    """
    with np.load(path, allow_pickle=False) as data:
        try:
            indptr = data["indptr"]
            indices = data["indices"]
            weights = data["weights"]
        except KeyError as exc:
            raise GraphFormatError(f"not a graph npz file: missing {exc}") from None
        name = str(data["name"]) if "name" in data else "graph"
    return CSRGraph(indptr, indices, weights, name=name)
