"""Graph file I/O: SNAP-style edge lists and DIMACS ``.gr`` road format.

The paper's datasets come as SNAP edge lists (social/P2P/AS graphs) and
DIMACS challenge files (TIGER road networks); these readers let a user
who *does* have the original files run the reproduction on them
directly.  Writers exist so generated stand-ins can be cached and
shared.
"""

from repro.io.dimacs import read_dimacs, write_dimacs
from repro.io.edgelist import read_edgelist, write_edgelist
from repro.io.metis import read_metis, write_metis
from repro.io.npz import load_graph_npz, save_graph_npz

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_dimacs",
    "read_metis",
    "write_metis",
    "write_dimacs",
    "load_graph_npz",
    "save_graph_npz",
]
