"""ParaPLL reproduction: parallel pruned-landmark-labeling distance queries.

Reproduction of *ParaPLL: Fast Parallel Shortest-path Distance Query on
Large-scale Weighted Graphs* (Qiu et al., ICPP 2018).

Quickstart::

    from repro import PLLIndex, load_dataset

    graph = load_dataset("Gnutella", scale=0.5)
    index = PLLIndex.build(graph)
    print(index.distance(0, 42))

Subpackages:

* :mod:`repro.graph` — CSR graphs, builders, orderings.
* :mod:`repro.generators` — seeded synthetic graphs (Table-2 stand-ins).
* :mod:`repro.io` — edge-list / DIMACS readers and writers.
* :mod:`repro.pq` — priority queues.
* :mod:`repro.baselines` — Dijkstra / bidirectional / BFS / APSP.
* :mod:`repro.core` — PLL labels, queries, pruned Dijkstra, serial build.
* :mod:`repro.parallel` — intra-node ParaPLL (task manager + threads).
* :mod:`repro.cluster` — inter-node ParaPLL over a simulated MPI.
* :mod:`repro.sim` — discrete-event parallel-execution simulator.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from repro.core.dynamic import DynamicPLL
from repro.core.index import PLLIndex
from repro.core.knn import KNNIndex
from repro.generators.paper import dataset_names, load_dataset
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.parallel.threads import build_parallel_threads
from repro.sim.executor import simulate_intra_node

__version__ = "1.0.0"

__all__ = [
    "PLLIndex",
    "DynamicPLL",
    "KNNIndex",
    "CSRGraph",
    "GraphBuilder",
    "build_parallel_threads",
    "simulate_intra_node",
    "load_dataset",
    "dataset_names",
    "__version__",
]
