"""Deprecated alias for :mod:`repro.efficiency`.

The module was renamed: "analysis" said nothing about *what* it
analyses, and the codebase now has several analysis-flavoured packages
(``repro.obs``, ``repro.check``).  Everything lives in
:mod:`repro.efficiency`; this shim re-exports it and warns once so
downstream imports keep working for one release.
"""

from __future__ import annotations

import warnings

from repro.efficiency import (  # noqa: F401 - re-exported surface
    EfficiencyLossReport,
    efficiency_loss_study,
    measured_redundancy,
    proposition2_bound,
)

__all__ = [
    "EfficiencyLossReport",
    "efficiency_loss_study",
    "measured_redundancy",
    "proposition2_bound",
]

warnings.warn(
    "repro.analysis is deprecated; import repro.efficiency instead",
    DeprecationWarning,
    stacklevel=2,
)
