"""The discrete-event executor for intra-node ParaPLL.

:class:`IntraNodeSimulator` schedules real pruned-Dijkstra searches on
*p* virtual workers.  The searches are genuinely executed (same code as
the serial builder) against exactly the labels each one would have seen
under the simulated schedule; their measured operation counts are then
charged through the :class:`~repro.sim.costmodel.CostModel` to advance
virtual time.

Label visibility model (``visibility`` parameter):

* ``"completion"`` (default): a root's labels become visible to other
  searches when its commit finishes — the conservative reading of the
  paper's Proposition-1 proof ("the indexing of v_{k+1} may not be
  finished"), and the source of the redundant labels the paper reports.
* ``"immediate"``: labels are visible the moment the producing search
  is dispatched — an optimistic bound where parallel pruning equals
  serial pruning (ablation; see DESIGN.md §5).

Commits are serialised on a simulated global lock (Algorithm 2's
semaphore), which is what saturates speedup on small graphs exactly as
the paper observes on Wiki-Vote.

The simulator is round-capable: :meth:`IntraNodeSimulator.run_roots`
processes one batch of roots and leaves worker clocks, the lock and the
label store in place, which is how the cluster substrate runs the
chunks between synchronisation points.
"""

from __future__ import annotations

import heapq
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.check import hooks as _check_hooks
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import bus as _bus
from repro.obs import config as _obs_config
from repro.obs import trace as _trace
from repro.obs.instruments import CLUSTER_REDUNDANT_LABELS
from repro.parallel.task_manager import make_assignment
from repro.sim.costmodel import CostModel
from repro.types import IndexStats, ParallelRunResult, SearchStats

__all__ = ["IntraNodeSimulator", "simulate_intra_node"]

_VISIBILITIES = ("completion", "immediate")


class IntraNodeSimulator:
    """Virtual p-worker shared-memory node executing pruned searches.

    Args:
        graph: the graph being indexed.
        num_workers: virtual thread count ``p``.
        policy: ``"static"`` or ``"dynamic"`` task assignment (applied
            per :meth:`run_roots` batch).
        order: global vertex ordering (defaults to descending degree).
        cost_model: calibrated cost model; defaults to the uncalibrated
            unit model bound to this graph.
        visibility: ``"completion"`` or ``"immediate"`` (see module doc).
        chunk: dynamic-policy grab size.
        record_schedule: keep (worker, root, start, finish) tuples.
        jitter: machine-noise level.  Each task's run time is multiplied
            by a seeded mean-one lognormal factor with this sigma,
            modelling the execution-time variance (cache misses, memory
            contention, OS preemption) of a real multicore machine.
            With ``jitter=0`` per-task costs decline so smoothly with
            rank that completion order equals dispatch order and the
            static policy degenerates into the dynamic one — the noise
            is what the dynamic policy exists to absorb (paper §5.4.2).
        worker_jitter: persistent per-worker slowdown spread.  Worker 0
            always runs at speed 1; each further worker's speed is a
            seeded half-normal slowdown ``exp(-|N(0, sigma)|)`` (never
            faster than 1, so speedups stay sub-linear), modelling
            core/socket heterogeneity and co-scheduling on a real dual-
            socket machine.  Unlike per-task noise — which averages out
            over the n/p tasks each worker runs — a persistently slow
            worker creates the systematic imbalance that only dynamic
            assignment can absorb, which is exactly the static-vs-
            dynamic gap of the paper's §5.4.2.
        seed: RNG seed for the jitter streams.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_workers: int,
        policy: str = "dynamic",
        order: Optional[Sequence[int]] = None,
        cost_model: Optional[CostModel] = None,
        visibility: str = "completion",
        chunk: int = 1,
        record_schedule: bool = False,
        jitter: float = 0.0,
        worker_jitter: float = 0.0,
        seed: int = 0,
        engine: str = "dijkstra",
    ) -> None:
        if num_workers < 1:
            raise SimulationError("num_workers must be >= 1")
        if visibility not in _VISIBILITIES:
            raise SimulationError(
                f"visibility must be one of {_VISIBILITIES}, got {visibility!r}"
            )
        if jitter < 0 or worker_jitter < 0:
            raise SimulationError("jitter levels must be non-negative")
        if order is None:
            order = by_degree(graph)
        from repro.core.engines import make_engine

        self.graph = graph
        self.num_workers = num_workers
        self.policy = policy
        self.order = order
        self.engine = make_engine(engine, graph, order)
        self.store = LabelStore(graph.num_vertices)
        self.cost_model = (cost_model or CostModel()).for_graph(
            graph.num_vertices
        )
        self.visibility = visibility
        self.chunk = chunk
        self.record_schedule = record_schedule
        self.jitter = jitter
        self.worker_jitter = worker_jitter
        self._rng = np.random.default_rng(seed)
        # Worker 0 is the deterministic reference (speed 1), so the
        # 1-worker baseline is jitter-free and speedups stay comparable.
        self.worker_speed: List[float] = [1.0] * num_workers
        if worker_jitter > 0:
            for k in range(1, num_workers):
                self.worker_speed[k] = math.exp(
                    -abs(self._rng.normal(0.0, worker_jitter))
                )

        #: Offset added to worker ids in build-monitor reports, so the
        #: cluster simulator can give each node's virtual workers a
        #: distinct id range (node k -> k * p .. k * p + p - 1).
        self.buildmon_worker_base = 0
        self.worker_clock: List[float] = [0.0] * num_workers
        self.worker_busy: List[float] = [0.0] * num_workers
        self.lock_free_at: float = 0.0
        self.per_root: List[SearchStats] = []
        self.schedule: List[Tuple[int, int, float, float]] = []
        #: Label triples committed since the last :meth:`drain_deltas`
        #: (consumed by the cluster synchroniser).
        self._pending_deltas: List[Tuple[int, int, float]] = []
        # Sanitizer location for store commits: the simulator is
        # single-threaded, so tracked accesses stay in the exclusive
        # state — the instrumentation exists so sim-driven runs share
        # the same access surface as the real builders.
        self._san_store = f"SimNode#{id(self)}.store"

    # ------------------------------------------------------------------
    # Event kinds, ordered so that at equal timestamps commits become
    # visible before a new dispatch reads the store, and lock grants
    # precede both.
    _EV_LOCKREQ = 0
    _EV_COMMIT = 1
    _EV_FREE = 2

    def run_roots(self, roots: Sequence[int]) -> None:
        """Execute one batch of roots to completion on the virtual node.

        Worker clocks, the commit lock and the label store carry over
        from previous batches; the task-assignment policy is applied
        within the batch.

        The event loop has three event kinds per task lifecycle:
        ``FREE`` (worker requests a task; the search runs *now*, against
        the labels currently visible), ``LOCKREQ`` (the search is done
        and queues FIFO for the commit lock), and ``COMMIT`` (the delta
        becomes visible and the worker is released).
        """
        if len(roots) == 0:
            return
        assignment = make_assignment(
            self.policy, roots, self.num_workers, chunk=self.chunk
        )
        cost = self.cost_model
        engine = self.engine
        store = self.store
        rank = engine.rank

        # Event heap entries: (time, kind, seq, payload).
        events: List[Tuple[float, int, int, tuple]] = []
        seq = 0
        for k in range(self.num_workers):
            events.append((self.worker_clock[k], self._EV_FREE, seq, (k,)))
            seq += 1
        heapq.heapify(events)

        while events:
            t, kind, _, payload = heapq.heappop(events)
            if kind == self._EV_FREE:
                (w,) = payload
                root = assignment.next_task(w)
                if root is None:
                    self.worker_clock[w] = t
                    continue
                stats = SearchStats()
                delta = engine.run(root, store, stats)
                self.per_root.append(stats)
                # Simulated builds report to an installed build monitor
                # too (the monitor's own clocks are wall-clock, so the
                # rates describe simulation throughput, not makespan).
                _buildmon.report_root(
                    self.buildmon_worker_base + w, root, stats=stats
                )
                root_rank = int(rank[root])
                triples = [(v, root_rank, d) for v, d in delta]
                if self.visibility == "immediate":
                    _check_hooks.access(self._san_store, write=True)
                    store.add_delta(triples)
                run_units = cost.task_overhead + cost.search_units(stats)
                if self.jitter > 0:
                    # Mean-one lognormal: exp(N(0, s) - s^2 / 2).
                    run_units *= math.exp(
                        self._rng.normal(0.0, self.jitter)
                        - self.jitter * self.jitter / 2.0
                    )
                run_units /= self.worker_speed[w]
                finish_run = t + cost.seconds(run_units)
                seq += 1
                heapq.heappush(
                    events,
                    (
                        finish_run,
                        self._EV_LOCKREQ,
                        seq,
                        (w, root, triples, t),
                    ),
                )
            elif kind == self._EV_LOCKREQ:
                w, root, triples, start = payload
                commit_start = max(t, self.lock_free_at)
                lock_wait = commit_start - t
                commit_end = commit_start + cost.seconds(
                    cost.commit_units(len(triples))
                )
                self.lock_free_at = commit_end
                seq += 1
                heapq.heappush(
                    events,
                    (
                        commit_end,
                        self._EV_COMMIT,
                        seq,
                        (w, root, triples, start, lock_wait),
                    ),
                )
            else:  # _EV_COMMIT
                w, root, triples, start, lock_wait = payload
                if self.visibility != "immediate":
                    _check_hooks.access(self._san_store, write=True)
                    store.add_delta(triples)
                self._pending_deltas.extend(triples)
                self.worker_busy[w] += t - start
                if self.record_schedule:
                    self.schedule.append((w, root, start, t))
                if _obs_config.TRACING:
                    # Same schema as the real builders' "root_search"
                    # records, but stamped with *simulated* seconds
                    # (clock="sim"; see DESIGN.md §7).
                    _trace.event(
                        "root_search",
                        ts=t,
                        worker=w,
                        root=root,
                        labels=len(triples),
                        start=start,
                        finish=t,
                        lock_wait=lock_wait,
                        clock="sim",
                    )
                # Cross-process telemetry mirror of the real builders'
                # root_commit event, stamped with simulated seconds.
                _bus.publish_event(
                    "sim_root_commit",
                    worker=w,
                    root=root,
                    labels=len(triples),
                    sim_time=t,
                )
                seq += 1
                heapq.heappush(events, (t, self._EV_FREE, seq, (w,)))

    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Current node time: when the last worker became idle."""
        return max(self.worker_clock) if self.worker_clock else 0.0

    def advance_all(self, time: float) -> None:
        """Set every worker clock (and the lock) to *time* (barrier exit).

        Raises:
            SimulationError: if *time* would move any clock backwards.
        """
        if time < self.clock - 1e-12:
            raise SimulationError(
                f"cannot advance node to {time} before its clock {self.clock}"
            )
        self.worker_clock = [time] * self.num_workers
        self.lock_free_at = max(self.lock_free_at, time)

    def drain_deltas(self) -> List[Tuple[int, int, float]]:
        """Label triples committed since the last drain (for cluster sync)."""
        out = self._pending_deltas
        self._pending_deltas = []
        return out

    def receive_labels(self, triples: Sequence[Tuple[int, int, float]]) -> int:
        """Merge remote label triples into this node's local store.

        Exact duplicates of entries already present are skipped and
        counted — they are the redundant labels a serial build would
        never have produced (Table 5's label growth).

        Returns:
            The number of skipped (redundant) entries.
        """
        store = self.store
        _check_hooks.access(self._san_store, write=True)
        skipped = 0
        for v, h, d in triples:
            if h not in store.hubs_of(v):
                store.add(v, h, d)
            else:
                skipped += 1
        if skipped and _obs_config.METRICS:
            CLUSTER_REDUNDANT_LABELS.inc(skipped)
        return skipped


def simulate_intra_node(
    graph: CSRGraph,
    num_workers: int,
    policy: str = "dynamic",
    order: Optional[Sequence[int]] = None,
    cost_model: Optional[CostModel] = None,
    visibility: str = "completion",
    chunk: int = 1,
    record_schedule: bool = False,
    jitter: float = 0.0,
    worker_jitter: float = 0.0,
    seed: int = 0,
    engine: str = "dijkstra",
) -> Tuple[PLLIndex, ParallelRunResult]:
    """Simulate one full intra-node ParaPLL build (a Table-3/4 cell).

    Returns:
        ``(index, run_result)`` — the finalized index produced under the
        simulated schedule, and the timing/makespan metrics.  The
        run result's ``schedule`` and the index stats' ``per_root`` are
        populated according to the flags.
    """
    sim = IntraNodeSimulator(
        graph,
        num_workers,
        policy=policy,
        order=order,
        cost_model=cost_model,
        visibility=visibility,
        chunk=chunk,
        record_schedule=record_schedule,
        jitter=jitter,
        worker_jitter=worker_jitter,
        seed=seed,
        engine=engine,
    )
    sim.run_roots(list(sim.engine.order))
    store = sim.store
    store.finalize()
    makespan = sim.clock
    stats = IndexStats.from_sizes(store.label_sizes(), makespan)
    stats.per_root = sim.per_root
    index = PLLIndex(store, sim.engine.order, graph=graph, stats=stats)
    result = ParallelRunResult(
        index_stats=stats,
        makespan=makespan,
        computation_time=sum(sim.worker_busy),
        communication_time=0.0,
        per_worker_busy=list(sim.worker_busy),
        schedule=list(sim.schedule),
    )
    return index, result
