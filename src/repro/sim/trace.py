"""Schedule traces: Gantt rendering and utilisation analysis.

The simulator optionally records ``(worker, root, start, finish)``
tuples (``record_schedule=True``).  This module turns those into
human-readable ASCII Gantt charts and utilisation summaries — the
tooling used to diagnose why a static schedule loses to a dynamic one
(idle tails, slow workers) in the scaling example and in EXPERIMENTS.md
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SimulationError

__all__ = ["ScheduleTrace", "gantt_ascii"]

Event = Tuple[int, int, float, float]  # (worker, root, start, finish)


@dataclass
class ScheduleTrace:
    """Analysed view of one recorded schedule.

    Attributes:
        num_workers: worker count inferred from the events.
        makespan: latest finish time.
        busy: per-worker busy seconds.
        idle: per-worker idle seconds (makespan minus busy).
        utilisation: per-worker busy / makespan.
        tasks_per_worker: number of tasks each worker executed.
    """

    num_workers: int
    makespan: float
    busy: List[float]
    idle: List[float]
    utilisation: List[float]
    tasks_per_worker: List[int]

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "ScheduleTrace":
        """Build a trace from recorded schedule events.

        Raises:
            SimulationError: for an empty schedule or negative spans.
        """
        if not events:
            raise SimulationError("cannot analyse an empty schedule")
        num_workers = max(w for w, _r, _s, _f in events) + 1
        makespan = max(f for _w, _r, _s, f in events)
        busy = [0.0] * num_workers
        tasks = [0] * num_workers
        for w, _root, start, finish in events:
            if finish < start:
                raise SimulationError(
                    f"event on worker {w} finishes before it starts"
                )
            busy[w] += finish - start
            tasks[w] += 1
        idle = [max(0.0, makespan - b) for b in busy]
        util = [b / makespan if makespan > 0 else 0.0 for b in busy]
        return cls(
            num_workers=num_workers,
            makespan=makespan,
            busy=busy,
            idle=idle,
            utilisation=util,
            tasks_per_worker=tasks,
        )

    @property
    def mean_utilisation(self) -> float:
        """Average busy fraction across workers."""
        return sum(self.utilisation) / self.num_workers

    def summary(self) -> str:
        """A one-block human-readable summary."""
        lines = [
            f"makespan {self.makespan:.3f}s, "
            f"mean utilisation {self.mean_utilisation:.0%}"
        ]
        for w in range(self.num_workers):
            lines.append(
                f"  worker {w}: {self.tasks_per_worker[w]:4d} tasks, "
                f"busy {self.busy[w]:.3f}s ({self.utilisation[w]:.0%})"
            )
        return "\n".join(lines)


def gantt_ascii(
    events: Sequence[Event], width: int = 72, max_workers: int = 16
) -> str:
    """Render a schedule as an ASCII Gantt chart (one row per worker).

    Busy spans are drawn with ``#``; the number of distinct tasks in a
    cell is not distinguishable at terminal resolution, so alternating
    tasks are drawn ``#``/``=`` to make boundaries visible.

    Args:
        events: recorded ``(worker, root, start, finish)`` tuples.
        width: chart width in characters.
        max_workers: truncate charts beyond this many rows.
    """
    trace = ScheduleTrace.from_events(events)
    makespan = trace.makespan or 1.0
    rows: Dict[int, List[str]] = {
        w: [" "] * width for w in range(min(trace.num_workers, max_workers))
    }
    fills = "#="
    counters = {w: 0 for w in rows}
    for w, _root, start, finish in sorted(events, key=lambda e: e[2]):
        if w not in rows:
            continue
        lo = int(start / makespan * (width - 1))
        hi = max(lo + 1, int(finish / makespan * (width - 1)) + 1)
        mark = fills[counters[w] % 2]
        counters[w] += 1
        for col in range(lo, min(hi, width)):
            rows[w][col] = mark
    lines = [f"0{' ' * (width - 10)}{makespan:9.3f}s"]
    for w in sorted(rows):
        lines.append(f"w{w:<2}|{''.join(rows[w])}|")
    if trace.num_workers > max_workers:
        lines.append(f"... ({trace.num_workers - max_workers} more workers)")
    return "\n".join(lines)
