"""Derived metrics for simulated runs: speedups and time breakdowns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.types import ParallelRunResult

__all__ = ["speedup_table", "SpeedupRow", "time_breakdown"]


@dataclass(frozen=True)
class SpeedupRow:
    """One dataset row of a Table-3/4/5-style speedup table.

    Attributes:
        name: dataset name.
        baseline_seconds: the 1-worker reference indexing time.
        seconds: indexing time per worker count, aligned with ``workers``.
        speedups: ``baseline_seconds / seconds`` per worker count.
        label_sizes: average label size (LN) per worker count.
        workers: the worker counts the other lists are aligned to.
    """

    name: str
    baseline_seconds: float
    workers: List[int]
    seconds: List[float]
    speedups: List[float]
    label_sizes: List[float]


def speedup_table(
    name: str,
    workers: Sequence[int],
    results: Sequence[ParallelRunResult],
) -> SpeedupRow:
    """Assemble one speedup row from per-worker-count run results.

    The first entry of *workers*/*results* is the baseline (typically 1).

    Raises:
        SimulationError: on length mismatch or an empty result list.
    """
    if len(workers) != len(results) or not results:
        raise SimulationError("workers and results must align and be non-empty")
    baseline = results[0].makespan
    if baseline <= 0:
        raise SimulationError("baseline makespan must be positive")
    seconds = [r.makespan for r in results]
    return SpeedupRow(
        name=name,
        baseline_seconds=baseline,
        workers=list(workers),
        seconds=seconds,
        speedups=[baseline / s if s > 0 else float("inf") for s in seconds],
        label_sizes=[r.index_stats.avg_label_size for r in results],
    )


def time_breakdown(result: ParallelRunResult) -> Dict[str, float]:
    """Split a run into computation vs. communication shares.

    Returns:
        dict with ``makespan``, ``computation``, ``communication`` and
        ``communication_fraction`` (of makespan; 0 when makespan is 0).
    """
    frac = (
        result.communication_time / result.makespan
        if result.makespan > 0
        else 0.0
    )
    return {
        "makespan": result.makespan,
        "computation": result.computation_time,
        "communication": result.communication_time,
        "communication_fraction": frac,
    }
