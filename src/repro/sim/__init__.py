"""Deterministic discrete-event simulation of parallel ParaPLL execution.

This package is the substitute for the paper's 12-core Xeon and
6-node cluster (see DESIGN.md §2): the host running this reproduction
has a single CPU core and a GIL, so wall-clock parallel speedups are
physically unobservable.  Instead, the simulator

1. executes the *real* pruned-Dijkstra searches (the same code the
   serial builder uses) with the label visibility each virtual worker
   would actually have had under the chosen schedule, and
2. charges each search its measured operation counts through a
   calibrated linear cost model, scheduling tasks onto virtual workers
   to obtain a makespan.

Nothing about the headline quantities — speedup curves, label-size
growth with parallelism, static-vs-dynamic gaps, the synchronisation
frequency tradeoff — is hard-coded; they all emerge from the schedule
and the pruning dynamics.
"""

from repro.sim.costmodel import CostModel, calibrate_cost_model
from repro.sim.executor import simulate_intra_node
from repro.sim.metrics import speedup_table

__all__ = [
    "CostModel",
    "calibrate_cost_model",
    "simulate_intra_node",
    "speedup_table",
]
