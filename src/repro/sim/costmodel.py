"""Linear operation-count cost model for simulated execution time.

A pruned-Dijkstra search reports its operation counters in a
:class:`~repro.types.SearchStats`; the cost model maps those to
abstract *work units* and, after calibration against one measured
serial build, to seconds.  Only the *relative* weights matter for
speedup shapes; calibration fixes the absolute scale so simulated
"IT(s)" columns are comparable with the measured serial column.

The default weights approximate the relative costs of the operations in
the C++ implementation the paper used (heap operations carry the
``log n`` factor explicitly, as in the paper's complexity analysis
O(w m log^2 n + w^2 n log^2 n)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

from repro.errors import SimulationError
from repro.types import SearchStats

__all__ = ["CostModel", "calibrate_cost_model"]


@dataclass(frozen=True)
class CostModel:
    """Weights of the linear cost model, in work units per operation.

    Attributes:
        per_heap_op: cost of one push or pop, multiplied by
            ``log2(max(n, 2))`` of the indexed graph.
        per_relaxation: cost of scanning one incident edge.
        per_scan: cost of reading one label entry in a pruning query.
        per_settle: fixed cost of dequeuing and prune-testing a vertex.
        per_label_commit: cost of appending one label entry while
            holding the shared commit lock (drives contention for small
            graphs / many threads).
        task_overhead: fixed units per task grab (queue + dispatch).
        seconds_per_unit: calibration constant mapping units to seconds.
        n: vertex count the log factor is evaluated at.
    """

    per_heap_op: float = 1.0
    per_relaxation: float = 0.7
    per_scan: float = 0.45
    per_settle: float = 1.0
    per_label_commit: float = 1.2
    task_overhead: float = 25.0
    seconds_per_unit: float = 1.0
    n: int = 2

    def search_units(self, stats: SearchStats) -> float:
        """Work units of one root search, excluding commit and overhead."""
        log_n = math.log2(max(self.n, 2))
        return (
            self.per_heap_op * (stats.heap_pushes + stats.heap_pops) * log_n
            + self.per_relaxation * stats.relaxations
            + self.per_scan * stats.query_entries_scanned
            + self.per_settle * stats.settled
        )

    def commit_units(self, labels_added: int) -> float:
        """Work units of committing one delta under the shared lock."""
        return self.per_label_commit * labels_added

    def task_units(self, stats: SearchStats) -> float:
        """Total per-task units: overhead + search + commit."""
        return (
            self.task_overhead
            + self.search_units(stats)
            + self.commit_units(stats.labels_added)
        )

    def seconds(self, units: float) -> float:
        """Convert work units to simulated seconds."""
        return units * self.seconds_per_unit

    def for_graph(self, n: int) -> "CostModel":
        """This model with the heap log-factor evaluated at *n* vertices."""
        if n < 0:
            raise SimulationError("n must be non-negative")
        return replace(self, n=max(n, 2))

    def calibrated(self, seconds_per_unit: float) -> "CostModel":
        """This model with a new unit-to-seconds constant."""
        if seconds_per_unit <= 0:
            raise SimulationError("seconds_per_unit must be positive")
        return replace(self, seconds_per_unit=seconds_per_unit)


def calibrate_cost_model(
    per_root: Iterable[SearchStats],
    measured_seconds: float,
    n: int,
    base: CostModel | None = None,
) -> CostModel:
    """Fit ``seconds_per_unit`` so a serial run's units equal its wall time.

    Args:
        per_root: the serial build's per-root statistics.
        measured_seconds: the serial build's measured wall-clock seconds.
        n: vertex count of the graph (for the heap log factor).
        base: weight set to calibrate (defaults to :class:`CostModel`).

    Returns:
        A calibrated :class:`CostModel` bound to *n*.

    Raises:
        SimulationError: if the run has no work or non-positive time.
    """
    if measured_seconds <= 0:
        raise SimulationError("measured_seconds must be positive")
    model = (base or CostModel()).for_graph(n)
    total_units = sum(model.task_units(s) for s in per_root)
    if total_units <= 0:
        raise SimulationError("cannot calibrate against an empty run")
    return model.calibrated(measured_seconds / total_units)
