"""Directed-graph support (extension beyond the paper).

The paper treats undirected graphs; many of its motivating networks
(web graphs, trust networks) are really directed.  2-hop covers extend
naturally: every vertex keeps an *out-label* (hubs it can reach) and an
*in-label* (hubs that reach it); a query meets an out-hub of the source
with an in-hub of the target.  Indexing runs a pruned *forward* and a
pruned *backward* Dijkstra per root.

* :class:`~repro.digraph.graph.DiCSRGraph` — immutable directed CSR
  (out- and in-adjacency), with :class:`~repro.digraph.graph.
  DiGraphBuilder`.
* :mod:`repro.digraph.dijkstra` — forward/backward Dijkstra baselines.
* :class:`~repro.digraph.pll.DirectedPLLIndex` — serial directed PLL.
"""

from repro.digraph.dijkstra import dijkstra_backward, dijkstra_forward
from repro.digraph.graph import DiCSRGraph, DiGraphBuilder
from repro.digraph.pll import DirectedPLLIndex

__all__ = [
    "DiCSRGraph",
    "DiGraphBuilder",
    "dijkstra_forward",
    "dijkstra_backward",
    "DirectedPLLIndex",
]
