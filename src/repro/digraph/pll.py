"""Directed pruned landmark labeling.

Per root *r* (in importance order):

* a pruned **forward** Dijkstra adds ``(rank(r), d(r, v))`` to the
  *in-label* of every kept vertex v (hubs that reach v);
* a pruned **backward** Dijkstra adds ``(rank(r), d(v, r))`` to the
  *out-label* of every kept v (hubs v reaches).

The forward search from r prunes vertex v when
``QUERY(r, v) <= d`` already holds over committed labels, where
``QUERY(s, t) = min over h in OUT(s) ∩ IN(t) of d(s,h) + d(h,t)`` —
and symmetrically for the backward search.  The correctness argument is
the directed analogue of the paper's Proposition 1.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.labels import LabelStore
from repro.digraph.graph import DiCSRGraph
from repro.errors import GraphError, OrderingError
from repro.types import INF, IndexStats

__all__ = ["DirectedPLLIndex"]


def _degree_order(graph: DiCSRGraph) -> np.ndarray:
    score = graph.out_degrees() + graph.in_degrees()
    return np.argsort(-score, kind="stable").astype(np.int64)


class DirectedPLLIndex:
    """A directed 2-hop-cover index: out-labels and in-labels.

    Build with :meth:`build`; query with :meth:`distance`.

    Args:
        graph: the directed graph to index.
        order: importance order (defaults to total-degree descending).
    """

    def __init__(
        self, graph: DiCSRGraph, order: Optional[Sequence[int]] = None
    ) -> None:
        self.graph = graph
        n = graph.num_vertices
        if order is None:
            order = _degree_order(graph)
        order = np.asarray(order, dtype=np.int64)
        if len(order) != n or not np.array_equal(
            np.sort(order), np.arange(n)
        ):
            raise OrderingError("order must be a permutation of 0..n-1")
        self.order = order
        #: OUT(v): hubs v reaches, as (rank, d(v, hub)).
        self.out_labels = LabelStore(n)
        #: IN(v): hubs reaching v, as (rank, d(hub, v)).
        self.in_labels = LabelStore(n)
        self.stats: Optional[IndexStats] = None
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> IndexStats:
        """Index every root with a pruned forward + backward search."""
        t0 = time.perf_counter()
        n = self.graph.num_vertices
        out_adj = self.graph.out_adjacency()
        in_adj = self.graph.in_adjacency()
        dist: List[float] = [INF] * n
        tmp: List[float] = [INF] * n

        for rank, root in enumerate(self.order):
            root = int(root)
            # Forward: prune via QUERY(root, v) = OUT(root) x IN(v);
            # preload tmp with OUT(root) (+ the root's self-hub).
            self._pruned_search(
                root, rank, out_adj, self.out_labels, self.in_labels,
                dist, tmp,
            )
            # Backward: prune via QUERY(v, root) = OUT(v) x IN(root).
            self._pruned_search(
                root, rank, in_adj, self.in_labels, self.out_labels,
                dist, tmp,
            )
        self.out_labels.finalize()
        self.in_labels.finalize()
        elapsed = time.perf_counter() - t0
        entries = (
            self.out_labels.total_entries + self.in_labels.total_entries
        )
        sizes = [
            self.out_labels.label_size(v) + self.in_labels.label_size(v)
            for v in range(n)
        ]
        self.stats = IndexStats.from_sizes(sizes, elapsed)
        assert self.stats.total_entries == entries
        self._built = True
        return self.stats

    def _pruned_search(
        self,
        root: int,
        root_rank: int,
        adj: List[List[Tuple[int, float]]],
        source_side: LabelStore,
        target_side: LabelStore,
        dist: List[float],
        tmp: List[float],
    ) -> None:
        """One pruned Dijkstra; commits labels into *target_side*.

        ``source_side`` holds the root-side labels joined against each
        settled vertex's ``target_side`` label in the prune test.
        """
        touched_tmp: List[int] = []
        hubs = source_side.hubs_of(root)
        dists = source_side.dists_of(root)
        for h, d in zip(hubs, dists):
            if d < tmp[h]:
                tmp[h] = d
            touched_tmp.append(h)
        if 0.0 < tmp[root_rank]:
            tmp[root_rank] = 0.0
        touched_tmp.append(root_rank)

        heappush = heapq.heappush
        heappop = heapq.heappop
        hubs_of = target_side.hubs_of
        dists_of = target_side.dists_of
        touched_dist: List[int] = [root]
        dist[root] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, root)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            q = INF
            for h_, d_ in zip(hubs_of(u), dists_of(u)):
                total = tmp[h_] + d_
                if total < q:
                    q = total
            if q <= d:
                continue
            target_side.add(u, root_rank, d)
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    if dist[v] == INF:
                        touched_dist.append(v)
                    dist[v] = nd
                    heappush(heap, (nd, v))
        for v in touched_dist:
            dist[v] = INF
        for h in touched_tmp:
            tmp[h] = INF

    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact directed distance from *s* to *t*.

        Raises:
            GraphError: before :meth:`build` or on bad vertices.
        """
        if not self._built:
            raise GraphError("DirectedPLLIndex.build() first")
        self.graph._check_vertex(s)
        self.graph._check_vertex(t)
        if s == t:
            return 0.0
        # Merge join OUT(s) with IN(t) — reuse the undirected kernel by
        # joining the two finalized stores directly.
        hs = self.out_labels.finalized_hubs(s)
        ds = self.out_labels.finalized_dists(s)
        ht = self.in_labels.finalized_hubs(t)
        dt = self.in_labels.finalized_dists(t)
        i = j = 0
        best = INF
        while i < len(hs) and j < len(ht):
            a, b = hs[i], ht[j]
            if a == b:
                total = ds[i] + dt[j]
                if total < best:
                    best = total
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return float(best)

    def verify_against_dijkstra(self, sources: Sequence[int]) -> None:
        """Assert exactness from the given sources (tests/tools)."""
        from repro.core.paths import isclose_distance
        from repro.digraph.dijkstra import dijkstra_forward

        for s in sources:
            truth = dijkstra_forward(self.graph, int(s))
            for t in range(self.graph.num_vertices):
                got = self.distance(int(s), t)
                assert isclose_distance(got, truth[t]), (s, t, got, truth[t])

    def avg_label_size(self) -> float:
        """Mean (out + in) entries per vertex."""
        return (
            self.out_labels.total_entries + self.in_labels.total_entries
        ) / max(1, self.graph.num_vertices)
