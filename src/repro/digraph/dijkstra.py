"""Forward and backward Dijkstra on directed graphs (ground truth)."""

from __future__ import annotations

import heapq
from typing import List

from repro.digraph.graph import DiCSRGraph
from repro.types import INF

__all__ = ["dijkstra_forward", "dijkstra_backward"]


def _dijkstra(adj: List[List[tuple]], n: int, source: int) -> List[float]:
    dist: List[float] = [INF] * n
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def dijkstra_forward(graph: DiCSRGraph, source: int) -> List[float]:
    """Distances *from* *source* along arc directions."""
    graph._check_vertex(source)
    return _dijkstra(graph.out_adjacency(), graph.num_vertices, source)


def dijkstra_backward(graph: DiCSRGraph, target: int) -> List[float]:
    """Distances from every vertex *to* *target* (reverse-arc search)."""
    graph._check_vertex(target)
    return _dijkstra(graph.in_adjacency(), graph.num_vertices, target)
