"""Directed CSR graph: out- and in-adjacency in one immutable object."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.types import INF

__all__ = ["DiCSRGraph", "DiGraphBuilder"]


class DiCSRGraph:
    """An immutable directed weighted graph.

    Stores both orientations: ``out_*`` arrays index successors of each
    vertex, ``in_*`` arrays index predecessors (needed by backward
    searches).  Construct via :class:`DiGraphBuilder`.
    """

    __slots__ = (
        "out_indptr", "out_indices", "out_weights",
        "in_indptr", "in_indices", "in_weights",
        "name", "_out_adj", "_in_adj",
    )

    def __init__(
        self,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_weights: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_weights: np.ndarray,
        name: str = "digraph",
    ) -> None:
        for indptr, indices, weights, side in (
            (out_indptr, out_indices, out_weights, "out"),
            (in_indptr, in_indices, in_weights, "in"),
        ):
            if indptr[0] != 0 or indptr[-1] != len(indices):
                raise GraphError(f"{side}-indptr inconsistent with indices")
            if len(indices) != len(weights):
                raise GraphError(f"{side} indices/weights length mismatch")
            if len(weights) and (
                not np.all(np.isfinite(weights)) or weights.min() <= 0
            ):
                raise GraphError(f"{side} weights must be positive finite")
        if len(out_indptr) != len(in_indptr):
            raise GraphError("out/in vertex counts differ")
        if len(out_indices) != len(in_indices):
            raise GraphError("out/in arc counts differ")
        self.out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self.out_indices = np.ascontiguousarray(out_indices, dtype=np.int32)
        self.out_weights = np.ascontiguousarray(out_weights, dtype=np.float64)
        self.in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self.in_indices = np.ascontiguousarray(in_indices, dtype=np.int32)
        self.in_weights = np.ascontiguousarray(in_weights, dtype=np.float64)
        self.name = name
        self._out_adj: Optional[List[List[Tuple[int, float]]]] = None
        self._in_adj: Optional[List[List[Tuple[int, float]]]] = None

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.out_indptr) - 1

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return len(self.out_indices)

    def arcs(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate all arcs as ``(u, v, w)``."""
        for u in range(self.num_vertices):
            lo, hi = self.out_indptr[u], self.out_indptr[u + 1]
            for k in range(lo, hi):
                yield u, int(self.out_indices[k]), float(self.out_weights[k])

    def out_adjacency(self) -> List[List[Tuple[int, float]]]:
        """Cached successor lists (``(v, w)`` tuples)."""
        if self._out_adj is None:
            self._out_adj = self._build_adj(
                self.out_indptr, self.out_indices, self.out_weights
            )
        return self._out_adj

    def in_adjacency(self) -> List[List[Tuple[int, float]]]:
        """Cached predecessor lists."""
        if self._in_adj is None:
            self._in_adj = self._build_adj(
                self.in_indptr, self.in_indices, self.in_weights
            )
        return self._in_adj

    def _build_adj(self, indptr, indices, weights):
        nbr = indices.tolist()
        wts = weights.tolist()
        return [
            list(zip(nbr[indptr[u]: indptr[u + 1]],
                     wts[indptr[u]: indptr[u + 1]]))
            for u in range(self.num_vertices)
        ]

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < self.num_vertices:
            raise GraphError(f"vertex {u} out of range [0, {self.num_vertices})")

    def out_degrees(self) -> np.ndarray:
        """Per-vertex out-degree."""
        return np.diff(self.out_indptr)

    def in_degrees(self) -> np.ndarray:
        """Per-vertex in-degree."""
        return np.diff(self.in_indptr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiCSRGraph(name={self.name!r}, n={self.num_vertices}, "
            f"arcs={self.num_arcs})"
        )


class DiGraphBuilder:
    """Accumulates directed arcs and emits a :class:`DiCSRGraph`.

    Args:
        num_vertices: fixed vertex count, or grow-to-fit when ``None``.
        on_duplicate: ``"min"`` (default) keeps the lightest parallel
            arc; ``"error"`` raises.
    """

    def __init__(
        self, num_vertices: Optional[int] = None, on_duplicate: str = "min"
    ) -> None:
        if on_duplicate not in ("min", "error"):
            raise GraphError("on_duplicate must be 'min' or 'error'")
        self._n = num_vertices or 0
        self._explicit = num_vertices is not None
        self._arcs: Dict[Tuple[int, int], float] = {}
        self._dup = on_duplicate

    def add_arc(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add one directed arc ``u -> v``."""
        u, v, weight = int(u), int(v), float(weight)
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in arc ({u}, {v})")
        if self._explicit and (u >= self._n or v >= self._n):
            raise GraphError(f"arc ({u}, {v}) out of range for n={self._n}")
        if not (weight > 0) or weight == INF or weight != weight:
            raise GraphError(f"arc weight must be positive finite: {weight}")
        if u == v:
            self._n = max(self._n, u + 1) if not self._explicit else self._n
            return  # drop self loops
        if not self._explicit:
            self._n = max(self._n, u + 1, v + 1)
        key = (u, v)
        old = self._arcs.get(key)
        if old is None:
            self._arcs[key] = weight
        elif self._dup == "min":
            self._arcs[key] = min(old, weight)
        else:
            raise GraphError(f"duplicate arc {key}")

    def add_arcs(self, arcs: Iterable[Tuple[int, int, float]]) -> None:
        """Add many ``(u, v, w)`` arcs."""
        for u, v, w in arcs:
            self.add_arc(u, v, w)

    def build(self, name: str = "digraph") -> DiCSRGraph:
        """Emit the immutable directed graph."""
        n = self._n
        m = len(self._arcs)
        us = np.fromiter((u for u, _v in self._arcs), dtype=np.int64, count=m)
        vs = np.fromiter((v for _u, v in self._arcs), dtype=np.int64, count=m)
        ws = np.fromiter(self._arcs.values(), dtype=np.float64, count=m)

        def pack(src, dst, wts):
            order = np.lexsort((dst, src))
            src, dst, wts = src[order], dst[order], wts[order]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.add.at(indptr, src + 1, 1)
            np.cumsum(indptr, out=indptr)
            return indptr, dst.astype(np.int32), wts

        out_indptr, out_indices, out_weights = pack(us, vs, ws)
        in_indptr, in_indices, in_weights = pack(vs, us, ws)
        return DiCSRGraph(
            out_indptr, out_indices, out_weights,
            in_indptr, in_indices, in_weights,
            name=name,
        )
