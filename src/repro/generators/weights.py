"""Edge-weight distributions for synthetic graphs.

The paper's graphs are "undirected, weighted"; the exact weight model is
not specified, so we provide the standard choices and make every
generator accept one by name.  The default (``"uniform-int"``) draws
integer weights in [1, 10] — typical for road-network and AS-latency
style evaluations and friendly to exact float comparison.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["make_weight_sampler", "WEIGHT_DISTRIBUTIONS"]

#: A sampler maps (rng, count) to a positive float64 array.
WeightSampler = Callable[[np.random.Generator, int], np.ndarray]


def _uniform_int(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.integers(1, 11, size=count).astype(np.float64)


def _uniform_float(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.uniform(0.1, 10.0, size=count)


def _exponential(rng: np.random.Generator, count: int) -> np.ndarray:
    # Shifted to keep weights strictly positive and bounded away from 0.
    return rng.exponential(scale=2.0, size=count) + 0.05


def _unit(rng: np.random.Generator, count: int) -> np.ndarray:
    return np.ones(count, dtype=np.float64)


def _lognormal(rng: np.random.Generator, count: int) -> np.ndarray:
    return rng.lognormal(mean=0.5, sigma=0.75, size=count) + 0.01


#: Registry of named weight distributions.
WEIGHT_DISTRIBUTIONS: Dict[str, WeightSampler] = {
    "uniform-int": _uniform_int,
    "uniform-float": _uniform_float,
    "exponential": _exponential,
    "lognormal": _lognormal,
    "unit": _unit,
}


def make_weight_sampler(name: str = "uniform-int") -> WeightSampler:
    """Look up a weight sampler by name.

    Raises:
        KeyError: for unknown names, listing the valid ones.
    """
    try:
        return WEIGHT_DISTRIBUTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown weight distribution {name!r}; "
            f"choose from {sorted(WEIGHT_DISTRIBUTIONS)}"
        ) from None
