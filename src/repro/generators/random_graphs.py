"""Uniform random graphs (G(n, m) and G(n, p)) for tests and baselines."""

from __future__ import annotations

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["gnm_random_graph", "gnp_random_graph"]


def gnm_random_graph(
    n: int,
    m: int,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    connect: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """Erdős–Rényi G(n, m): *m* distinct edges sampled uniformly.

    Args:
        n: vertex count (before largest-component extraction).
        m: undirected edge count; capped at ``n (n - 1) / 2``.
        seed: RNG seed.
        weight_dist: weight distribution name.
        connect: keep only the largest connected component.
        name: graph name (defaults to ``gnm-<n>-<m>``).
    """
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    max_m = n * (n - 1) // 2
    m = min(m, max_m)
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < m:
        batch = rng.integers(0, n, size=(max(64, m - len(edges)), 2))
        for u, v in batch:
            if u == v:
                continue
            key = (int(min(u, v)), int(max(u, v)))
            edges.add(key)
            if len(edges) >= m:
                break
    return assemble(
        edges, n, rng, weight_dist, name or f"gnm-{n}-{m}", connect=connect
    )


def gnp_random_graph(
    n: int,
    p: float,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    connect: bool = True,
    name: str | None = None,
) -> CSRGraph:
    """Erdős–Rényi G(n, p): each pair independently an edge with prob. *p*."""
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges = []
    if n > 1 and p > 0:
        iu, iv = np.triu_indices(n, k=1)
        mask = rng.random(len(iu)) < p
        edges = list(zip(iu[mask].tolist(), iv[mask].tolist()))
    return assemble(
        edges, n, rng, weight_dist, name or f"gnp-{n}-{p}", connect=connect
    )
