"""R-MAT (recursive matrix) graph generator.

The generator behind many SNAP-style synthetic benchmarks (Graph500
uses it): each edge picks its endpoints by recursively descending into
one of the four quadrants of the adjacency matrix with probabilities
``(a, b, c, d)``.  Skewed parameters (a >> d) produce the heavy-tailed,
community-ish structure of real web/social graphs — an alternative
stand-in family to Barabási–Albert/Chung–Lu for robustness checks.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Generate an R-MAT graph with ``2^scale`` vertices.

    Args:
        scale: log2 of the vertex count (Graph500 convention).
        edge_factor: edges per vertex to attempt (duplicates collapse).
        a: probability of the top-left quadrant.
        b: top-right quadrant probability.
        c: bottom-left quadrant probability (``d = 1 - a - b - c``).
        seed: RNG seed.
        weight_dist: weight distribution name.
        name: graph name.

    Returns:
        The largest connected component of the generated graph.

    Raises:
        ValueError: on invalid scale or probabilities.
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError("quadrant probabilities must form a distribution")
    n = 1 << scale
    m = n * edge_factor
    rng = np.random.default_rng(seed)
    # Vectorised descent: one random draw per (edge, level).
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrants: [0,a) -> (0,0); [a,a+b) -> (0,1);
        # [a+b,a+b+c) -> (1,0); rest -> (1,1).
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        bit = 1 << (scale - 1 - level)
        u += down * bit
        v += right * bit
    edges: List[Tuple[int, int]] = [
        (int(x), int(y)) for x, y in zip(u, v) if x != y
    ]
    return assemble(
        edges, n, rng, weight_dist, name or f"rmat-{scale}", connect=True
    )
