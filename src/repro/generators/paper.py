"""Stand-ins for the paper's Table-2 datasets.

The paper evaluates on 11 real SNAP/CAIDA/TIGER graphs.  Those files are
not redistributable (and this environment has no network), so each
dataset is replaced by a seeded synthetic graph from the *same family*:

* power-law graphs (Barabási–Albert / Chung–Lu) for the social, P2P,
  collaboration and email networks,
* perturbed lattices for the three USA road networks,
* core–periphery topologies for the two AS graphs,

with attachment parameters chosen to match the paper's m/n density.
Because pure-Python pruned Dijkstra costs roughly three orders of
magnitude more per operation than the paper's C++, the default sizes
are scaled down (see ``default_n`` per dataset; EXPERIMENTS.md records
paper-scale vs. run-scale).  Pass ``scale`` to :func:`load_dataset` to
grow or shrink all stand-ins proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.generators.asnet import as_topology
from repro.generators.powerlaw import barabasi_albert, chung_lu, powerlaw_degrees
from repro.generators.road import grid_road_network
from repro.generators.social import community_graph
from repro.graph.csr import CSRGraph
from repro.types import DatasetSpec

__all__ = ["DATASETS", "dataset_names", "load_dataset", "DatasetConfig"]


@dataclass(frozen=True)
class DatasetConfig:
    """Generator recipe for one Table-2 stand-in.

    Attributes:
        spec: the paper-reported metadata.
        default_n: stand-in vertex count at ``scale=1.0``.
        make: generator function ``(n, seed) -> CSRGraph``.
    """

    spec: DatasetSpec
    default_n: int
    make: Callable[[int, int], CSRGraph]


def _ba(m_attach: int) -> Callable[[int, int], CSRGraph]:
    def make(n: int, seed: int) -> CSRGraph:
        return barabasi_albert(n, min(m_attach, max(1, n - 1)), seed=seed)

    return make


def _cl(exponent: float, min_deg: int, max_deg_frac: float) -> Callable[[int, int], CSRGraph]:
    def make(n: int, seed: int) -> CSRGraph:
        degrees = powerlaw_degrees(
            n, exponent, min_deg, max(min_deg + 1, int(n * max_deg_frac)), seed=seed
        )
        return chung_lu(degrees, seed=seed)

    return make


def _road(removal: float, diagonal: float) -> Callable[[int, int], CSRGraph]:
    def make(n: int, seed: int) -> CSRGraph:
        side = max(2, int(round(np.sqrt(n))))
        return grid_road_network(
            side, side, removal_prob=removal, diagonal_prob=diagonal, seed=seed
        )

    return make


def _community(blocks: int, p_in: float, p_out: float) -> Callable[[int, int], CSRGraph]:
    def make(n: int, seed: int) -> CSRGraph:
        size = max(2, n // blocks)
        return community_graph(blocks, size, p_in=p_in, p_out=p_out, seed=seed)

    return make


def _asnet(core: float, mid: float) -> Callable[[int, int], CSRGraph]:
    def make(n: int, seed: int) -> CSRGraph:
        return as_topology(max(10, n), core_fraction=core, mid_fraction=mid, seed=seed)

    return make


#: Registry keyed by the paper's dataset names, in Table-2 order.
DATASETS: Dict[str, DatasetConfig] = {
    "Wiki-Vote": DatasetConfig(
        DatasetSpec("Wiki-Vote", 7_115, 201_524, "Social", "powerlaw-dense"),
        default_n=400,
        make=_ba(28),
    ),
    "Gnutella": DatasetConfig(
        DatasetSpec("Gnutella", 10_876, 79_988, "Internet P2P", "powerlaw"),
        default_n=600,
        make=_cl(2.3, 3, 0.05),
    ),
    "CondMat": DatasetConfig(
        DatasetSpec("CondMat", 23_133, 186_936, "Collaboration", "community"),
        default_n=800,
        make=_community(20, 0.35, 0.0015),
    ),
    "DE-USA": DatasetConfig(
        DatasetSpec("DE-USA", 49_109, 121_024, "Road network", "road"),
        default_n=1200,
        make=_road(0.05, 0.12),
    ),
    "RI-USA": DatasetConfig(
        DatasetSpec("RI-USA", 53_658, 137_579, "Road network", "road"),
        default_n=1300,
        make=_road(0.04, 0.14),
    ),
    "AS-Relation": DatasetConfig(
        DatasetSpec("AS-Relation", 57_272, 983_610, "Autonomous Systems", "powerlaw-dense"),
        default_n=1300,
        make=_ba(17),
    ),
    "HI-USA": DatasetConfig(
        DatasetSpec("HI-USA", 64_892, 152_450, "Road network", "road"),
        default_n=1400,
        make=_road(0.06, 0.10),
    ),
    "Epinions": DatasetConfig(
        DatasetSpec("Epinions", 75_879, 811_480, "Social", "powerlaw-dense"),
        default_n=1500,
        make=_ba(11),
    ),
    "AskUbuntu": DatasetConfig(
        DatasetSpec("AskUbuntu", 137_517, 508_415, "Social", "powerlaw"),
        default_n=1600,
        make=_cl(2.1, 2, 0.08),
    ),
    "Skitter": DatasetConfig(
        DatasetSpec("Skitter", 192_244, 1_218_132, "Autonomous Systems", "powerlaw"),
        default_n=1800,
        make=_ba(6),
    ),
    "Euall": DatasetConfig(
        DatasetSpec("Euall", 265_214, 730_051, "Email Communication", "powerlaw"),
        default_n=2000,
        make=_cl(2.0, 1, 0.10),
    ),
}


def dataset_names() -> List[str]:
    """The 11 dataset names in Table-2 order."""
    return list(DATASETS)


def load_dataset(name: str, scale: float = 1.0, seed: int = 42) -> CSRGraph:
    """Generate the stand-in for one Table-2 dataset.

    Args:
        name: a key of :data:`DATASETS` (paper dataset name).
        scale: multiplier on the dataset's ``default_n``; e.g. 0.25 for
            quick tests, 4.0 for a bigger run.
        seed: RNG seed (the default matches the benchmark harness).

    Returns:
        A connected weighted graph named after the dataset.

    Raises:
        KeyError: for unknown dataset names, listing the valid ones.
    """
    try:
        config = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    n = max(10, int(round(config.default_n * scale)))
    graph = config.make(n, seed)
    return graph.with_name(name)
