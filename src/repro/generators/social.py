"""Small-world and community-structured social-network generators."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["watts_strogatz", "community_graph"]


def watts_strogatz(
    n: int,
    k: int,
    rewire_prob: float,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Watts–Strogatz small world: ring lattice with random rewiring.

    Args:
        n: vertex count.
        k: each vertex connects to its *k* nearest ring neighbours
            (rounded down to even).
        rewire_prob: probability of rewiring each lattice edge's far
            endpoint to a uniform random vertex.
        seed: RNG seed.
        weight_dist: weight distribution name.
        name: graph name.
    """
    if n < 3:
        raise ValueError("n must be >= 3")
    k = max(2, (k // 2) * 2)
    if k >= n:
        raise ValueError("k must be < n")
    if not 0 <= rewire_prob <= 1:
        raise ValueError("rewire_prob out of range")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for offset in range(1, k // 2 + 1):
            v = (u + offset) % n
            if rng.random() < rewire_prob:
                w = int(rng.integers(0, n))
                # Avoid self loop; duplicates are handled by the builder.
                if w != u:
                    v = w
            edges.append((u, v))
    return assemble(
        edges, n, rng, weight_dist, name or f"ws-{n}-{k}", connect=True
    )


def community_graph(
    communities: int,
    size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Planted-partition graph: dense blocks, sparse inter-block edges.

    Models trust/collaboration networks (Epinions, CondMat stand-ins).

    Args:
        communities: number of equally sized blocks.
        size: vertices per block.
        p_in: intra-block edge probability.
        p_out: inter-block edge probability (applied per vertex pair to
            a sampled subset for efficiency).
        seed: RNG seed.
        weight_dist: weight distribution name.
        name: graph name.
    """
    if communities < 1 or size < 1:
        raise ValueError("communities and size must be >= 1")
    if not (0 <= p_in <= 1 and 0 <= p_out <= 1):
        raise ValueError("probabilities out of range")
    n = communities * size
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []
    # Intra-community: dense G(size, p_in) per block.
    for b in range(communities):
        base = b * size
        if size > 1 and p_in > 0:
            iu, iv = np.triu_indices(size, k=1)
            mask = rng.random(len(iu)) < p_in
            for u, v in zip(iu[mask], iv[mask]):
                edges.append((base + int(u), base + int(v)))
    # Inter-community: expected p_out * pairs edges, sampled directly.
    if communities > 1 and p_out > 0:
        cross_pairs = (n * (n - 1)) // 2 - communities * (size * (size - 1)) // 2
        want = rng.poisson(p_out * cross_pairs)
        got = 0
        while got < want:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u != v and u // size != v // size:
                edges.append((min(u, v), max(u, v)))
                got += 1
    return assemble(
        edges,
        n,
        rng,
        weight_dist,
        name or f"community-{communities}x{size}",
        connect=True,
    )
