"""Grid-style road-network generator.

The paper's DE/RI/HI-USA graphs are planar, nearly-grid networks with
low, tightly-bounded degree (Figure 5 shows no power-law tail).  We
model them as a rows × cols lattice with (a) a fraction of edges
removed (rivers, missing links), (b) a sprinkling of diagonal shortcuts
(highways), while keeping the network connected.  Degrees stay in
{1..8}, matching the road-network panels of Figure 5.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["grid_road_network"]


def grid_road_network(
    rows: int,
    cols: int,
    removal_prob: float = 0.1,
    diagonal_prob: float = 0.05,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """A perturbed lattice road network.

    Args:
        rows: lattice rows.
        cols: lattice columns.
        removal_prob: probability of deleting each lattice edge.
        diagonal_prob: probability of adding each diagonal shortcut.
        seed: RNG seed.
        weight_dist: weight distribution name (road "lengths").
        name: graph name.

    Returns:
        The largest connected component of the perturbed lattice
        (typically ≥ 90 % of the grid for ``removal_prob <= 0.2``).
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if not 0 <= removal_prob < 1 or not 0 <= diagonal_prob <= 1:
        raise ValueError("probabilities out of range")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = []

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            u = vid(r, c)
            if c + 1 < cols and rng.random() >= removal_prob:
                edges.append((u, vid(r, c + 1)))
            if r + 1 < rows and rng.random() >= removal_prob:
                edges.append((u, vid(r + 1, c)))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_prob
            ):
                edges.append((u, vid(r + 1, c + 1)))
            if r + 1 < rows and c >= 1 and rng.random() < diagonal_prob:
                edges.append((u, vid(r + 1, c - 1)))

    return assemble(
        edges,
        rows * cols,
        rng,
        weight_dist,
        name or f"road-{rows}x{cols}",
        connect=True,
    )
