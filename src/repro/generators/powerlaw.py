"""Power-law graph generators: Barabási–Albert and Chung–Lu.

The paper's social, P2P, collaboration, email and AS graphs all "obey
the power law degree distribution" (Figure 5); these two generators
cover that family.  Barabási–Albert gives the canonical preferential-
attachment power law; Chung–Lu matches an arbitrary expected-degree
sequence, which we use to tune the n:m ratio per dataset stand-in.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["barabasi_albert", "chung_lu", "powerlaw_degrees"]


def barabasi_albert(
    n: int,
    m_attach: int,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Preferential attachment: each new vertex links to *m_attach* targets.

    Implemented with the standard repeated-endpoint trick: attachment
    targets are drawn uniformly from the endpoint list of existing
    edges, which realises degree-proportional sampling in O(1) per draw.

    Args:
        n: total vertices (must exceed *m_attach*).
        m_attach: edges added per arriving vertex.
        seed: RNG seed.
        weight_dist: weight distribution name.
        name: graph name.
    """
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    if n <= m_attach:
        raise ValueError("n must exceed m_attach")
    rng = np.random.default_rng(seed)
    # Seed clique-ish core: a star over the first m_attach + 1 vertices.
    edges: List[Tuple[int, int]] = []
    endpoints: List[int] = []
    for v in range(1, m_attach + 1):
        edges.append((0, v))
        endpoints.extend((0, v))
    for v in range(m_attach + 1, n):
        # Draw-ordered list + membership set: set *iteration* order is
        # an implementation detail (PC010), draw order is seeded.
        targets: List[int] = []
        seen = set()
        while len(targets) < m_attach:
            t = endpoints[int(rng.integers(0, len(endpoints)))]
            if t not in seen:
                seen.add(t)
                targets.append(t)
        for t in targets:
            edges.append((v, t))
            endpoints.extend((v, t))
    return assemble(
        edges, n, rng, weight_dist, name or f"ba-{n}-{m_attach}", connect=True
    )


def powerlaw_degrees(
    n: int, exponent: float, min_degree: int, max_degree: int, seed: int = 0
) -> np.ndarray:
    """Sample a power-law degree sequence ``P(d) ~ d^-exponent``.

    Returns:
        ``int64`` array of length *n*, clipped to
        ``[min_degree, max_degree]``.
    """
    if exponent <= 1:
        raise ValueError("exponent must exceed 1")
    if not 1 <= min_degree <= max_degree:
        raise ValueError("need 1 <= min_degree <= max_degree")
    rng = np.random.default_rng(seed)
    # Inverse-CDF sampling of a truncated Pareto.
    u = rng.random(n)
    a = 1.0 - exponent
    lo = float(min_degree) ** a
    hi = float(max_degree + 1) ** a
    deg = (lo + u * (hi - lo)) ** (1.0 / a)
    return np.clip(deg.astype(np.int64), min_degree, max_degree)


def chung_lu(
    degrees: np.ndarray,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Chung–Lu model: edge ``{u, v}`` with probability ``d_u d_v / 2m``.

    Uses the efficient "ordered weights" sampling of Miller & Hagberg:
    vertices sorted by descending target degree, with geometric skipping
    within each row — O(n + m) expected time instead of O(n^2).

    Args:
        degrees: expected degree per vertex.
        seed: RNG seed.
        weight_dist: weight distribution name.
        name: graph name.
    """
    w = np.asarray(degrees, dtype=np.float64)
    n = len(w)
    if n == 0:
        return assemble([], 0, np.random.default_rng(seed), weight_dist, name or "cl-0")
    if np.any(w < 0):
        raise ValueError("degrees must be non-negative")
    rng = np.random.default_rng(seed)
    order = np.argsort(-w, kind="stable")
    ws = w[order]
    total = ws.sum()
    edges: List[Tuple[int, int]] = []
    if total > 0:
        for i in range(n - 1):
            wi = ws[i]
            if wi == 0:
                break
            j = i + 1
            p = min(1.0, wi * ws[j] / total)
            while j < n and p > 0:
                if p < 1.0:
                    # Geometric skip over non-edges.
                    r = rng.random()
                    skip = int(np.log(r) / np.log(1.0 - p)) if p < 1.0 else 0
                    j += skip
                if j >= n:
                    break
                q = min(1.0, wi * ws[j] / total)
                if rng.random() < q / p:
                    edges.append((int(order[i]), int(order[j])))
                p = q
                j += 1
    return assemble(edges, n, rng, weight_dist, name or f"cl-{n}", connect=True)
