"""Shared helpers for graph generators."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.generators.weights import make_weight_sampler
from repro.graph.builder import GraphBuilder
from repro.graph.csr import CSRGraph
from repro.graph.ops import largest_connected_component

__all__ = ["assemble"]


def assemble(
    edges: Iterable[Tuple[int, int]],
    num_vertices: int,
    rng: np.random.Generator,
    weight_dist: str,
    name: str,
    connect: bool = True,
) -> CSRGraph:
    """Turn an edge iterable into a weighted, connected CSR graph.

    Args:
        edges: undirected ``(u, v)`` pairs (duplicates/self loops ok).
        num_vertices: vertex count before connectivity extraction.
        rng: the generator's RNG (consumed for weights).
        weight_dist: name of a weight distribution.
        name: graph name.
        connect: extract the largest connected component (default); the
            paper's graphs are connected, and PLL treats components
            independently anyway.
    """
    builder = GraphBuilder(num_vertices=num_vertices)
    builder.add_unweighted_edges(edges)
    unweighted = builder.build(name=name)
    sampler = make_weight_sampler(weight_dist)
    # Draw one weight per undirected edge, then mirror to both arcs.
    m = unweighted.num_edges
    per_edge = sampler(rng, m)
    # Edge k in edges() order (u < v) gets per_edge[k]; rebuild with weights.
    wb = GraphBuilder(num_vertices=unweighted.num_vertices)
    for k, (u, v, _w) in enumerate(unweighted.edges()):
        wb.add_edge(u, v, float(per_edge[k]))
    graph = wb.build(name=name)
    if connect and graph.num_vertices and not graph.is_connected():
        graph, _ = largest_connected_component(graph)
        graph = graph.with_name(name)
    return graph
