"""Autonomous-system-style topology generator (core–periphery).

AS relationship graphs (the paper's AS-Relation and Skitter datasets)
have a small densely-meshed core of transit providers, a middle tier
multi-homed to the core, and a large periphery of stub networks
single- or dual-homed upward.  Degrees are extremely skewed — exactly
the long power-law tails in Figure 5's AS panels.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.generators._common import assemble
from repro.graph.csr import CSRGraph

__all__ = ["as_topology"]


def as_topology(
    n: int,
    core_fraction: float = 0.02,
    mid_fraction: float = 0.18,
    seed: int = 0,
    weight_dist: str = "uniform-int",
    name: str | None = None,
) -> CSRGraph:
    """Three-tier core/mid/stub AS topology.

    Args:
        n: total vertex count (>= 10).
        core_fraction: fraction of vertices in the full-mesh-ish core.
        mid_fraction: fraction in the middle (regional provider) tier.
        seed: RNG seed.
        weight_dist: weight distribution name (link latencies).
        name: graph name.
    """
    if n < 10:
        raise ValueError("n must be >= 10")
    if core_fraction <= 0 or mid_fraction < 0 or core_fraction + mid_fraction >= 1:
        raise ValueError("invalid tier fractions")
    rng = np.random.default_rng(seed)
    n_core = max(3, int(n * core_fraction))
    n_mid = max(3, int(n * mid_fraction))
    n_stub = n - n_core - n_mid
    core = list(range(n_core))
    mid = list(range(n_core, n_core + n_mid))
    stub = list(range(n_core + n_mid, n))

    edges: List[Tuple[int, int]] = []
    # Core: dense mesh (70 % of pairs peer with each other).
    for i in range(n_core):
        for j in range(i + 1, n_core):
            if rng.random() < 0.7:
                edges.append((core[i], core[j]))
    # Ring through the core as a connectivity backstop.
    for i in range(n_core):
        edges.append((core[i], core[(i + 1) % n_core]))
    # Mid tier: 2-4 uplinks into the core, some lateral peering.
    for v in mid:
        uplinks = rng.choice(n_core, size=min(n_core, int(rng.integers(2, 5))), replace=False)
        for u in uplinks:
            edges.append((int(core[u]), v))
        if rng.random() < 0.3 and len(mid) > 1:
            peer = int(rng.choice(mid))
            if peer != v:
                edges.append((min(v, peer), max(v, peer)))
    # Stubs: 1-2 uplinks into the mid tier (degree-proportional-ish:
    # prefer earlier mid vertices, which already carry more stubs).
    for v in stub:
        fanout = 1 if rng.random() < 0.7 else 2
        for _ in range(fanout):
            # Zipf-like preference for low-index providers.
            u = mid[min(n_mid - 1, int(rng.zipf(1.5)) - 1)]
            edges.append((u, v))
    return assemble(
        edges, n, rng, weight_dist, name or f"as-{n}", connect=True
    )
