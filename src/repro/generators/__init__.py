"""Synthetic graph generators.

The paper evaluates on 11 real-world graphs (Table 2); this package
provides seeded synthetic stand-ins for each graph *family* —
power-law social networks, P2P overlays, collaboration networks, grid
road networks, AS topologies and email graphs — plus generic random
graphs for tests.  All generators return connected, weighted, undirected
:class:`~repro.graph.csr.CSRGraph` instances and are deterministic given
a seed.
"""

from repro.generators.asnet import as_topology
from repro.generators.paper import (
    DATASETS,
    dataset_names,
    load_dataset,
)
from repro.generators.powerlaw import barabasi_albert, chung_lu, powerlaw_degrees
from repro.generators.random_graphs import gnm_random_graph, gnp_random_graph
from repro.generators.rmat import rmat_graph
from repro.generators.road import grid_road_network
from repro.generators.social import community_graph, watts_strogatz
from repro.generators.weights import WEIGHT_DISTRIBUTIONS, make_weight_sampler

__all__ = [
    "gnm_random_graph",
    "rmat_graph",
    "gnp_random_graph",
    "barabasi_albert",
    "chung_lu",
    "powerlaw_degrees",
    "grid_road_network",
    "watts_strogatz",
    "community_graph",
    "as_topology",
    "make_weight_sampler",
    "WEIGHT_DISTRIBUTIONS",
    "DATASETS",
    "dataset_names",
    "load_dataset",
]
