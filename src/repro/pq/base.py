"""The priority-queue protocol shared by all implementations.

Items are non-negative integers (vertex ids); keys are floats
(tentative distances).  ``push`` doubles as decrease-key: pushing an
item that is already present with a larger key lowers its key
(addressable heaps) or enqueues a fresher entry (lazy heap).  Pushing
with a key that is *not* smaller than the current one is a no-op.
"""

from __future__ import annotations

from typing import Protocol, Tuple, runtime_checkable

__all__ = ["PriorityQueue"]


@runtime_checkable
class PriorityQueue(Protocol):
    """Minimal min-priority-queue protocol for Dijkstra-style searches."""

    def push(self, item: int, key: float) -> None:
        """Insert *item* with *key*, or decrease its key if already present."""

    def pop_min(self) -> Tuple[float, int]:
        """Remove and return the ``(key, item)`` pair with the smallest key.

        Raises:
            IndexError: if the queue is empty.
        """

    def __len__(self) -> int:
        """Number of live items in the queue."""

    def __bool__(self) -> bool:
        """Whether any live item remains."""
