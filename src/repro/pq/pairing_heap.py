"""Pointer-based pairing heap with O(1) amortised ``decrease_key``.

The pairing heap is the classic "theoretically nice" Dijkstra queue.
Nodes are small ``__slots__`` objects linked in a left-child /
right-sibling representation; ``pop_min`` performs the standard two-pass
pairing of the root's children.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["PairingHeap"]


class _Node:
    __slots__ = ("key", "item", "child", "sibling", "parent")

    def __init__(self, key: float, item: int) -> None:
        self.key = key
        self.item = item
        self.child: Optional[_Node] = None
        self.sibling: Optional[_Node] = None
        self.parent: Optional[_Node] = None


def _link(a: _Node, b: _Node) -> _Node:
    """Make the larger-keyed root a child of the smaller-keyed one."""
    if b.key < a.key:
        a, b = b, a
    b.parent = a
    b.sibling = a.child
    a.child = b
    return a


class PairingHeap:
    """Pairing min-heap over integer items.

    Implements the :class:`~repro.pq.base.PriorityQueue` protocol.
    """

    __slots__ = ("_root", "_nodes")

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._nodes: Dict[int, _Node] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, item: int) -> bool:
        return item in self._nodes

    def key_of(self, item: int) -> float:
        """Current key of *item* (raises ``KeyError`` if absent)."""
        return self._nodes[item].key

    # ------------------------------------------------------------------
    def push(self, item: int, key: float) -> None:
        """Insert *item*, or decrease its key; larger keys are ignored."""
        node = self._nodes.get(item)
        if node is None:
            node = _Node(key, item)
            self._nodes[item] = node
            self._root = node if self._root is None else _link(self._root, node)
        elif key < node.key:
            self._decrease(node, key)

    def pop_min(self) -> Tuple[float, int]:
        """Remove and return the smallest ``(key, item)``."""
        root = self._root
        if root is None:
            raise IndexError("pop from empty heap")
        del self._nodes[root.item]
        self._root = self._merge_pairs(root.child)
        if self._root is not None:
            self._root.parent = None
            self._root.sibling = None
        return root.key, root.item

    def peek(self) -> Tuple[float, int]:
        """The smallest ``(key, item)`` without removing it."""
        if self._root is None:
            raise IndexError("peek into empty heap")
        return self._root.key, self._root.item

    # ------------------------------------------------------------------
    def _decrease(self, node: _Node, key: float) -> None:
        node.key = key
        if node is self._root:
            return
        # Detach node from its parent's child list.
        parent = node.parent
        assert parent is not None
        if parent.child is node:
            parent.child = node.sibling
        else:
            prev = parent.child
            while prev is not None and prev.sibling is not node:
                prev = prev.sibling
            assert prev is not None
            prev.sibling = node.sibling
        node.parent = None
        node.sibling = None
        assert self._root is not None
        self._root = _link(self._root, node)

    @staticmethod
    def _merge_pairs(first: Optional[_Node]) -> Optional[_Node]:
        """Two-pass pairing of a sibling list; iterative to avoid recursion."""
        if first is None:
            return None
        # Pass 1: link siblings pairwise left to right.
        pairs: List[_Node] = []
        node: Optional[_Node] = first
        while node is not None:
            a = node
            b = node.sibling
            node = b.sibling if b is not None else None
            a.sibling = None
            a.parent = None
            if b is not None:
                b.sibling = None
                b.parent = None
                pairs.append(_link(a, b))
            else:
                pairs.append(a)
        # Pass 2: fold right to left.
        result = pairs.pop()
        while pairs:
            result = _link(pairs.pop(), result)
        return result
