"""Priority queues for Dijkstra-family algorithms.

Three interchangeable implementations of the same minimal protocol
(:class:`~repro.pq.base.PriorityQueue`):

* :class:`~repro.pq.binary_heap.AddressableBinaryHeap` — array-based
  binary heap with position tracking and true ``decrease_key``.
* :class:`~repro.pq.pairing_heap.PairingHeap` — pointer-based pairing
  heap with O(1) amortised ``decrease_key``.
* :class:`~repro.pq.simple.LazyHeapPQ` — the stdlib ``heapq`` with lazy
  deletion; no explicit decrease-key, stale entries are skipped on pop.

The paper's Algorithm 1 only needs insert/delete-min (it re-inserts on
relaxation, i.e. the lazy strategy); the addressable heaps exist for the
ablation study of priority-queue choice (DESIGN.md §5).
"""

from repro.pq.base import PriorityQueue
from repro.pq.binary_heap import AddressableBinaryHeap
from repro.pq.pairing_heap import PairingHeap
from repro.pq.simple import LazyHeapPQ

#: Registry of priority-queue implementations by name (used by ablations).
PQ_IMPLEMENTATIONS = {
    "binary": AddressableBinaryHeap,
    "pairing": PairingHeap,
    "lazy": LazyHeapPQ,
}

__all__ = [
    "PriorityQueue",
    "AddressableBinaryHeap",
    "PairingHeap",
    "LazyHeapPQ",
    "PQ_IMPLEMENTATIONS",
]
