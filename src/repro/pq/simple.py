"""Lazy-deletion priority queue over the stdlib ``heapq``.

This is the queue the hot paths actually use: ``heapq`` is implemented
in C, so despite leaving stale entries in the heap it is usually the
fastest option in CPython.  ``push`` records the best-known key per item
in a side dict; ``pop_min`` discards entries whose key is staler than
that record.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

__all__ = ["LazyHeapPQ"]


class LazyHeapPQ:
    """``heapq`` with lazy deletion.

    Implements the :class:`~repro.pq.base.PriorityQueue` protocol.
    ``__len__`` reports *live* items (not stale heap entries), so the
    three implementations are observationally identical.
    """

    __slots__ = ("_heap", "_best")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int]] = []
        self._best: Dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._best)

    def __bool__(self) -> bool:
        return bool(self._best)

    def __contains__(self, item: int) -> bool:
        return item in self._best

    def key_of(self, item: int) -> float:
        """Best known key of *item* (raises ``KeyError`` if absent)."""
        return self._best[item]

    def push(self, item: int, key: float) -> None:
        """Insert *item*, or decrease its key; larger keys are ignored."""
        current = self._best.get(item)
        if current is None or key < current:
            self._best[item] = key
            heapq.heappush(self._heap, (key, item))

    def pop_min(self) -> Tuple[float, int]:
        """Remove and return the smallest live ``(key, item)``."""
        heap = self._heap
        best = self._best
        while heap:
            key, item = heapq.heappop(heap)
            if best.get(item) == key:
                del best[item]
                return key, item
        raise IndexError("pop from empty heap")

    def peek(self) -> Tuple[float, int]:
        """The smallest live ``(key, item)`` without removing it."""
        heap = self._heap
        best = self._best
        while heap:
            key, item = heap[0]
            if best.get(item) == key:
                return key, item
            heapq.heappop(heap)
        raise IndexError("peek into empty heap")
