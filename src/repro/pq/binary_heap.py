"""Array-based addressable binary min-heap with ``decrease_key``.

Keeps a ``pos`` map from item to heap slot, so a relaxation can lower an
item's key in O(log n) without leaving stale entries behind.  Compared
with the lazy ``heapq`` strategy this bounds the heap size by the number
of *distinct* items, at the cost of more Python-level bookkeeping per
operation — which of the two wins in CPython is exactly what the
priority-queue ablation benchmark measures.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["AddressableBinaryHeap"]


class AddressableBinaryHeap:
    """Binary min-heap over integer items with position tracking.

    Implements the :class:`~repro.pq.base.PriorityQueue` protocol.
    """

    __slots__ = ("_keys", "_items", "_pos")

    def __init__(self) -> None:
        self._keys: List[float] = []
        self._items: List[int] = []
        self._pos: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def key_of(self, item: int) -> float:
        """Current key of *item*.

        Raises:
            KeyError: if the item is not in the heap.
        """
        return self._keys[self._pos[item]]

    # ------------------------------------------------------------------
    def push(self, item: int, key: float) -> None:
        """Insert *item*, or decrease its key; larger keys are ignored."""
        pos = self._pos.get(item)
        if pos is None:
            self._keys.append(key)
            self._items.append(item)
            self._pos[item] = len(self._items) - 1
            self._sift_up(len(self._items) - 1)
        elif key < self._keys[pos]:
            self._keys[pos] = key
            self._sift_up(pos)

    def pop_min(self) -> Tuple[float, int]:
        """Remove and return the smallest ``(key, item)``."""
        if not self._items:
            raise IndexError("pop from empty heap")
        keys, items, posmap = self._keys, self._items, self._pos
        top_key, top_item = keys[0], items[0]
        del posmap[top_item]
        last_key, last_item = keys.pop(), items.pop()
        if items:
            keys[0], items[0] = last_key, last_item
            posmap[last_item] = 0
            self._sift_down(0)
        return top_key, top_item

    def peek(self) -> Tuple[float, int]:
        """The smallest ``(key, item)`` without removing it."""
        if not self._items:
            raise IndexError("peek into empty heap")
        return self._keys[0], self._items[0]

    # ------------------------------------------------------------------
    def _sift_up(self, i: int) -> None:
        keys, items, posmap = self._keys, self._items, self._pos
        key, item = keys[i], items[i]
        while i > 0:
            parent = (i - 1) >> 1
            if keys[parent] <= key:
                break
            keys[i], items[i] = keys[parent], items[parent]
            posmap[items[i]] = i
            i = parent
        keys[i], items[i] = key, item
        posmap[item] = i

    def _sift_down(self, i: int) -> None:
        keys, items, posmap = self._keys, self._items, self._pos
        size = len(items)
        key, item = keys[i], items[i]
        while True:
            child = 2 * i + 1
            if child >= size:
                break
            right = child + 1
            if right < size and keys[right] < keys[child]:
                child = right
            if keys[child] >= key:
                break
            keys[i], items[i] = keys[child], items[child]
            posmap[items[i]] = i
            i = child
        keys[i], items[i] = key, item
        posmap[item] = i
