"""ASCII renderers for the figure-style experiments (Figures 5-7).

The harness is a terminal program on a headless box, so "figures" are
rendered as compact ASCII plots plus CSV series a user can feed to a
real plotting tool.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

__all__ = [
    "ascii_loglog_histogram",
    "ascii_cdf",
    "format_fig5",
    "format_fig6",
    "format_fig7",
]


def ascii_loglog_histogram(
    hist: Dict[int, int], width: int = 48, height: int = 10
) -> str:
    """Render a degree histogram as a log–log ASCII scatter (Figure 5)."""
    points = [(d, c) for d, c in sorted(hist.items()) if d > 0 and c > 0]
    if not points:
        return "(empty histogram)"
    xs = [math.log10(d) for d, _ in points]
    ys = [math.log10(c) for _, c in points]
    x_lo, x_hi = min(xs), max(xs) or 1e-9
    y_lo, y_hi = min(ys), max(ys) or 1e-9
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"degree: {10 ** x_lo:.0f} .. {10 ** x_hi:.0f} (log x)  "
                 f"count: {10 ** y_lo:.0f} .. {10 ** y_hi:.0f} (log y)")
    return "\n".join(lines)


def ascii_cdf(
    curves: Dict[str, Sequence[float]], width: int = 56, height: int = 12
) -> str:
    """Render cumulative curves on shared axes (Figure 6)."""
    if not curves:
        return "(no curves)"
    marks = "ox+#@"
    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(c) for c in curves.values()) or 1
    legend = []
    for (name, curve), mark in zip(curves.items(), marks):
        legend.append(f"  {mark} = {name}")
        for i, y in enumerate(curve):
            col = int(i / max(1, max_len - 1) * (width - 1))
            row = int(min(max(y, 0.0), 1.0) * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = mark if cell == " " else "#"
    lines = ["1.0 |" + "".join(r) for r in grid[:1]]
    lines += ["    |" + "".join(r) for r in grid[1:-1]]
    lines += ["0.0 +" + "".join(grid[-1])]
    lines.append(f"     x: pruned-Dijkstra invocation 1 .. {max_len}")
    lines.extend(legend)
    return "\n".join(lines)


def format_fig5(histograms: Dict[str, Dict[int, int]]) -> str:
    """Render Figure 5: one log–log degree panel per dataset."""
    blocks: List[str] = ["Figure 5: vertex degree distributions (log-log)"]
    for name, hist in histograms.items():
        blocks.append(f"\n[{name}]")
        blocks.append(ascii_loglog_histogram(hist))
    return "\n".join(blocks)


def format_fig6(curves: Dict[str, Sequence[float]], dataset: str) -> str:
    """Render Figure 6: cumulative label-creation CDF."""
    head = (
        f"Figure 6: cumulative fraction of label entries created by the "
        f"x-th pruned Dijkstra ({dataset})"
    )
    stats = []
    for name, curve in curves.items():
        k90 = next(
            (i + 1 for i, y in enumerate(curve) if y >= 0.9), len(curve)
        )
        stats.append(f"  {name}: 90% of labels after {k90} invocations")
    return "\n".join([head, ascii_cdf(curves), *stats])


def format_fig7(rows: List[Dict]) -> str:
    """Render Figure 7: sync-count sweep with comm/comp breakdown."""
    lines = [
        "Figure 7: synchronisation frequency sweep (uniform schedule, "
        "6-node cluster)",
        f"{'dataset':<12} {'c':>4} {'IT(s)':>10} {'LN':>7} "
        f"{'comp(s)':>10} {'comm(s)':>10} {'comm%':>6}",
        "-" * 64,
    ]
    for r in rows:
        pct = 100.0 * r["communication"] / r["seconds"] if r["seconds"] else 0
        lines.append(
            f"{r['dataset']:<12} {r['syncs']:>4} {r['seconds']:>10.2f} "
            f"{r['label_size']:>7.1f} {r['computation']:>10.2f} "
            f"{r['communication']:>10.2f} {pct:>5.1f}%"
        )
    return "\n".join(lines)
