"""Experiment implementations: one function per paper table/figure.

Every experiment consumes a :class:`BenchConfig` and returns plain
result objects (lists of dicts) that the formatters render.  Serial
reference builds — the expensive part, needed both as the "PLL" column
and for cost-model calibration — are computed once per dataset and
cached inside the config object.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.dijkstra import dijkstra_sssp
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import simulate_cluster
from repro.core.labels import LabelStore
from repro.core.paths import isclose_distance
from repro.core.serial import build_serial
from repro.core.stats import label_cdf
from repro.errors import BenchmarkError
from repro.generators.paper import DATASETS, dataset_names, load_dataset
from repro.graph.csr import CSRGraph
from repro.graph.ops import degree_histogram
from repro.sim.costmodel import CostModel, calibrate_cost_model
from repro.sim.executor import simulate_intra_node
from repro.types import IndexStats

__all__ = [
    "BenchConfig",
    "serial_reference",
    "experiment_datasets",
    "experiment_table34",
    "experiment_table5",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_headline",
    "metrics_snapshot",
    "snapshot_document",
    "reset_metrics",
]


def reset_metrics() -> None:
    """Zero the observability layer so a snapshot covers one experiment."""
    from repro import obs

    obs.reset()


def metrics_snapshot() -> List[Dict]:
    """The current observability registry as a JSON-safe structure.

    The bench runner calls :func:`reset_metrics` before and this after
    each experiment, so saved benchmark results carry the exact
    operation counts (prune hits, labels, sync deltas, ...) behind each
    table/figure.
    """
    from repro import obs

    return obs.get_registry().snapshot()


def snapshot_document(
    experiment: str, elapsed_seconds: Optional[float] = None
) -> Dict:
    """A metrics snapshot stamped with environment metadata.

    This is what the bench runner persists as ``{name}.metrics.json``:
    the registry snapshot plus python version, platform, CPU count,
    git SHA and a UTC timestamp, so results from different machines or
    revisions are never silently conflated.
    """
    from repro.obs.env import environment_metadata

    doc: Dict = {
        "schema": "parapll-metrics/2",
        "experiment": experiment,
        "environment": environment_metadata(),
        "metrics": metrics_snapshot(),
    }
    if elapsed_seconds is not None:
        doc["elapsed_seconds"] = elapsed_seconds
    return doc


@dataclass
class BenchConfig:
    """Knobs shared by all experiments.

    Attributes:
        scale: multiplier on each dataset's default stand-in size.
        seed: master RNG seed (graphs and noise streams derive from it).
        datasets: dataset names to run (defaults to all 11).
        workers: thread counts for Tables 3/4 (first entry = baseline).
        nodes: cluster sizes for Table 5 (first entry = baseline).
        threads_per_node: p inside each cluster node.
        jitter: per-task machine noise sigma for simulated runs.
        worker_jitter: per-worker speed spread sigma.
        table5_syncs: sync count for Table 5 runs.
        table5_schedule: sync schedule for Table 5 runs.  The default
            ``"early"`` is the scale-bridged configuration (DESIGN.md
            §2); pass ``"uniform"`` with ``table5_syncs=1`` for the
            paper-faithful setting.
        table5_partition: inter-node split for Table 5
            (``"round-robin"`` = paper, ``"region"`` = locality
            ablation).
        fig7_syncs: the sync-count sweep for Figure 7.
        fig7_datasets: datasets used in the Figure-7 sweep.
        network: interconnect cost model for cluster runs.
        verify_samples: per-run number of Dijkstra-checked sources
            (0 disables the built-in correctness spot check).
    """

    scale: float = 1.0
    seed: int = 42
    datasets: Sequence[str] = field(default_factory=dataset_names)
    workers: Sequence[int] = (1, 2, 4, 6, 8, 10, 12)
    nodes: Sequence[int] = (1, 2, 3, 4, 5, 6)
    threads_per_node: int = 6
    jitter: float = 0.15
    worker_jitter: float = 0.25
    table5_syncs: int = 4
    table5_schedule: str = "early"
    table5_partition: str = "round-robin"
    fig7_syncs: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128)
    fig7_datasets: Sequence[str] = ("Gnutella", "CondMat")
    network: NetworkModel = field(
        default_factory=lambda: NetworkModel(
            latency_units=50.0, per_entry_units=0.05
        )
    )
    #: Figure 7 uses a slower interconnect so the comm/comp ratio matches
    #: the paper's regime (their Fig 7(c)/(d) show communication dominating
    #: at high sync counts; our compute shrank ~1000x with the dataset
    #: scale while real network latencies would not have).
    fig7_network: NetworkModel = field(
        default_factory=lambda: NetworkModel(
            latency_units=2000.0, per_entry_units=0.2
        )
    )
    verify_samples: int = 2

    # Per-dataset caches, filled lazily.
    _graphs: Dict[str, CSRGraph] = field(default_factory=dict, repr=False)
    _references: Dict[str, Tuple[LabelStore, IndexStats, CostModel]] = field(
        default_factory=dict, repr=False
    )

    def graph(self, name: str) -> CSRGraph:
        """The (cached) stand-in graph for one dataset."""
        if name not in self._graphs:
            if name not in DATASETS:
                raise BenchmarkError(f"unknown dataset {name!r}")
            self._graphs[name] = load_dataset(
                name, scale=self.scale, seed=self.seed
            )
        return self._graphs[name]

    def reference(self, name: str) -> Tuple[LabelStore, IndexStats, CostModel]:
        """The (cached) serial build + calibrated cost model for a dataset."""
        if name not in self._references:
            self._references[name] = serial_reference(self.graph(name))
        return self._references[name]


def serial_reference(
    graph: CSRGraph,
) -> Tuple[LabelStore, IndexStats, CostModel]:
    """Serial weighted PLL with per-root stats and a calibrated cost model.

    The measured wall-clock time of this build is the "PLL" column of
    Tables 3/4, and its operation counts calibrate the simulator's
    units-to-seconds constant, so simulated "IT(s)" figures share the
    serial run's time base.
    """
    t0 = time.perf_counter()
    store, stats = build_serial(graph, collect_per_root=True)
    wall = time.perf_counter() - t0
    stats.build_seconds = wall
    cost = calibrate_cost_model(stats.per_root, wall, graph.num_vertices)
    return store, stats, cost


def _spot_check(config: BenchConfig, name: str, index) -> None:
    """Verify a handful of sources of *index* against Dijkstra."""
    if config.verify_samples <= 0:
        return
    graph = config.graph(name)
    n = graph.num_vertices
    step = max(1, n // config.verify_samples)
    for s in list(range(0, n, step))[: config.verify_samples]:
        truth = dijkstra_sssp(graph, s)
        for t in range(n):
            got = index.distance(s, t)
            if not isclose_distance(got, truth[t]):
                raise BenchmarkError(
                    f"{name}: index distance({s},{t})={got} != {truth[t]}"
                )


# ----------------------------------------------------------------------
# Table 2 / Figure 5
# ----------------------------------------------------------------------
def experiment_datasets(config: BenchConfig) -> List[Dict]:
    """Table 2: the dataset inventory (paper scale vs. stand-in scale)."""
    rows = []
    for name in config.datasets:
        spec = DATASETS[name].spec
        g = config.graph(name)
        rows.append(
            {
                "dataset": name,
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
                "n": g.num_vertices,
                "m": g.num_edges,
                "type": spec.graph_type,
                "family": spec.family,
            }
        )
    return rows


def experiment_fig5(config: BenchConfig) -> Dict[str, Dict[int, int]]:
    """Figure 5: the degree histogram of every dataset."""
    return {
        name: degree_histogram(config.graph(name)) for name in config.datasets
    }


# ----------------------------------------------------------------------
# Tables 3 and 4 (intra-node static / dynamic)
# ----------------------------------------------------------------------
def experiment_table34(config: BenchConfig, policy: str) -> List[Dict]:
    """Tables 3/4: intra-node ParaPLL under one assignment policy.

    For each dataset: the serial PLL indexing time, the 1-thread
    simulated time, speedups for every thread count, and the average
    label size (LN) per thread count.
    """
    rows = []
    for name in config.datasets:
        graph = config.graph(name)
        _store, serial_stats, cost = config.reference(name)
        seconds: List[float] = []
        label_sizes: List[float] = []
        for p in config.workers:
            index, run = simulate_intra_node(
                graph,
                p,
                policy=policy,
                cost_model=cost,
                jitter=config.jitter,
                worker_jitter=config.worker_jitter,
                seed=config.seed + p,
            )
            seconds.append(run.makespan)
            label_sizes.append(index.avg_label_size())
            if p == max(config.workers):
                _spot_check(config, name, index)
        baseline = seconds[0]
        rows.append(
            {
                "dataset": name,
                "pll_seconds": serial_stats.build_seconds,
                "pll_ln": serial_stats.avg_label_size,
                "workers": list(config.workers),
                "seconds": seconds,
                "speedups": [baseline / s for s in seconds],
                "label_sizes": label_sizes,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 5 (cluster)
# ----------------------------------------------------------------------
def experiment_table5(config: BenchConfig) -> List[Dict]:
    """Table 5: cluster ParaPLL, static and dynamic intra-node policy.

    The 1-node baseline runs without mid-build synchronisation (it has
    nobody to talk to); multi-node runs use the configured sync
    schedule.
    """
    rows = []
    for name in config.datasets:
        graph = config.graph(name)
        _store, _stats, cost = config.reference(name)
        row: Dict = {"dataset": name, "nodes": list(config.nodes)}
        for policy in ("static", "dynamic"):
            seconds: List[float] = []
            label_sizes: List[float] = []
            for q in config.nodes:
                index, run = simulate_cluster(
                    graph,
                    q,
                    threads_per_node=config.threads_per_node,
                    policy=policy,
                    syncs=1 if q == 1 else config.table5_syncs,
                    sync_schedule=config.table5_schedule,
                    inter_node=config.table5_partition,
                    cost_model=cost,
                    network=config.network,
                    jitter=config.jitter,
                    worker_jitter=config.worker_jitter,
                    seed=config.seed + 31 * q,
                )
                seconds.append(run.makespan)
                label_sizes.append(index.avg_label_size())
                if policy == "dynamic" and q == max(config.nodes):
                    _spot_check(config, name, index)
            baseline = seconds[0]
            row[f"{policy}_seconds"] = seconds
            row[f"{policy}_speedups"] = [baseline / s for s in seconds]
            row[f"{policy}_label_sizes"] = label_sizes
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 6 (label CDF by invocation)
# ----------------------------------------------------------------------
def experiment_fig6(
    config: BenchConfig, dataset: Optional[str] = None, p: int = 8
) -> Dict[str, List[float]]:
    """Figure 6: cumulative label fraction vs. pruned-Dijkstra sequence.

    Compares serial PLL with ParaPLL under both policies at *p* virtual
    threads.  Roots are counted in dispatch order, as in the paper.
    """
    name = dataset or config.datasets[0]
    graph = config.graph(name)
    _store, serial_stats, cost = config.reference(name)
    curves: Dict[str, List[float]] = {
        "PLL (serial)": label_cdf(serial_stats.per_root).tolist()
    }
    for policy in ("static", "dynamic"):
        index, _run = simulate_intra_node(
            graph,
            p,
            policy=policy,
            cost_model=cost,
            jitter=config.jitter,
            worker_jitter=config.worker_jitter,
            seed=config.seed,
        )
        curves[f"ParaPLL ({policy}, p={p})"] = label_cdf(
            index.stats.per_root
        ).tolist()
    return curves


# ----------------------------------------------------------------------
# Figure 7 (synchronisation-frequency sweep)
# ----------------------------------------------------------------------
def experiment_fig7(config: BenchConfig) -> List[Dict]:
    """Figure 7: indexing time / label size / comm-vs-comp breakdown vs. c.

    Runs the paper-faithful *uniform* schedule on a 6-node cluster,
    sweeping the synchronisation count.
    """
    out = []
    q = max(config.nodes)
    for name in config.fig7_datasets:
        graph = config.graph(name)
        _store, _stats, cost = config.reference(name)
        for c in config.fig7_syncs:
            index, run = simulate_cluster(
                graph,
                q,
                threads_per_node=config.threads_per_node,
                policy="dynamic",
                syncs=c,
                sync_schedule="uniform",
                cost_model=cost,
                network=config.fig7_network,
                jitter=config.jitter,
                worker_jitter=config.worker_jitter,
                seed=config.seed,
            )
            out.append(
                {
                    "dataset": name,
                    "syncs": c,
                    "seconds": run.makespan,
                    "label_size": index.avg_label_size(),
                    "communication": run.communication_time,
                    "computation": run.makespan - run.communication_time,
                    "sync_wait": run.sync_wait_time,
                }
            )
    return out


# ----------------------------------------------------------------------
# Headline numbers (§1 / abstract)
# ----------------------------------------------------------------------
def experiment_headline(config: BenchConfig) -> Dict:
    """The abstract's claims: intra-node and cluster speedup on the
    largest graph (the paper's Skitter numbers)."""
    name = config.datasets[-1] if "Skitter" not in config.datasets else "Skitter"
    graph = config.graph(name)
    _store, serial_stats, cost = config.reference(name)
    p = max(config.workers)
    _idx, intra = simulate_intra_node(
        graph,
        p,
        policy="dynamic",
        cost_model=cost,
        jitter=config.jitter,
        worker_jitter=config.worker_jitter,
        seed=config.seed,
    )
    _idx1, intra1 = simulate_intra_node(
        graph, 1, policy="dynamic", cost_model=cost, seed=config.seed
    )
    q = max(config.nodes)
    _c1, cluster1 = simulate_cluster(
        graph,
        1,
        threads_per_node=config.threads_per_node,
        syncs=1,
        cost_model=cost,
        network=config.network,
        jitter=config.jitter,
        worker_jitter=config.worker_jitter,
        seed=config.seed,
    )
    _cq, clusterq = simulate_cluster(
        graph,
        q,
        threads_per_node=config.threads_per_node,
        syncs=config.table5_syncs,
        sync_schedule=config.table5_schedule,
        cost_model=cost,
        network=config.network,
        jitter=config.jitter,
        worker_jitter=config.worker_jitter,
        seed=config.seed,
    )
    return {
        "dataset": name,
        "serial_seconds": serial_stats.build_seconds,
        "threads": p,
        "intra_speedup": intra1.makespan / intra.makespan,
        "cluster_nodes": q,
        "cluster_speedup": cluster1.makespan / clusterq.makespan,
    }
