"""Command-line front end: ``python -m repro.bench``.

Examples::

    python -m repro.bench --experiment table4 --scale 0.5
    python -m repro.bench --experiment all --out results/
    python -m repro.bench --experiment fig7 --datasets Gnutella CondMat
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.bench.figures import format_fig5, format_fig6, format_fig7
from repro.bench.harness import (
    BenchConfig,
    experiment_datasets,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_headline,
    experiment_table34,
    experiment_table5,
)
from repro.bench.tables import (
    format_headline,
    format_speedup_table,
    format_table2,
    format_table5,
    write_csv,
)
from repro.errors import BenchmarkError
from repro.generators.paper import dataset_names

__all__ = ["main"]

EXPERIMENTS = (
    "datasets",
    "fig5",
    "table3",
    "table4",
    "table5",
    "fig6",
    "fig7",
    "headline",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the ParaPLL paper's tables and figures.",
    )
    parser.add_argument(
        "--experiment",
        default="all",
        choices=EXPERIMENTS + ("all",),
        help="which table/figure to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="dataset scale multiplier (default 1.0)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master seed")
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        metavar="NAME",
        help=f"subset of datasets (default: all of {dataset_names()})",
    )
    parser.add_argument(
        "--schedule",
        default="early",
        choices=("early", "uniform"),
        help="Table-5 sync schedule (early = scale-bridged, "
        "uniform = paper-faithful)",
    )
    parser.add_argument(
        "--syncs",
        type=int,
        default=4,
        help="Table-5 synchronisation count (default 4)",
    )
    parser.add_argument(
        "--partition",
        default="round-robin",
        choices=("round-robin", "region"),
        help="Table-5 inter-node split (round-robin = paper)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write CSV result files into DIR",
    )
    return parser


def run_experiment(
    name: str, config: BenchConfig, out_dir: Optional[str]
) -> str:
    """Run one experiment, returning its rendered text (CSV side effect).

    When *out_dir* is given, the observability snapshot covering the
    experiment is written next to its CSV as ``{name}.metrics.json``
    (a document embedding environment metadata — python version,
    platform, CPU count, git SHA, UTC timestamp — so results from
    different machines are never silently conflated), and the same
    metadata is written once per directory as ``environment.json`` to
    stamp the CSVs too.
    """
    from repro.bench.harness import reset_metrics, snapshot_document

    reset_metrics()
    t0 = time.perf_counter()
    if name == "datasets":
        rows = experiment_datasets(config)
        text = format_table2(rows)
    elif name == "fig5":
        hists = experiment_fig5(config)
        text = format_fig5(hists)
        rows = [
            {"dataset": d, "degree": deg, "count": c}
            for d, h in hists.items()
            for deg, c in sorted(h.items())
        ]
    elif name == "table3":
        rows = experiment_table34(config, "static")
        text = format_speedup_table(
            rows, "Table 3: ParaPLL intra-node, STATIC assignment"
        )
    elif name == "table4":
        rows = experiment_table34(config, "dynamic")
        text = format_speedup_table(
            rows, "Table 4: ParaPLL intra-node, DYNAMIC assignment"
        )
    elif name == "table5":
        rows = experiment_table5(config)
        text = format_table5(
            rows,
            f"Table 5: ParaPLL cluster (p={config.threads_per_node}, "
            f"c={config.table5_syncs}, schedule={config.table5_schedule})",
        )
    elif name == "fig6":
        curves = experiment_fig6(config)
        text = format_fig6(curves, config.datasets[0])
        rows = [
            {"curve": k, "x": i + 1, "y": y}
            for k, c in curves.items()
            for i, y in enumerate(c)
        ]
    elif name == "fig7":
        rows = experiment_fig7(config)
        text = format_fig7(rows)
    elif name == "headline":
        result = experiment_headline(config)
        text = format_headline(result)
        rows = [result]
    else:
        raise BenchmarkError(f"unknown experiment {name!r}")
    elapsed = time.perf_counter() - t0
    if out_dir:
        import json

        document = snapshot_document(name, elapsed_seconds=elapsed)
        os.makedirs(out_dir, exist_ok=True)
        write_csv(rows, os.path.join(out_dir, f"{name}.csv"))
        with open(
            os.path.join(out_dir, f"{name}.metrics.json"),
            "w",
            encoding="utf-8",
        ) as fh:
            json.dump(document, fh, indent=1)
        with open(
            os.path.join(out_dir, "environment.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(document["environment"], fh, indent=1)
    return f"{text}\n[{name} finished in {elapsed:.1f}s]\n"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    config = BenchConfig(
        scale=args.scale,
        seed=args.seed,
        table5_schedule=args.schedule,
        table5_syncs=args.syncs,
        table5_partition=args.partition,
    )
    if args.datasets:
        unknown = set(args.datasets) - set(dataset_names())
        if unknown:
            print(f"unknown datasets: {sorted(unknown)}", file=sys.stderr)
            return 2
        config.datasets = args.datasets
    todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in todo:
        print(run_experiment(name, config, args.out))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
