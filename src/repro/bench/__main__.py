"""``python -m repro.bench`` dispatches to :func:`repro.bench.runner.main`."""

from repro.bench.runner import main

raise SystemExit(main())
