"""The experiment harness behind ``benchmarks/``.

One function per paper table/figure, all driven by a single
:class:`~repro.bench.harness.BenchConfig`.  Each experiment returns a
plain data object that the formatters in :mod:`repro.bench.tables` and
:mod:`repro.bench.figures` render as paper-style ASCII tables / series
and as CSV.  ``python -m repro.bench`` is the command-line front end.
"""

from repro.bench.harness import (
    BenchConfig,
    experiment_datasets,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_headline,
    experiment_table34,
    experiment_table5,
    serial_reference,
)
from repro.bench.tables import format_speedup_table, format_table2, write_csv

__all__ = [
    "BenchConfig",
    "serial_reference",
    "experiment_datasets",
    "experiment_table34",
    "experiment_table5",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_headline",
    "format_speedup_table",
    "format_table2",
    "write_csv",
]
