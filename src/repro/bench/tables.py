"""ASCII renderers and CSV writers for the experiment results.

The formats mirror the paper's tables: IT (indexing time, seconds),
SP (speedup over the first column's configuration), LN (average label
entries per vertex).
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Sequence, Union

__all__ = [
    "format_table2",
    "format_speedup_table",
    "format_table5",
    "format_headline",
    "write_csv",
]

PathLike = Union[str, os.PathLike]


def format_table2(rows: List[Dict]) -> str:
    """Render the dataset inventory (our Table 2)."""
    lines = [
        f"{'Dataset':<12} {'paper n':>9} {'paper m':>10} "
        f"{'n':>7} {'m':>9}  {'Graph Type':<20}",
        "-" * 72,
    ]
    for r in rows:
        lines.append(
            f"{r['dataset']:<12} {r['paper_n']:>9,} {r['paper_m']:>10,} "
            f"{r['n']:>7,} {r['m']:>9,}  {r['type']:<20}"
        )
    return "\n".join(lines)


def format_speedup_table(rows: List[Dict], title: str) -> str:
    """Render a Table-3/4-style block: PLL IT, per-p SP, per-p LN."""
    if not rows:
        return f"{title}\n(no rows)"
    workers = rows[0]["workers"]
    head = (
        f"{'Dataset':<12} {'PLL IT(s)':>10} {'IT1(s)':>8} "
        + " ".join(f"SP@{p:<2}" for p in workers[1:])
        + "  "
        + " ".join(f"LN@{p:<2}" for p in workers)
    )
    lines = [title, head, "-" * len(head)]
    for r in rows:
        sp = " ".join(f"{s:5.2f}" for s in r["speedups"][1:])
        ln = " ".join(f"{v:5.0f}" for v in r["label_sizes"])
        lines.append(
            f"{r['dataset']:<12} {r['pll_seconds']:>10.2f} "
            f"{r['seconds'][0]:>8.2f} {sp}  {ln}"
        )
    return "\n".join(lines)


def format_table5(rows: List[Dict], title: str) -> str:
    """Render the cluster table: static/dynamic SP per q, LN per q."""
    if not rows:
        return f"{title}\n(no rows)"
    nodes = rows[0]["nodes"]
    head = (
        f"{'Dataset':<12} {'IT1(s)':>8} "
        + " ".join(f"sSP@{q}" for q in nodes[1:])
        + "  "
        + " ".join(f"dSP@{q}" for q in nodes[1:])
        + "  "
        + " ".join(f"LN@{q}" for q in nodes)
    )
    lines = [title, head, "-" * len(head)]
    for r in rows:
        ssp = " ".join(f"{s:5.2f}" for s in r["static_speedups"][1:])
        dsp = " ".join(f"{s:5.2f}" for s in r["dynamic_speedups"][1:])
        ln = " ".join(f"{v:4.0f}" for v in r["dynamic_label_sizes"])
        lines.append(
            f"{r['dataset']:<12} {r['dynamic_seconds'][0]:>8.2f} {ssp}  {dsp}  {ln}"
        )
    return "\n".join(lines)


def format_headline(result: Dict) -> str:
    """Render the abstract-style summary sentence."""
    return (
        f"{result['dataset']}: serial PLL {result['serial_seconds']:.2f}s; "
        f"ParaPLL x{result['intra_speedup']:.2f} at {result['threads']} threads; "
        f"cluster x{result['cluster_speedup']:.2f} at "
        f"{result['cluster_nodes']} nodes"
    )


def write_csv(rows: Sequence[Dict], path: PathLike) -> None:
    """Write a list of flat dicts as CSV (list values are ;-joined)."""
    if not rows:
        return
    flat_rows = []
    for r in rows:
        flat = {}
        for k, v in r.items():
            if isinstance(v, (list, tuple)):
                flat[k] = ";".join(str(x) for x in v)
            else:
                flat[k] = v
        flat_rows.append(flat)
    fieldnames = list(flat_rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(flat_rows)
