"""Cluster network cost model.

The paper's §5.4.3 analysis: one synchronisation makes every node
broadcast its delta to all others; a broadcast is ``log q`` send/receive
stages, so exchanging labels of total size *l* across *q* nodes costs
O(l·q·log q) — communication time per sync is::

    sum over nodes i of (latency + per_entry * l_i) * ceil(log2 q)

Costs are expressed in the same abstract *work units* as
:class:`~repro.sim.costmodel.CostModel`, so one calibration constant
converts both computation and communication to seconds.  The default
``latency_units`` corresponds to a few average root searches per
message round trip — the regime where the paper's "synchronise once"
conclusion holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import CommError

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth parameters of the simulated interconnect.

    Attributes:
        latency_units: fixed cost per broadcast stage per node (message
            setup + barrier handshake), in work units.
        per_entry_units: cost of shipping one label entry through one
            broadcast stage, in work units.
    """

    latency_units: float = 4000.0
    per_entry_units: float = 1.5

    def __post_init__(self) -> None:
        if self.latency_units < 0 or self.per_entry_units < 0:
            raise CommError("network cost parameters must be non-negative")

    def stages(self, num_nodes: int) -> int:
        """Broadcast stages for *num_nodes* ranks: ``ceil(log2 q)``."""
        if num_nodes < 1:
            raise CommError("num_nodes must be >= 1")
        if num_nodes == 1:
            return 0
        return math.ceil(math.log2(num_nodes))

    def broadcast_units(self, entries: int, num_nodes: int) -> float:
        """Units for one node broadcasting *entries* label entries."""
        if entries < 0:
            raise CommError("entries must be non-negative")
        s = self.stages(num_nodes)
        return (self.latency_units + self.per_entry_units * entries) * s

    def exchange_units(
        self, entries_per_node: Sequence[int], num_nodes: int
    ) -> float:
        """Units for a full all-to-all label exchange (one sync point).

        Every node broadcasts its delta in turn (the paper's gather of
        every node's ``List``), so the total is the sum of the
        individual broadcasts — the O(l·q·log q) expression.
        """
        if len(entries_per_node) != num_nodes:
            raise CommError(
                f"expected {num_nodes} delta sizes, got {len(entries_per_node)}"
            )
        return sum(
            self.broadcast_units(e, num_nodes) for e in entries_per_node
        )
