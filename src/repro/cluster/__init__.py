"""Inter-node ParaPLL over a simulated message-passing cluster.

The paper deploys ParaPLL on a 6-node OpenMPI cluster; this environment
has neither MPI nor multiple machines, so the package provides:

* :mod:`repro.cluster.network` — a latency/bandwidth cost model with the
  paper's O(l·q·log q) collective-exchange time (§5.4.3).
* :mod:`repro.cluster.comm` — ``SimComm``, an in-process MPI-flavoured
  communicator (send/recv/bcast/allgather/barrier) whose collectives
  charge time through the network model.
* :mod:`repro.cluster.partition` — the static inter-node task split.
* :mod:`repro.cluster.parapll` — Algorithm 3: per-node indexing with
  delta ``List`` accumulation and periodic synchronisation, simulated
  with one :class:`~repro.sim.executor.IntraNodeSimulator` per node.
"""

from repro.cluster.comm import SimComm
from repro.cluster.network import NetworkModel
from repro.cluster.parapll import ClusterRunResult, simulate_cluster
from repro.cluster.partition import round_robin_partition, split_chunks
from repro.cluster.runner import cluster_rank_program, run_cluster_threads
from repro.cluster.threadcomm import ThreadComm, run_ranks

__all__ = [
    "SimComm",
    "NetworkModel",
    "simulate_cluster",
    "ClusterRunResult",
    "round_robin_partition",
    "split_chunks",
    "ThreadComm",
    "run_ranks",
    "cluster_rank_program",
    "run_cluster_threads",
]
