"""``ThreadComm``: a *concurrent* message-passing substrate over threads.

:class:`~repro.cluster.comm.SimComm` is cooperative (a single driver
invokes every rank) and models virtual time; ``ThreadComm`` is its
execution-oriented sibling: each rank runs on its own thread and the
communicator provides genuinely blocking ``send``/``recv``/``bcast``/
``allgather``/``barrier`` between them, with the same lowercase
mpi4py-flavoured surface.  Ranks share no algorithm state — the cluster
runner built on top (:mod:`repro.cluster.runner`) gives every rank a
private label store and communicates *only* through this interface, so
the code is structured exactly like an MPI program and would port to
``mpi4py.MPI.COMM_WORLD`` by swapping the communicator object.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check import hooks as _check_hooks
from repro.errors import CommError
from repro.obs import bus as _bus
from repro.obs import config as _obs_config
from repro.obs import context as _ctx
from repro.obs import flightrec as _flightrec
from repro.obs import trace as _trace

__all__ = ["ThreadComm", "run_ranks"]


def _record_send(env: _ctx.Envelope, src: int, dest: Optional[int]) -> None:
    """Trace one message departure (no-op unless tracing is on)."""
    if not _obs_config.TRACING:
        return
    ctx = env.ctx
    _trace.event(
        "comm_send",
        flow="out",
        flow_id=env.flow_id,
        trace_id=ctx.trace_id if ctx else None,
        src=src,
        dest=dest,
    )


def _record_recv(
    env_ctx: Optional[_ctx.TraceContext],
    flow_id: Optional[str],
    src: int,
    dest: int,
) -> None:
    """Trace one message arrival (no-op unless tracing is on)."""
    if not _obs_config.TRACING or flow_id is None:
        return
    _trace.event(
        "comm_recv",
        flow="in",
        flow_id=flow_id,
        trace_id=env_ctx.trace_id if env_ctx else None,
        src=src,
        dest=dest,
    )


class ThreadComm:
    """A blocking communicator over *size* thread-backed ranks.

    One ``ThreadComm`` object is shared by all rank threads; every
    method takes the calling rank explicitly (threads are anonymous).

    Args:
        size: number of ranks.
        timeout: safety timeout in seconds for blocking operations —
            a deadlocked collective raises instead of hanging the test
            suite forever.
    """

    def __init__(self, size: int, timeout: float = 30.0) -> None:
        if size < 1:
            raise CommError("communicator size must be >= 1")
        self.size = size
        self.timeout = timeout
        self._boxes: Dict[Tuple[int, int, int], "queue.Queue[Any]"] = {}
        self._boxes_lock = _check_hooks.make_lock("ThreadComm._boxes_lock")
        self._barrier = threading.Barrier(size)
        # Allgather state: a slot list plus a barrier-protected epoch.
        self._gather_lock = _check_hooks.make_lock("ThreadComm._gather_lock")
        self._gather_slots: List[Any] = [None] * size
        self._gather_filled: List[bool] = [False] * size
        # Race-sanitizer locations (no-ops unless repro.check is active).
        # Slot *reads* in allgather are barrier-ordered, not lock-
        # protected, so only the lock-guarded mutations are tracked.
        self._san_boxes = f"ThreadComm#{id(self)}._boxes"
        self._san_gather = f"ThreadComm#{id(self)}._gather_slots"
        # Happens-before event names (vector-clock sanitizer): one
        # channel per (source, dest, tag) mailbox, one barrier name.
        self._hb_prefix = f"ThreadComm#{id(self)}"
        self._hb_barrier = f"{self._hb_prefix}.barrier"

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def _box(self, source: int, dest: int, tag: int) -> "queue.Queue[Any]":
        key = (source, dest, tag)
        with self._boxes_lock:
            _check_hooks.access(self._san_boxes, write=True)
            box = self._boxes.get(key)
            if box is None:
                box = queue.Queue()
                self._boxes[key] = box
            return box

    # ------------------------------------------------------------------
    def send(self, payload: Any, source: int, dest: int, tag: int = 0) -> None:
        """Deliver *payload* to *dest*'s mailbox (non-blocking).

        The payload travels inside a :class:`repro.obs.context.Envelope`
        stamped with the sender's :class:`~repro.obs.context.TraceContext`
        so cross-rank traces stitch into one timeline; ``recv`` unwraps
        transparently.
        """
        self._check_rank(source)
        self._check_rank(dest)
        env = _ctx.stamp(payload, rank=source)
        _record_send(env, src=source, dest=dest)
        # The hook token rides along with the message so the receiver
        # joins exactly this send's clock (None when no sanitizer).
        token = _check_hooks.send(
            f"{self._hb_prefix}.box.{source}.{dest}.{tag}"
        )
        self._box(source, dest, tag).put((env, token))

    def recv(self, source: int, dest: int, tag: int = 0) -> Any:
        """Block until a message from *source* arrives at *dest*.

        Raises:
            CommError: when the safety timeout expires.
        """
        self._check_rank(source)
        self._check_rank(dest)
        try:
            raw, token = self._box(source, dest, tag).get(
                timeout=self.timeout
            )
        except queue.Empty:
            raise CommError(
                f"recv timeout on rank {dest} from {source} tag {tag}"
            ) from None
        _check_hooks.recv(
            f"{self._hb_prefix}.box.{source}.{dest}.{tag}", token
        )
        payload, env_ctx, flow_id = _ctx.unwrap(raw)
        _record_recv(env_ctx, flow_id, src=source, dest=dest)
        return payload

    # ------------------------------------------------------------------
    def barrier(self, rank: int) -> None:
        """Block until every rank reaches the barrier."""
        self._check_rank(rank)
        _check_hooks.barrier(self._hb_barrier, "arrive")
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise CommError("barrier timed out or was broken") from None
        _check_hooks.barrier(self._hb_barrier, "depart")

    def allgather(self, rank: int, payload: Any) -> List[Any]:
        """Contribute *payload*; returns every rank's payload, in order.

        Implemented as slot-fill + two barriers (fill, read-out), so it
        is safe to call repeatedly in a loop from all ranks.
        """
        self._check_rank(rank)
        env = _ctx.stamp(payload, rank=rank)
        _record_send(env, src=rank, dest=None)
        with self._gather_lock:
            _check_hooks.access(self._san_gather, write=True)
            if self._gather_filled[rank]:
                raise CommError(
                    f"rank {rank} joined the same allgather twice"
                )
            self._gather_slots[rank] = env
            self._gather_filled[rank] = True
        self.barrier(rank)  # everyone has written
        # Cross-process telemetry: one bus event per completed gather
        # phase (no-op global load unless a relay installed a bus).
        _bus.publish_event("comm_allgather", rank=rank, ranks=self.size)
        result = []
        for src, raw in enumerate(self._gather_slots):
            slot_payload, env_ctx, flow_id = _ctx.unwrap(raw)
            result.append(slot_payload)
            if src != rank:
                _record_recv(env_ctx, flow_id, src=src, dest=rank)
        self.barrier(rank)  # everyone has read
        # One designated rank resets the slots for the next round; the
        # final barrier keeps slot reuse race-free.
        if rank == 0:
            with self._gather_lock:
                _check_hooks.access(self._san_gather, write=True)
                self._gather_slots = [None] * self.size
                self._gather_filled = [False] * self.size
        self.barrier(rank)
        return result

    def bcast(self, payload: Any, root: int, rank: int) -> Any:
        """Broadcast from *root*; every rank returns the payload."""
        self._check_rank(root)
        gathered = self.allgather(rank, payload if rank == root else None)
        return gathered[root]


def run_ranks(
    comm: ThreadComm,
    fn: Callable[[int, ThreadComm], Any],
    timeout: Optional[float] = None,
    trace_context: Optional[_ctx.TraceContext] = None,
) -> List[Any]:
    """Run ``fn(rank, comm)`` on one thread per rank; gather the returns.

    Exceptions from any rank are re-raised in the caller (the first one
    by rank order) after all threads have been joined.  Before
    re-raising, the flight recorder captures a ``rank_failure`` event
    and auto-dumps (when ``PARAPLL_FLIGHTREC_DIR`` is set), and the
    raised exception gains a :class:`~repro.errors.CommError` cause
    carrying the failing rank programmatically (``cause.rank``).

    Args:
        comm: the communicator whose ``size`` defines the rank count.
        fn: the per-rank program.
        timeout: join timeout per thread (defaults to the comm's).
        trace_context: trace context to propagate into every rank
            thread (each rank activates a per-rank child so its spans
            and comm envelopes stitch into the caller's trace).
            Defaults to the caller's current context.
    """
    results: List[Any] = [None] * comm.size
    errors: List[Optional[BaseException]] = [None] * comm.size
    parent_ctx = trace_context if trace_context is not None else _ctx.current()

    def runner(rank: int) -> None:
        try:
            rank_ctx = (
                parent_ctx.child(rank=rank) if parent_ctx is not None else None
            )
            with _ctx.activate(rank_ctx):
                results[rank] = fn(rank, comm)
        except BaseException as exc:  # surfaced below
            errors[rank] = exc
            _flightrec.record(
                "rank_failure", rank=rank, error=repr(exc)
            )
            # Break the barrier so sibling ranks fail fast instead of
            # waiting out the full timeout.
            comm._barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
        for r in range(comm.size)
    ]
    for t in threads:
        _check_hooks.fork(t.name)
        t.start()
    for t in threads:
        t.join(timeout=timeout or comm.timeout + 5.0)
        if not t.is_alive():
            _check_hooks.join(t.name)
    for rank, exc in enumerate(errors):
        if exc is not None:
            _flightrec.auto_dump("rank_failure")
            raise exc from CommError(
                f"rank {rank} failed during run_ranks", rank=rank
            )
    return results
