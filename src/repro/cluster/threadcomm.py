"""``ThreadComm``: a *concurrent* message-passing substrate over threads.

:class:`~repro.cluster.comm.SimComm` is cooperative (a single driver
invokes every rank) and models virtual time; ``ThreadComm`` is its
execution-oriented sibling: each rank runs on its own thread and the
communicator provides genuinely blocking ``send``/``recv``/``bcast``/
``allgather``/``barrier`` between them, with the same lowercase
mpi4py-flavoured surface.  Ranks share no algorithm state — the cluster
runner built on top (:mod:`repro.cluster.runner`) gives every rank a
private label store and communicates *only* through this interface, so
the code is structured exactly like an MPI program and would port to
``mpi4py.MPI.COMM_WORLD`` by swapping the communicator object.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check import hooks as _check_hooks
from repro.errors import CommError

__all__ = ["ThreadComm", "run_ranks"]


class ThreadComm:
    """A blocking communicator over *size* thread-backed ranks.

    One ``ThreadComm`` object is shared by all rank threads; every
    method takes the calling rank explicitly (threads are anonymous).

    Args:
        size: number of ranks.
        timeout: safety timeout in seconds for blocking operations —
            a deadlocked collective raises instead of hanging the test
            suite forever.
    """

    def __init__(self, size: int, timeout: float = 30.0) -> None:
        if size < 1:
            raise CommError("communicator size must be >= 1")
        self.size = size
        self.timeout = timeout
        self._boxes: Dict[Tuple[int, int, int], "queue.Queue[Any]"] = {}
        self._boxes_lock = _check_hooks.make_lock("ThreadComm._boxes_lock")
        self._barrier = threading.Barrier(size)
        # Allgather state: a slot list plus a barrier-protected epoch.
        self._gather_lock = _check_hooks.make_lock("ThreadComm._gather_lock")
        self._gather_slots: List[Any] = [None] * size
        self._gather_filled: List[bool] = [False] * size
        # Race-sanitizer locations (no-ops unless repro.check is active).
        # Slot *reads* in allgather are barrier-ordered, not lock-
        # protected, so only the lock-guarded mutations are tracked.
        self._san_boxes = f"ThreadComm#{id(self)}._boxes"
        self._san_gather = f"ThreadComm#{id(self)}._gather_slots"

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def _box(self, source: int, dest: int, tag: int) -> "queue.Queue[Any]":
        key = (source, dest, tag)
        with self._boxes_lock:
            _check_hooks.access(self._san_boxes, write=True)
            box = self._boxes.get(key)
            if box is None:
                box = queue.Queue()
                self._boxes[key] = box
            return box

    # ------------------------------------------------------------------
    def send(self, payload: Any, source: int, dest: int, tag: int = 0) -> None:
        """Deliver *payload* to *dest*'s mailbox (non-blocking)."""
        self._check_rank(source)
        self._check_rank(dest)
        self._box(source, dest, tag).put(payload)

    def recv(self, source: int, dest: int, tag: int = 0) -> Any:
        """Block until a message from *source* arrives at *dest*.

        Raises:
            CommError: when the safety timeout expires.
        """
        self._check_rank(source)
        self._check_rank(dest)
        try:
            return self._box(source, dest, tag).get(timeout=self.timeout)
        except queue.Empty:
            raise CommError(
                f"recv timeout on rank {dest} from {source} tag {tag}"
            ) from None

    # ------------------------------------------------------------------
    def barrier(self, rank: int) -> None:
        """Block until every rank reaches the barrier."""
        self._check_rank(rank)
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError:
            raise CommError("barrier timed out or was broken") from None

    def allgather(self, rank: int, payload: Any) -> List[Any]:
        """Contribute *payload*; returns every rank's payload, in order.

        Implemented as slot-fill + two barriers (fill, read-out), so it
        is safe to call repeatedly in a loop from all ranks.
        """
        self._check_rank(rank)
        with self._gather_lock:
            _check_hooks.access(self._san_gather, write=True)
            if self._gather_filled[rank]:
                raise CommError(
                    f"rank {rank} joined the same allgather twice"
                )
            self._gather_slots[rank] = payload
            self._gather_filled[rank] = True
        self.barrier(rank)  # everyone has written
        result = list(self._gather_slots)
        self.barrier(rank)  # everyone has read
        # One designated rank resets the slots for the next round; the
        # final barrier keeps slot reuse race-free.
        if rank == 0:
            with self._gather_lock:
                _check_hooks.access(self._san_gather, write=True)
                self._gather_slots = [None] * self.size
                self._gather_filled = [False] * self.size
        self.barrier(rank)
        return result

    def bcast(self, payload: Any, root: int, rank: int) -> Any:
        """Broadcast from *root*; every rank returns the payload."""
        self._check_rank(root)
        gathered = self.allgather(rank, payload if rank == root else None)
        return gathered[root]


def run_ranks(
    comm: ThreadComm,
    fn: Callable[[int, ThreadComm], Any],
    timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``fn(rank, comm)`` on one thread per rank; gather the returns.

    Exceptions from any rank are re-raised in the caller (the first one
    by rank order) after all threads have been joined.

    Args:
        comm: the communicator whose ``size`` defines the rank count.
        fn: the per-rank program.
        timeout: join timeout per thread (defaults to the comm's).
    """
    results: List[Any] = [None] * comm.size
    errors: List[Optional[BaseException]] = [None] * comm.size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(rank, comm)
        except BaseException as exc:  # surfaced below
            errors[rank] = exc
            # Break the barrier so sibling ranks fail fast instead of
            # waiting out the full timeout.
            comm._barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
        for r in range(comm.size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout or comm.timeout + 5.0)
    for exc in errors:
        if exc is not None:
            raise exc
    return results
