"""Cluster ParaPLL (Algorithm 3) over the simulated cluster.

Each of the *q* nodes is an :class:`~repro.sim.executor.
IntraNodeSimulator` (p virtual threads, static or dynamic intra-node
policy) holding a *local* label store.  The degree-ordered roots are
statically dealt round-robin across nodes; each node's share is split
into ``syncs`` chunks.  After every chunk all nodes meet at a barrier
and allgather the label deltas accumulated in their ``List`` (Algorithm
3 lines 9–15) through :class:`~repro.cluster.comm.SimComm`, which
charges the O(l·q·log q) exchange to the shared virtual clock.

With ``syncs=1`` (the paper's recommended setting) the only exchange
happens at the very end: nodes prune exclusively with their own labels,
producing the 2–3× label growth of Table 5 but no mid-run communication.
Larger ``syncs`` trade communication time for pruning power — Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cluster.comm import SimComm
from repro.cluster.network import NetworkModel
from repro.cluster.partition import round_robin_partition, split_chunks
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import bus as _bus
from repro.obs import context as _ctx
from repro.obs import flightrec as _flightrec
from repro.obs import trace as _trace
from repro.obs.instruments import record_sync_round
from repro.sim.costmodel import CostModel
from repro.sim.executor import IntraNodeSimulator
from repro.types import IndexStats

__all__ = ["simulate_cluster", "ClusterRunResult"]


@dataclass
class ClusterRunResult:
    """Outcome of one simulated cluster build (a Table-5 / Figure-7 cell).

    Attributes:
        index_stats: statistics of the converged (union) label set.
        makespan: simulated wall time of the whole build, seconds.
        computation_time: per-node busy time, summed.
        communication_time: time inside allgather exchanges (per the
            critical path: barrier-to-exit once per sync), seconds.
        sync_wait_time: barrier skew (fast nodes waiting for the
            slowest), summed across nodes, seconds.
        num_nodes: cluster size q.
        threads_per_node: virtual threads per node p.
        syncs: number of synchronisation points c.
        per_node_clock: each node's final clock (all equal after the
            last sync).
        per_sync_entries: label entries exchanged at each sync point.
    """

    index_stats: IndexStats
    makespan: float
    computation_time: float
    communication_time: float
    sync_wait_time: float
    num_nodes: int
    threads_per_node: int
    syncs: int
    per_node_clock: List[float] = field(default_factory=list)
    per_sync_entries: List[int] = field(default_factory=list)


def simulate_cluster(
    graph: CSRGraph,
    num_nodes: int,
    threads_per_node: int = 6,
    policy: str = "dynamic",
    syncs: int = 1,
    order: Optional[Sequence[int]] = None,
    cost_model: Optional[CostModel] = None,
    network: Optional[NetworkModel] = None,
    jitter: float = 0.0,
    worker_jitter: float = 0.0,
    seed: int = 0,
    sync_schedule: str = "uniform",
    replicate_top: int = 0,
    inter_node: str = "round-robin",
) -> Tuple[PLLIndex, ClusterRunResult]:
    """Simulate a full cluster ParaPLL build.

    Args:
        graph: the graph to index.
        num_nodes: cluster size ``q``.
        threads_per_node: virtual threads ``p`` inside each node (the
            paper's nodes have one 6-core Xeon, hence the default).
        policy: intra-node assignment policy (``static``/``dynamic``).
        syncs: synchronisation count ``c``; labels are exchanged after
            every ⌊share/c⌋ roots per node (uniform schedule), the last
            exchange landing at the end of the build.
        order: global vertex ordering (defaults to descending degree).
        cost_model: calibrated computation cost model.
        network: interconnect cost model.
        jitter: per-task machine noise (see the intra-node simulator).
        worker_jitter: persistent per-worker speed spread.
        seed: RNG seed for the noise streams.
        sync_schedule: ``"uniform"`` (the paper's equal intervals) or
            ``"early"`` (geometric, front-loaded; see
            :func:`~repro.cluster.partition.split_chunks`).
        replicate_top: reproduction-scale extension: every node indexes
            the global top-K roots itself before its round-robin share,
            restoring the pruning power of the most important hubs at
            the cost of duplicating their searches on all nodes.  0
            (default) is the paper-faithful behaviour.  The duplicate
            label entries are deduplicated at merge time.
        inter_node: how roots are split across nodes: the paper's
            ``"round-robin"`` (default) or the locality-aware
            ``"region"`` split (BFS-grown regions; ablation — see
            :func:`~repro.cluster.partition.region_partition`).

    Returns:
        ``(index, result)``: the queryable converged index and the
        timing breakdown.

    Raises:
        SimulationError: on invalid cluster shape.
    """
    if num_nodes < 1:
        raise SimulationError("num_nodes must be >= 1")
    if syncs < 1:
        raise SimulationError("syncs must be >= 1")
    if replicate_top < 0:
        raise SimulationError("replicate_top must be non-negative")
    if order is None:
        order = by_degree(graph)
    cost = (cost_model or CostModel()).for_graph(graph.num_vertices)
    comm = SimComm(
        num_nodes,
        network=network or NetworkModel(),
        seconds_per_unit=cost.seconds_per_unit,
    )

    nodes = [
        IntraNodeSimulator(
            graph,
            threads_per_node,
            policy=policy,
            order=order,
            cost_model=cost,
            jitter=jitter,
            worker_jitter=worker_jitter,
            seed=seed + 1009 * k,
        )
        for k in range(num_nodes)
    ]
    # Give each node's virtual workers a distinct id range in any
    # installed build monitor (node k reports workers k*p .. k*p+p-1).
    for k, node in enumerate(nodes):
        node.buildmon_worker_base = k * threads_per_node
    top = [int(v) for v in order[:replicate_top]]
    rest = order[replicate_top:]
    if inter_node == "round-robin":
        shares = round_robin_partition(rest, num_nodes)
    elif inter_node == "region":
        from repro.cluster.partition import region_partition

        shares = region_partition(graph, rest, num_nodes, seed=seed)
    else:
        raise SimulationError(
            f"unknown inter_node partition {inter_node!r} "
            "(round-robin|region)"
        )
    if top:
        shares = [top + share for share in shares]
    chunks = [
        split_chunks(
            share, syncs, schedule=sync_schedule, min_chunk=threads_per_node
        )
        for share in shares
    ]

    communication_time = 0.0
    sync_wait_time = 0.0
    per_sync_entries: List[int] = []
    # One trace context for the whole simulated build: the comm layer
    # stamps it into every allgather envelope (re-ranked per sender).
    build_ctx = _ctx.current() or _ctx.new_context()

    for j in range(syncs):
        # Local compute phase: each node indexes its j-th chunk.
        for k, node in enumerate(nodes):
            node.run_roots(chunks[k][j])
            comm.set_clock(k, node.clock)
        # Barrier skew: how long fast nodes idle at the sync point.
        barrier_time = max(node.clock for node in nodes)
        sync_wait_time += sum(barrier_time - node.clock for node in nodes)
        # Exchange each node's delta List (Algorithm 3 line 15).
        deltas = [node.drain_deltas() for node in nodes]
        round_entries = sum(len(d) for d in deltas)
        _flightrec.record(
            "sync_round", round=j, entries=round_entries, nodes=num_nodes
        )
        _buildmon.report_note(
            "sync_round", round=j, entries=round_entries, nodes=num_nodes
        )
        _bus.publish_event(
            "cluster_sync", round=j, entries=round_entries, nodes=num_nodes
        )
        with _ctx.activate(build_ctx), _trace.span(
            "cluster_sync",
            round=j,
            entries=round_entries,
            nodes=num_nodes,
            trace_id=build_ctx.trace_id,
        ) as sp:
            before = comm.clocks[0]
            gathered = None
            for k, delta in enumerate(deltas):
                gathered = comm.allgather(k, delta)
            assert gathered is not None
            exchange_elapsed = comm.clocks[0] - max(before, barrier_time)
            communication_time += exchange_elapsed
            per_sync_entries.append(round_entries)
            record_sync_round(round_entries)
            # Merge remote labels and release all nodes at the common clock.
            redundant = 0
            for k, node in enumerate(nodes):
                for src, delta in enumerate(gathered):
                    if src != k:
                        redundant += node.receive_labels(delta)
                node.advance_all(comm.clocks[k])
            sp.set(sim_seconds=exchange_elapsed, redundant=redundant)

    # After the final exchange every node holds the converged label set.
    store: LabelStore = nodes[0].store
    store.finalize()
    makespan = comm.clocks[0]
    stats = IndexStats.from_sizes(store.label_sizes(), makespan)
    per_root = []
    for node in nodes:
        per_root.extend(node.per_root)
    stats.per_root = per_root
    index = PLLIndex(store, order, graph=graph, stats=stats)
    result = ClusterRunResult(
        index_stats=stats,
        makespan=makespan,
        computation_time=sum(sum(n.worker_busy) for n in nodes),
        communication_time=communication_time,
        sync_wait_time=sync_wait_time,
        num_nodes=num_nodes,
        threads_per_node=threads_per_node,
        syncs=syncs,
        per_node_clock=[n.clock for n in nodes],
        per_sync_entries=per_sync_entries,
    )
    return index, result
