"""The per-rank cluster ParaPLL program (Algorithm 3, executable form).

:func:`cluster_rank_program` is written exactly like an MPI program:
it receives its rank and a communicator, owns a *private* label store,
indexes its static share of the degree-ordered roots chunk by chunk,
and exchanges delta ``List``s with the other ranks at every
synchronisation point.  Nothing is shared between ranks except what
flows through the communicator — swap :class:`~repro.cluster.
threadcomm.ThreadComm` for an ``mpi4py`` adapter and this runs on a
real cluster unchanged.

:func:`run_cluster_threads` is the convenience driver that launches one
thread per rank and merges the converged result into a queryable
:class:`~repro.core.index.PLLIndex`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.partition import round_robin_partition, split_chunks
from repro.cluster.threadcomm import ThreadComm, run_ranks
from repro.core.index import PLLIndex
from repro.core.labels import LabelStore
from repro.core.pruned_dijkstra import PrunedDijkstra
from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.order import by_degree
from repro.obs import buildmon as _buildmon
from repro.obs import context as _ctx
from repro.obs import flightrec as _flightrec
from repro.obs import trace as _trace
from repro.types import IndexStats, SearchStats

__all__ = ["cluster_rank_program", "run_cluster_threads"]

#: A label delta triple: (vertex, hub rank, distance).
Triple = Tuple[int, int, float]


def cluster_rank_program(
    rank: int,
    comm: ThreadComm,
    graph: CSRGraph,
    order: Sequence[int],
    syncs: int,
    sync_schedule: str = "uniform",
) -> LabelStore:
    """What one cluster node runs (the body of Algorithm 3).

    Args:
        rank: this node's rank in the communicator.
        comm: the message-passing layer.
        graph: the (replicated, read-only) input graph.
        order: the global vertex ordering, identical on every rank.
        syncs: synchronisation count ``c``.
        sync_schedule: chunking schedule (``uniform``/``early``).

    Returns:
        This rank's label store after the final synchronisation — the
        converged global label set (identical on every rank).
    """
    engine = PrunedDijkstra(graph, order)
    store = LabelStore(graph.num_vertices)
    share = round_robin_partition(order, comm.size)[rank]
    chunks = split_chunks(share, syncs, schedule=sync_schedule)
    ctx = _ctx.current()
    monitor = _buildmon.active()

    with _trace.span(
        "cluster_rank",
        rank=rank,
        trace_id=ctx.trace_id if ctx else None,
        chunks=len(chunks),
    ):
        for round_no, chunk in enumerate(chunks):
            # Local compute phase: index this chunk against local
            # labels, accumulating the update List (Alg. 3 lines 8-11).
            update_list: List[Triple] = []
            with _trace.span(
                "cluster_chunk", rank=rank, round=round_no, roots=len(chunk)
            ):
                for root in chunk:
                    root_stats = SearchStats() if monitor is not None else None
                    delta = engine.run(int(root), store, root_stats)
                    root_rank = engine.rank_of(int(root))
                    triples = [(v, root_rank, d) for v, d in delta]
                    store.add_delta(triples)
                    update_list.extend(triples)
                    if monitor is not None:
                        monitor.root_done(
                            rank, int(root), stats=root_stats,
                            labels=len(delta),
                        )
            # Synchronisation phase (line 15): exchange Lists, merge.
            _flightrec.record(
                "sync_round",
                rank=rank,
                round=round_no,
                entries=len(update_list),
            )
            if monitor is not None:
                monitor.note(
                    "sync_round",
                    rank=rank,
                    round=round_no,
                    entries=len(update_list),
                )
            gathered = comm.allgather(rank, update_list)
            for src, triples in enumerate(gathered):
                if src == rank:
                    continue
                for v, h, d in triples:
                    if h not in store.hubs_of(v):
                        store.add(v, h, d)
    return store


def run_cluster_threads(
    graph: CSRGraph,
    num_nodes: int,
    syncs: int = 1,
    sync_schedule: str = "uniform",
    order: Optional[Sequence[int]] = None,
    timeout: float = 120.0,
) -> PLLIndex:
    """Execute cluster ParaPLL with one real thread per node.

    This is the *functional* cluster path (exact message passing, no
    virtual time); use :func:`repro.cluster.parapll.simulate_cluster`
    when you need timing and communication-cost measurements.

    Returns:
        The converged, finalized index (exact distances).

    Raises:
        SimulationError: on invalid cluster shape.
        CommError: if a rank deadlocks (safety timeout).
    """
    if num_nodes < 1:
        raise SimulationError("num_nodes must be >= 1")
    if syncs < 1:
        raise SimulationError("syncs must be >= 1")
    if order is None:
        order = by_degree(graph)
    comm = ThreadComm(num_nodes, timeout=timeout)
    # One trace context for the whole build: every rank activates a
    # per-rank child, so spans/envelopes from all ranks stitch together.
    build_ctx = _ctx.current() or _ctx.new_context()
    stores = run_ranks(
        comm,
        lambda rank, c: cluster_rank_program(
            rank, c, graph, order, syncs, sync_schedule
        ),
        trace_context=build_ctx,
    )
    # Every rank converged to the same set; sanity-check then wrap one.
    reference = stores[0]
    for other in stores[1:]:
        if other != reference:
            raise SimulationError(
                "ranks diverged after the final synchronisation"
            )
    reference.finalize()
    stats = IndexStats.from_sizes(reference.label_sizes(), 0.0)
    return PLLIndex(reference, order, graph=graph, stats=stats)
