"""``SimComm``: an in-process, MPI-flavoured communicator.

Implements the subset of the MPI interface that cluster ParaPLL needs
— point-to-point ``send``/``recv``, ``bcast``, ``allgather`` and
``barrier`` — over per-rank in-memory mailboxes, with per-rank virtual
clocks advanced by the :class:`~repro.cluster.network.NetworkModel`.
The method names and root-rank semantics mirror ``mpi4py``'s
lowercase (pickling) API so the code reads like real MPI.

A collective must be invoked once per rank (any order); it completes —
and returns each rank's result — when the last rank joins, after which
all participating clocks sit at the common exit time.  This is a
*cooperative* communicator for the single-threaded simulator: the
driver calls the collective for every rank in one loop.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.check import hooks as _check_hooks
from repro.cluster.network import NetworkModel
from repro.errors import CommError
from repro.obs import config as _obs_config
from repro.obs import context as _ctx
from repro.obs import trace as _trace
from repro.obs.instruments import record_comm

__all__ = ["SimComm"]


def _payload_entries(payload: Any) -> int:
    """Size of a payload in label entries (lists/tuples) or 1 otherwise."""
    if isinstance(payload, (list, tuple)):
        return len(payload)
    return 1


class SimComm:
    """A simulated communicator over *size* ranks.

    Args:
        size: number of ranks (cluster nodes).
        network: the cost model charging virtual time to collectives.
        seconds_per_unit: conversion from network work units to seconds
            (use the calibrated cost model's constant so computation and
            communication share a time base).
    """

    def __init__(
        self,
        size: int,
        network: Optional[NetworkModel] = None,
        seconds_per_unit: float = 1.0,
    ) -> None:
        if size < 1:
            raise CommError("communicator size must be >= 1")
        if seconds_per_unit <= 0:
            raise CommError("seconds_per_unit must be positive")
        self.size = size
        self.network = network or NetworkModel()
        self.seconds_per_unit = seconds_per_unit
        self.clocks: List[float] = [0.0] * size
        #: Total seconds each rank has spent inside collectives/messaging.
        self.comm_seconds: List[float] = [0.0] * size
        self._mailboxes: Dict[Tuple[int, int, int], Deque[Any]] = {}
        # Pending collective state: op name -> {rank: payload}.
        self._pending: Dict[str, Dict[int, Any]] = {}

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommError(f"rank {rank} out of range [0, {self.size})")

    def set_clock(self, rank: int, time: float) -> None:
        """Advance one rank's clock to *time* (its local compute finished)."""
        self._check_rank(rank)
        if time < self.clocks[rank] - 1e-12:
            raise CommError("clocks cannot run backwards")
        self.clocks[rank] = time

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: Any, source: int, dest: int, tag: int = 0) -> None:
        """Send *payload* from *source* to *dest* (non-blocking)."""
        self._check_rank(source)
        self._check_rank(dest)
        entries = _payload_entries(payload)  # size of the RAW payload
        units = self.network.latency_units + (
            self.network.per_entry_units * entries
        )
        send_done = self.clocks[source] + units * self.seconds_per_unit
        self.comm_seconds[source] += send_done - self.clocks[source]
        self.clocks[source] = send_done
        env = _ctx.stamp(payload, rank=source)
        if _obs_config.TRACING:
            _trace.event(
                "comm_send",
                ts=send_done,
                clock="sim",
                flow="out",
                flow_id=env.flow_id,
                trace_id=env.ctx.trace_id if env.ctx else None,
                src=source,
                dest=dest,
            )
        key = (source, dest, tag)
        # Same envelope happens-before edge ThreadComm emits, so the
        # sim and thread cluster paths share one synchronization model.
        token = _check_hooks.send(
            f"SimComm#{id(self)}.box.{source}.{dest}.{tag}"
        )
        self._mailboxes.setdefault(key, deque()).append(
            (send_done, env, token)
        )
        record_comm("send", entries)

    def recv(self, source: int, dest: int, tag: int = 0) -> Any:
        """Receive the next message from *source* at *dest* (blocking).

        The receiver's clock advances to at least the message arrival.

        Raises:
            CommError: if no matching message was ever sent.
        """
        self._check_rank(source)
        self._check_rank(dest)
        key = (source, dest, tag)
        box = self._mailboxes.get(key)
        if not box:
            raise CommError(
                f"recv on rank {dest} from {source} tag {tag}: no message"
            )
        arrival, raw, token = box.popleft()
        _check_hooks.recv(
            f"SimComm#{id(self)}.box.{source}.{dest}.{tag}", token
        )
        wait = max(0.0, arrival - self.clocks[dest])
        self.comm_seconds[dest] += wait
        self.clocks[dest] = max(self.clocks[dest], arrival)
        payload, env_ctx, flow_id = _ctx.unwrap(raw)
        if _obs_config.TRACING and flow_id is not None:
            _trace.event(
                "comm_recv",
                ts=self.clocks[dest],
                clock="sim",
                flow="in",
                flow_id=flow_id,
                trace_id=env_ctx.trace_id if env_ctx else None,
                src=source,
                dest=dest,
            )
        return payload

    # ------------------------------------------------------------------
    # Collectives (cooperative: call once per rank, any order)
    # ------------------------------------------------------------------
    def barrier(self, rank: int) -> Optional[float]:
        """Join the barrier; returns the exit time once all ranks joined.

        Returns ``None`` while other ranks are still missing.
        """
        self._check_rank(rank)
        pending = self._pending.setdefault("barrier", {})
        if rank in pending:
            raise CommError(f"rank {rank} joined the barrier twice")
        pending[rank] = True
        if len(pending) < self.size:
            return None
        exit_time = max(self.clocks)
        for r in range(self.size):
            self.comm_seconds[r] += exit_time - self.clocks[r]
            self.clocks[r] = exit_time
        del self._pending["barrier"]
        return exit_time

    def allgather(self, rank: int, payload: Any) -> Optional[List[Any]]:
        """Contribute *payload*; returns all payloads once everyone joined.

        Completion charges the full O(l·q·log q) exchange to every rank
        and aligns all clocks at the common exit time.  Returns ``None``
        for ranks that joined before the collective completed — the
        driver retrieves their results with :meth:`collective_result`.
        """
        self._check_rank(rank)
        pending = self._pending.setdefault("allgather", {})
        if rank in pending:
            raise CommError(f"rank {rank} joined the allgather twice")
        env = _ctx.stamp(payload, rank=rank)
        if _obs_config.TRACING:
            _trace.event(
                "comm_send",
                ts=self.clocks[rank],
                clock="sim",
                flow="out",
                flow_id=env.flow_id,
                trace_id=env.ctx.trace_id if env.ctx else None,
                src=rank,
                dest=None,
            )
        pending[rank] = env
        if len(pending) < self.size:
            return None
        envelopes = [pending[r] for r in range(self.size)]
        gathered = []
        sizes = []
        for e in envelopes:
            raw_payload, _, _ = _ctx.unwrap(e)
            gathered.append(raw_payload)
            sizes.append(_payload_entries(raw_payload))
        units = self.network.exchange_units(sizes, self.size)
        start = max(self.clocks)
        exit_time = start + units * self.seconds_per_unit
        for r in range(self.size):
            self.comm_seconds[r] += exit_time - self.clocks[r]
            self.clocks[r] = exit_time
        del self._pending["allgather"]
        self._last_allgather = gathered
        if _obs_config.TRACING:
            for dest in range(self.size):
                for src, e in enumerate(envelopes):
                    if src == dest:
                        continue
                    _, env_ctx, flow_id = _ctx.unwrap(e)
                    _trace.event(
                        "comm_recv",
                        ts=exit_time,
                        clock="sim",
                        flow="in",
                        flow_id=flow_id,
                        trace_id=env_ctx.trace_id if env_ctx else None,
                        src=src,
                        dest=dest,
                    )
        # Each entry reaches the size-1 other ranks in the allgather.
        record_comm("allgather", sum(sizes), fanout=self.size - 1)
        return gathered

    def collective_result(self) -> List[Any]:
        """The payload list of the most recently completed allgather."""
        try:
            return self._last_allgather
        except AttributeError:
            raise CommError("no completed allgather to read") from None

    def bcast(self, payload: Any, root: int) -> List[Any]:
        """Broadcast *payload* from *root* to all ranks; returns copies.

        Charges one O(l·log q) broadcast and synchronises all clocks at
        its completion (a simplification: broadcast as a blocking
        collective, which is how cluster ParaPLL uses it).
        """
        self._check_rank(root)
        entries = _payload_entries(payload)  # size of the RAW payload
        units = self.network.broadcast_units(entries, self.size)
        start = max(self.clocks)
        exit_time = start + units * self.seconds_per_unit
        for r in range(self.size):
            self.comm_seconds[r] += exit_time - self.clocks[r]
            self.clocks[r] = exit_time
        if _obs_config.TRACING:
            env = _ctx.stamp(payload, rank=root)
            _trace.event(
                "comm_send",
                ts=start,
                clock="sim",
                flow="out",
                flow_id=env.flow_id,
                trace_id=env.ctx.trace_id if env.ctx else None,
                src=root,
                dest=None,
            )
            for dest in range(self.size):
                if dest == root:
                    continue
                _trace.event(
                    "comm_recv",
                    ts=exit_time,
                    clock="sim",
                    flow="in",
                    flow_id=env.flow_id,
                    trace_id=env.ctx.trace_id if env.ctx else None,
                    src=root,
                    dest=dest,
                )
        record_comm("bcast", entries, fanout=self.size - 1)
        return [payload for _ in range(self.size)]

    # ------------------------------------------------------------------
    @property
    def total_comm_seconds(self) -> float:
        """Seconds spent in communication, summed across ranks."""
        return sum(self.comm_seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimComm(size={self.size}, clocks={self.clocks})"
